"""Synthetic binary image: PC -> function / source / assembly mapping.

The trace database links every program counter to its function name, a short
source snippet and a disassembly window (paper section 4.3 and Figure 2).
Real SPEC binaries are not available offline, so each workload builds a
:class:`BinaryImage` describing a plausible set of functions and instructions.
The image is deterministic for a given seed so that bench questions generated
from the database remain verifiable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

#: A tiny pool of x86-64 instruction templates used to synthesise assembly.
_ASM_TEMPLATES = (
    "mov    -0x{off:x}(%rbp),%eax",
    "mov    %rax,-0x{off:x}(%rbp)",
    "mov    (%rdi,%rax,8),%rdx",
    "lea    0x{off:x}(%rip),%rsi",
    "add    $0x{imm:x},%eax",
    "sub    $0x{imm:x},%rsp",
    "cmp    %eax,%edx",
    "test   %al,%al",
    "jne    0x{target:x}",
    "je     0x{target:x}",
    "jmp    0x{target:x}",
    "imul   $0x{imm:x},%eax,%eax",
    "movsd  (%rax),%xmm0",
    "movsd  %xmm0,(%rdx)",
    "addsd  %xmm1,%xmm0",
    "mulsd  0x{off:x}(%rsp),%xmm2",
    "call   0x{target:x}",
    "ret",
    "nop",
    "push   %rbx",
    "pop    %rbx",
    "xor    %eax,%eax",
)

#: Source-line templates keyed by the memory behaviour of the instruction.
_SOURCE_TEMPLATES = {
    "load": "value = {array}[{index}];",
    "store": "{array}[{index}] = value;",
    "pointer": "node = node->{field};",
    "stream": "dst[{index}] = f({array}[{index}]);",
    "compute": "acc += {array}_{index} * weight;",
    "control": "if ({array}[{index}] > threshold) break;",
}


@dataclass
class Instruction:
    """One static instruction in the synthetic binary."""

    pc: int
    mnemonic: str
    is_memory: bool
    kind: str  # load / store / pointer / stream / compute / control
    source_line: str


@dataclass
class FunctionImage:
    """A contiguous group of instructions with a (mangled) function name."""

    name: str
    base_pc: int
    instructions: List[Instruction] = field(default_factory=list)
    description: str = ""

    @property
    def end_pc(self) -> int:
        if not self.instructions:
            return self.base_pc
        return self.instructions[-1].pc

    @property
    def memory_pcs(self) -> List[int]:
        return [ins.pc for ins in self.instructions if ins.is_memory]

    def source_snippet(self) -> str:
        """Render a short C-like snippet for the whole function."""
        lines = [f"/* {self.description or self.name} */",
                 f"void {self.name.split('(')[0]}(...) {{"]
        for ins in self.instructions:
            if ins.is_memory:
                lines.append(f"    {ins.source_line}")
        lines.append("}")
        return "\n".join(lines)


class BinaryImage:
    """Collection of synthetic functions with PC lookup helpers."""

    def __init__(self, program_name: str):
        self.program_name = program_name
        self.functions: List[FunctionImage] = []
        self._pc_to_function: Dict[int, FunctionImage] = {}
        self._pc_to_instruction: Dict[int, Instruction] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_function(self, name: str, base_pc: int, num_instructions: int,
                     memory_kinds: Sequence[str], rng: random.Random,
                     description: str = "") -> FunctionImage:
        """Create a function whose memory instructions follow ``memory_kinds``.

        ``memory_kinds`` lists the behaviour (``load``/``store``/``pointer``/
        ``stream``/``compute``/``control``) of each memory instruction to
        create; non-memory filler instructions are interleaved between them.
        """
        function = FunctionImage(name=name, base_pc=base_pc, description=description)
        pc = base_pc
        kinds = list(memory_kinds)
        memory_positions = sorted(
            rng.sample(range(num_instructions), min(len(kinds), num_instructions))
        )
        kind_iter = iter(kinds)
        position_set = set(memory_positions)
        for slot in range(num_instructions):
            is_memory = slot in position_set
            if is_memory:
                kind = next(kind_iter)
                template = _SOURCE_TEMPLATES[kind]
                source = template.format(
                    array=rng.choice(("grid", "nodes", "arcs", "cells", "lattice", "buf")),
                    index=rng.choice(("i", "j", "k", "idx", "i + 1", "ptr->next")),
                    field=rng.choice(("next", "child", "parent", "tail", "head")),
                )
                if kind in ("load", "pointer", "stream", "compute", "control"):
                    mnemonic = rng.choice(
                        ("mov    (%rdi,%rax,8),%rdx",
                         "mov    -0x{:x}(%rbp),%eax".format(rng.randrange(8, 128, 8)),
                         "movsd  (%rax),%xmm0")
                    )
                else:
                    mnemonic = rng.choice(
                        ("mov    %rax,-0x{:x}(%rbp)".format(rng.randrange(8, 128, 8)),
                         "movsd  %xmm0,(%rdx)")
                    )
            else:
                kind = "filler"
                source = ""
                template = rng.choice(_ASM_TEMPLATES)
                mnemonic = template.format(
                    off=rng.randrange(8, 256, 8),
                    imm=rng.randrange(1, 64),
                    target=pc + rng.randrange(-64, 64, 4),
                )
            instruction = Instruction(
                pc=pc,
                mnemonic=mnemonic,
                is_memory=is_memory,
                kind=kind,
                source_line=source,
            )
            function.instructions.append(instruction)
            self._pc_to_function[pc] = function
            self._pc_to_instruction[pc] = instruction
            pc += rng.choice((2, 3, 4, 5, 7))
        self.functions.append(function)
        return function

    def adopt_function(self, function: FunctionImage) -> FunctionImage:
        """Register a pre-built function (and its PC maps) in this image.

        Used by composite workloads that merge (rebased copies of) other
        workloads' functions into one program image.
        """
        for instruction in function.instructions:
            self._pc_to_function[instruction.pc] = function
            self._pc_to_instruction[instruction.pc] = instruction
        self.functions.append(function)
        return function

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def function_for_pc(self, pc: int) -> Optional[FunctionImage]:
        return self._pc_to_function.get(pc)

    def instruction_for_pc(self, pc: int) -> Optional[Instruction]:
        return self._pc_to_instruction.get(pc)

    def function_name(self, pc: int) -> str:
        function = self.function_for_pc(pc)
        return function.name if function else "<unknown>"

    def source_snippet(self, pc: int) -> str:
        instruction = self.instruction_for_pc(pc)
        function = self.function_for_pc(pc)
        if function is None:
            return ""
        lines = [f"/* in {function.name} */"]
        if instruction is not None and instruction.source_line:
            lines.append(instruction.source_line)
        else:
            memory_lines = [ins.source_line for ins in function.instructions
                            if ins.source_line][:3]
            lines.extend(memory_lines)
        return "\n".join(lines)

    def assembly_context(self, pc: int, window: int = 2) -> str:
        """Render a disassembly window of ``2 * window + 1`` instructions."""
        function = self.function_for_pc(pc)
        if function is None:
            return ""
        pcs = [ins.pc for ins in function.instructions]
        try:
            index = pcs.index(pc)
        except ValueError:
            return ""
        start = max(0, index - window)
        end = min(len(pcs), index + window + 1)
        lines = []
        for ins in function.instructions[start:end]:
            marker = " <=" if ins.pc == pc else ""
            lines.append(f"{ins.pc:x}: {ins.mnemonic}{marker}")
        return "\n".join(lines)

    def all_memory_pcs(self) -> List[int]:
        return [pc for pc, ins in self._pc_to_instruction.items() if ins.is_memory]

    def describe(self) -> str:
        lines = [f"binary image for {self.program_name}:"]
        for function in self.functions:
            lines.append(
                f"  {function.name} @ 0x{function.base_pc:x} "
                f"({len(function.instructions)} instructions, "
                f"{len(function.memory_pcs)} memory ops)"
            )
        return "\n".join(lines)
