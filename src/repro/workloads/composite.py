"""Composite synthetic workloads: phase-structured and multi-program.

Two generator families the config/workload sensitivity studies need beyond
the single-behaviour SPEC-like generators:

* :class:`PhasedWorkload` — a program whose access pattern changes over
  time: distinct phases (streaming scan, hot-set reuse, uniform random,
  fixed-stride sweep) run back to back with configurable lengths.  Phase
  changes are where replacement policies diverge most (a policy tuned to
  the streaming phase mis-handles the reuse phase), which is exactly the
  sensitivity axis application-specific cache studies sweep.
* :class:`InterleavedWorkload` — several existing workloads time-sliced
  onto one shared LLC, modelling multi-program contention.  Component
  accesses are rebased into disjoint PC/address regions (offsets are
  block-aligned, so each component's reuse structure is preserved) and
  interleaved in scheduler-quantum-sized bursts.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.workloads.generator import (
    WorkloadGenerator,
    get_workload,
    register_workload,
)
from repro.workloads.symbols import BinaryImage, FunctionImage, Instruction
from repro.workloads.trace import TraceAccess


@register_workload
class PhasedWorkload(WorkloadGenerator):
    """Distinct access-pattern phases with configurable phase lengths."""

    name = "phased"
    description = (
        "phased: a phase-structured program. Runs distinct access-pattern "
        "phases back to back — streaming scan, small hot-set reuse, uniform "
        "random, fixed-stride sweep — so replacement policies face a "
        "mid-trace behaviour change."
    )
    dominant_pattern = "phase changes between streaming, reuse, random and strided access"
    working_set_blocks = 16384

    #: default phase schedule: (pattern, fraction of the trace).
    DEFAULT_PHASES: Tuple[Tuple[str, float], ...] = (
        ("stream", 0.35), ("hot", 0.25), ("random", 0.25), ("stride", 0.15))

    PATTERNS = ("stream", "hot", "random", "stride")

    REGION_STREAM = 0x51a000000000
    REGION_HOT = 0x51a100000000
    REGION_RANDOM = 0x51a200000000
    REGION_STRIDE = 0x51a300000000

    HOT_BLOCKS = 96
    STRIDE_BLOCKS = 8

    def __init__(self, seed: int = 0,
                 phases: Optional[Sequence[Tuple[str, float]]] = None):
        self.phases = tuple(phases) if phases is not None else self.DEFAULT_PHASES
        if not self.phases:
            raise ValueError("phased workload needs at least one phase")
        for pattern, fraction in self.phases:
            if pattern not in self.PATTERNS:
                raise ValueError(f"unknown phase pattern {pattern!r}; "
                                 f"available: {self.PATTERNS}")
            if fraction <= 0:
                raise ValueError("phase fractions must be positive")
        super().__init__(seed=seed)

    def build_binary(self, rng: random.Random) -> BinaryImage:
        binary = BinaryImage(self.name)
        binary.add_function(
            "phase_stream_scan", 0x431200, 30,
            ["stream", "stream", "load", "store"],
            rng, description="streaming phase: sequential sweep over a large buffer",
        )
        binary.add_function(
            "phase_hot_update", 0x431800, 24,
            ["load", "store", "load"],
            rng, description="reuse phase: tight loop over a small hot table",
        )
        binary.add_function(
            "phase_random_probe", 0x431e00, 26,
            ["pointer", "load", "control"],
            rng, description="random phase: uniform probes over a large region",
        )
        binary.add_function(
            "phase_stride_walk", 0x432400, 22,
            ["load", "load", "compute"],
            rng, description="strided phase: fixed-stride sweep with regular reuse",
        )
        return binary

    def _phase_lengths(self, num_accesses: int) -> List[int]:
        """Integer per-phase lengths that sum exactly to ``num_accesses``."""
        total_weight = sum(fraction for _pattern, fraction in self.phases)
        lengths = [int(num_accesses * fraction / total_weight)
                   for _pattern, fraction in self.phases]
        # Round-off goes to the last phase so lengths always sum exactly.
        lengths[-1] += num_accesses - sum(lengths)
        return lengths

    def emit_accesses(self, num_accesses: int,
                      rng: random.Random) -> List[TraceAccess]:
        pcs = {
            "stream": self.binary.functions[0].memory_pcs,
            "hot": self.binary.functions[1].memory_pcs,
            "random": self.binary.functions[2].memory_pcs,
            "stride": self.binary.functions[3].memory_pcs,
        }
        accesses: List[TraceAccess] = []
        stream_position = 0
        stride_position = 0
        for (pattern, _fraction), length in zip(self.phases,
                                                self._phase_lengths(num_accesses)):
            phase_pcs = pcs[pattern]
            for i in range(length):
                if pattern == "stream":
                    block = stream_position % self.working_set_blocks
                    stream_position += 1
                    address = self.block_address(self.REGION_STREAM, block)
                    is_write = i % 4 == 3
                    gap = rng.randint(8, 14)
                elif pattern == "hot":
                    address = self.block_address(
                        self.REGION_HOT, rng.randrange(self.HOT_BLOCKS))
                    is_write = i % 3 == 2
                    gap = rng.randint(4, 8)
                elif pattern == "random":
                    address = self.block_address(
                        self.REGION_RANDOM,
                        rng.randrange(self.working_set_blocks))
                    is_write = i % 5 == 4
                    gap = rng.randint(5, 11)
                else:  # stride
                    block = (stride_position * self.STRIDE_BLOCKS) % (
                        self.working_set_blocks // 4)
                    stride_position += 1
                    address = self.block_address(self.REGION_STRIDE, block)
                    is_write = False
                    gap = rng.randint(10, 16)
                accesses.append(TraceAccess(
                    pc=phase_pcs[i % len(phase_pcs)],
                    address=address,
                    is_write=is_write,
                    instructions_since_last=gap,
                ))
        return accesses


@register_workload
class InterleavedWorkload(WorkloadGenerator):
    """Existing workloads time-sliced onto one LLC (shared-cache contention)."""

    name = "interleaved"
    description = (
        "interleaved: multiple programs (astar + mcf by default) time-sliced "
        "onto one shared LLC. Component accesses are rebased into disjoint "
        "PC/address regions and interleaved in scheduler-quantum bursts, so "
        "each program's reuse is stretched by the other's contention."
    )
    dominant_pattern = "multi-program interleaving contending for a shared LLC"
    working_set_blocks = 27648

    DEFAULT_COMPONENTS: Tuple[str, ...] = ("astar", "mcf")

    #: rebasing offsets per component slot (block-aligned, so component
    #: reuse structure survives; PCs and data regions of different slots
    #: can never collide).
    PC_OFFSET = 0x100000000
    ADDRESS_OFFSET = 0x100000000000

    #: accesses per scheduling quantum before switching programs.
    DEFAULT_QUANTUM = 24

    def __init__(self, seed: int = 0,
                 components: Optional[Sequence[str]] = None,
                 quantum: int = DEFAULT_QUANTUM):
        self.components = (tuple(components) if components is not None
                           else self.DEFAULT_COMPONENTS)
        if len(self.components) < 2:
            raise ValueError("interleaved workload needs at least two "
                             "component workloads")
        if self.name in self.components:
            raise ValueError("interleaved workload cannot contain itself")
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        self.quantum = quantum
        self._generators = [get_workload(component, seed=seed)
                            for component in self.components]
        super().__init__(seed=seed)

    # ------------------------------------------------------------------
    def _offsets(self, slot: int) -> Tuple[int, int]:
        return slot * self.PC_OFFSET, slot * self.ADDRESS_OFFSET

    def build_binary(self, rng: random.Random) -> BinaryImage:
        binary = BinaryImage(self.name)
        for slot, generator in enumerate(self._generators):
            pc_offset, _address_offset = self._offsets(slot)
            for function in generator.binary.functions:
                rebased = FunctionImage(
                    name=f"{function.name}@{generator.name}",
                    base_pc=function.base_pc + pc_offset,
                    description=(f"{function.description or function.name} "
                                 f"[program {generator.name}]"))
                for instruction in function.instructions:
                    rebased.instructions.append(Instruction(
                        pc=instruction.pc + pc_offset,
                        mnemonic=instruction.mnemonic,
                        is_memory=instruction.is_memory,
                        kind=instruction.kind,
                        source_line=instruction.source_line,
                    ))
                binary.adopt_function(rebased)
        return binary

    def emit_accesses(self, num_accesses: int,
                      rng: random.Random) -> List[TraceAccess]:
        # Each component contributes its own deterministic stream; the
        # full-length generation is consumed partially (round-robin), so a
        # component's prefix is identical whether it runs alone or shared.
        streams = [iter(generator.generate(num_accesses))
                   for generator in self._generators]
        accesses: List[TraceAccess] = []
        slot = 0
        while len(accesses) < num_accesses:
            pc_offset, address_offset = self._offsets(slot % len(streams))
            # Quantum lengths jitter like a real scheduler's would.
            burst = rng.randint(max(1, self.quantum // 2),
                                self.quantum + self.quantum // 2)
            stream = streams[slot % len(streams)]
            for _ in range(burst):
                if len(accesses) >= num_accesses:
                    break
                access = next(stream)
                accesses.append(TraceAccess(
                    pc=access.pc + pc_offset,
                    address=access.address + address_offset,
                    is_write=access.is_write,
                    instructions_since_last=access.instructions_since_last,
                    is_prefetch=access.is_prefetch,
                ))
            slot += 1
        return accesses
