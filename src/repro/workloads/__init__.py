"""Synthetic workload substrate.

The paper evaluates CacheMind on SPEC CPU2006 CRC-2 traces (astar, lbm, mcf,
milc) and on a pointer-chasing microbenchmark.  Those traces are not
redistributable, so this package provides deterministic synthetic generators
that reproduce the documented memory behaviour of each workload:

* ``astar``  -- graph path-finding with mixed temporal/spatial locality,
* ``lbm``    -- streaming stencil updates interleaved with a small reused
  working set (the scan-vs-reuse interference discussed in section 6.3),
* ``mcf``    -- pointer chasing over a working set far larger than the LLC
  (near-capacity miss rates, bypass candidates),
* ``milc``   -- strided lattice sweeps with PCs whose reuse distance is
  highly predictable (the "stable PC" population used by the Mockingjay use
  case),
* ``pointer_chase`` -- the single-dominant-miss-PC microbenchmark from the
  software-prefetch use case.

Every generator also builds a synthetic :class:`~repro.workloads.symbols.BinaryImage`
so each PC maps to a function name, a source snippet and an assembly window,
as required by the trace-database schema.
"""

from repro.workloads.symbols import BinaryImage, FunctionImage, Instruction
from repro.workloads.trace import MemoryTrace, TraceAccess
from repro.workloads.generator import (
    WorkloadGenerator,
    WorkloadSpec,
    available_workload_info,
    available_workloads,
    get_workload,
    generate_trace,
    register_workload,
    unregister_workload,
    workload_info,
    workload_kind,
)
from repro.workloads.spec import (
    AstarWorkload,
    LbmWorkload,
    McfWorkload,
    MilcWorkload,
)
from repro.workloads.microbench import PointerChaseMicrobenchmark
from repro.workloads.composite import InterleavedWorkload, PhasedWorkload
from repro.workloads.ingest import (
    IngestedWorkload,
    ensure_store_traces_registered,
    import_trace_file,
    parse_champsim_trace,
    parse_text_trace,
    parse_trace_file,
    register_trace,
    register_trace_file,
    write_champsim_trace,
    write_text_trace,
)

__all__ = [
    "BinaryImage",
    "FunctionImage",
    "Instruction",
    "MemoryTrace",
    "TraceAccess",
    "WorkloadGenerator",
    "WorkloadSpec",
    "available_workload_info",
    "available_workloads",
    "get_workload",
    "generate_trace",
    "register_workload",
    "unregister_workload",
    "workload_info",
    "workload_kind",
    "AstarWorkload",
    "LbmWorkload",
    "McfWorkload",
    "MilcWorkload",
    "PointerChaseMicrobenchmark",
    "InterleavedWorkload",
    "PhasedWorkload",
    "IngestedWorkload",
    "ensure_store_traces_registered",
    "import_trace_file",
    "parse_champsim_trace",
    "parse_text_trace",
    "parse_trace_file",
    "register_trace",
    "register_trace_file",
    "write_champsim_trace",
    "write_text_trace",
]
