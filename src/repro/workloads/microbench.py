"""Pointer-chasing microbenchmark used by the software-prefetch use case.

Section 6.3 of the paper builds a microbenchmark "designed to generate misses
from a single dominant load instruction at an initially unknown PC".  The
workflow is:

1. simulate the microbenchmark, build the trace database,
2. ask CacheMind which PC causes the most misses and what its miss rate is,
3. insert a software prefetch for that PC's future addresses,
4. re-simulate and observe a large IPC improvement (0.131 -> 0.231 in the
   paper, roughly a 76% speedup).

:class:`PointerChaseMicrobenchmark` emits a trace dominated by one load PC
walking a pseudo-random chain over an array far larger than the LLC, plus a
handful of low-miss housekeeping PCs.  :meth:`prefetch_plan` returns the
(position, address) schedule that models adding ``__builtin_prefetch`` with a
given lookahead distance.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.workloads.generator import WorkloadGenerator, register_workload
from repro.workloads.symbols import BinaryImage
from repro.workloads.trace import MemoryTrace, TraceAccess, insert_prefetches


@register_workload
class PointerChaseMicrobenchmark(WorkloadGenerator):
    """Linked-list traversal with a single dominant miss-causing load PC."""

    name = "pointer_chase"
    description = (
        "Pointer-chasing microbenchmark: a single load walks a pseudo-random "
        "linked list far larger than the LLC, so one PC causes nearly all "
        "misses; loop-control and accumulator accesses almost always hit."
    )
    dominant_pattern = "single dominant miss-causing load in a pointer chase"
    working_set_blocks = 16384

    REGION_LIST = 0x602000000
    REGION_ACC = 0x603000000

    #: PC of the software prefetch instruction added by the "fixed" binary.
    PREFETCH_PC = 0x4006a0

    def build_binary(self, rng: random.Random) -> BinaryImage:
        binary = BinaryImage(self.name)
        binary.add_function(
            "chase_list", 0x400500, 20,
            ["pointer", "load", "compute"],
            rng, description="walks the linked list: node = node->next",
        )
        binary.add_function(
            "update_accumulator", 0x400700, 12,
            ["load", "store"],
            rng, description="accumulates a checksum in a tiny hot buffer",
        )
        return binary

    @property
    def chase_pc(self) -> int:
        """PC of the dominant pointer-chasing load."""
        return self.binary.functions[0].memory_pcs[0]

    def _chain(self, rng: random.Random) -> List[int]:
        chain = list(range(self.working_set_blocks))
        rng.shuffle(chain)
        return chain

    def emit_accesses(self, num_accesses: int, rng: random.Random) -> List[TraceAccess]:
        chase_pcs = self.binary.functions[0].memory_pcs
        acc_pcs = self.binary.functions[1].memory_pcs
        chain = self._chain(random.Random(self.seed ^ 0xC0FFEE))

        accesses: List[TraceAccess] = []
        cursor = 0
        while len(accesses) < num_accesses:
            # The dominant load: follow the next pointer (always a miss once
            # the list exceeds the LLC).
            cursor = chain[cursor % len(chain)]
            accesses.append(TraceAccess(
                pc=chase_pcs[0],
                address=self.block_address(self.REGION_LIST, cursor),
                is_write=False,
                instructions_since_last=6,
            ))
            # A second load reads the payload of the same node (spatial hit
            # when it lands in the same block, occasionally the next block).
            if len(accesses) < num_accesses:
                payload_block = cursor if rng.random() < 0.8 else (cursor + 1) % len(chain)
                accesses.append(TraceAccess(
                    pc=chase_pcs[1],
                    address=self.block_address(self.REGION_LIST, payload_block),
                    is_write=False,
                    instructions_since_last=2,
                ))
            # Accumulator update: tiny hot region, always hits.
            if len(accesses) < num_accesses:
                accesses.append(TraceAccess(
                    pc=acc_pcs[rng.randrange(len(acc_pcs))],
                    address=self.block_address(self.REGION_ACC, rng.randrange(4)),
                    is_write=True,
                    instructions_since_last=3,
                ))
        return accesses[:num_accesses]

    # ------------------------------------------------------------------
    # software prefetch modelling
    # ------------------------------------------------------------------
    def prefetch_plan(self, trace: MemoryTrace, target_pc: int,
                      lookahead: int = 8) -> List[Tuple[int, int]]:
        """Build a (position, address) prefetch schedule for ``target_pc``.

        The schedule prefetches the address that ``target_pc`` will access
        ``lookahead`` occurrences in the future, at the position of the
        current occurrence — the software analogue of adding
        ``__builtin_prefetch(&node_array[next_index])`` inside the loop.
        """
        positions = [i for i, access in enumerate(trace.accesses)
                     if access.pc == target_pc and not access.is_prefetch]
        plan: List[Tuple[int, int]] = []
        for occurrence, position in enumerate(positions):
            future = occurrence + lookahead
            if future >= len(positions):
                break
            future_address = trace.accesses[positions[future]].address
            plan.append((position, future_address))
        return plan

    def generate_with_prefetch(self, num_accesses: int = 20000,
                               lookahead: int = 8) -> MemoryTrace:
        """Generate the trace of the prefetch-augmented ("fixed") binary."""
        base = self.generate(num_accesses)
        plan = self.prefetch_plan(base, self.chase_pc, lookahead=lookahead)
        return insert_prefetches(base, plan, prefetch_pc=self.PREFETCH_PC)
