"""Real-trace ingestion: external trace files as first-class workloads.

Synthetic generators (``repro.workloads.spec``) cap the system at hand-coded
scenarios; this module opens the real-trace axis.  Two on-disk formats parse
**directly into the columnar** :class:`~repro.workloads.trace.MemoryTrace`
spine (appends to the four typed arrays — no per-access object churn):

* **text/CSV** (``.txt``/``.csv``/``.trace``, optionally gzipped): one
  access per line, ``pc,address,is_write[,instr_gap]``.  ``pc``/``address``
  are decimal or ``0x``-hex unsigned 64-bit values, ``is_write`` is ``0`` or
  ``1``, ``instr_gap`` (optional, default 4) is the retired-instruction gap
  feeding the timing model.  Blank lines and ``#`` comments are skipped.
* **ChampSim-like binary** (``.champsim``/``.bin``, optionally gzipped):
  fixed-width 24-byte little-endian records ``<QQIB3x`` — pc (u64),
  address (u64), instr_gap (u32), flags (u8: bit0 write, bit1 prefetch),
  3 pad bytes — with no file header.

Both parsers validate eagerly with :class:`~repro.errors.TraceParseError`
messages naming the offending line/record, and both sniff gzip by magic
bytes rather than trusting the suffix.

An :class:`IngestedWorkload` adapts a parsed trace to the workload-registry
protocol, so ingested traces live beside synthetic generators in
:func:`~repro.workloads.generator.available_workloads` and are referenced
by name from ``ExperimentSpec``, ``CacheMind.ask`` and the serve layer.
Unlike synthetic generators, an ingested workload replays its file
verbatim: ``seed`` and ``num_accesses`` are **explicitly ignored** (the
full trace is returned whatever length a session asks for), which the
registry surfaces as ``kind == "ingested"`` rather than hiding.

Registration works from a file path (:func:`register_trace_file`), an
in-memory trace (:func:`register_trace`) or a store-backed manifest entry
(:func:`register_stored_trace` / :func:`ensure_store_traces_registered`,
used by store-attached sessions so ``python -m repro trace import`` makes a
trace nameable in any later process that opens the same store).
"""

from __future__ import annotations

import gzip
import os
import struct
from array import array
from typing import BinaryIO, Dict, List, Optional, Tuple

from repro.errors import DuplicateNameError, TraceParseError
from repro.workloads.generator import (
    WorkloadSpec,
    _REGISTRY,
    register_workload,
)
from repro.workloads.trace import (
    FLAG_PREFETCH,
    FLAG_WRITE,
    MemoryTrace,
)

#: Trace file formats understood by :func:`parse_trace_file`.
FORMAT_TEXT = "text"
FORMAT_CHAMPSIM = "champsim"
FORMATS = (FORMAT_TEXT, FORMAT_CHAMPSIM)

#: Suffix -> format map used by :func:`detect_format` (a trailing ``.gz``
#: is stripped first; compression is orthogonal to the record format).
SUFFIX_FORMATS = {
    ".txt": FORMAT_TEXT,
    ".csv": FORMAT_TEXT,
    ".trace": FORMAT_TEXT,
    ".champsim": FORMAT_CHAMPSIM,
    ".bin": FORMAT_CHAMPSIM,
}

#: One binary record: pc u64, address u64, instr_gap u32, flags u8, 3 pad.
CHAMPSIM_RECORD = struct.Struct("<QQIB3x")
CHAMPSIM_RECORD_BYTES = CHAMPSIM_RECORD.size

#: Valid bits of the binary record's flags byte.
_CHAMPSIM_FLAG_MASK = FLAG_WRITE | FLAG_PREFETCH

#: Records decoded per read when streaming a binary file.
_CHAMPSIM_CHUNK_RECORDS = 4096

_GZIP_MAGIC = b"\x1f\x8b"

_UINT64_MAX = 2 ** 64 - 1


# ----------------------------------------------------------------------
# format / name helpers
# ----------------------------------------------------------------------
def detect_format(path: str) -> str:
    """Infer the trace format from the file suffix (``.gz`` stripped).

    Raises ``ValueError`` for an unknown suffix — pass ``fmt`` explicitly
    to :func:`parse_trace_file` instead of guessing on content.
    """
    base = path[:-3] if path.endswith(".gz") else path
    suffix = os.path.splitext(base)[1].lower()
    fmt = SUFFIX_FORMATS.get(suffix)
    if fmt is None:
        raise ValueError(
            f"cannot infer trace format from {path!r} (known suffixes: "
            f"{', '.join(sorted(SUFFIX_FORMATS))}, each optionally .gz); "
            f"pass the format explicitly")
    return fmt


def default_trace_name(path: str) -> str:
    """A registry-safe workload name derived from a trace file's stem."""
    base = os.path.basename(path)
    if base.endswith(".gz"):
        base = base[:-3]
    stem = os.path.splitext(base)[0]
    cleaned = "".join(ch if (ch.isalnum() or ch in "._-") else "_"
                      for ch in stem)
    return cleaned or "ingested_trace"


def _open_maybe_gzip(path: str) -> BinaryIO:
    """Open a trace file, transparently ungzipping by magic bytes."""
    handle = open(path, "rb")
    try:
        magic = handle.read(len(_GZIP_MAGIC))
        handle.seek(0)
        if magic == _GZIP_MAGIC:
            return gzip.open(handle, "rb")  # type: ignore[return-value]
        return handle
    except BaseException:
        handle.close()
        raise


def ingested_description(name: str, accesses: int,
                         fingerprint_hex: str) -> str:
    """The canonical description of one ingested trace.

    Deliberately excludes the source path: the description is part of the
    derived-entry cache key, and direct-parse and store-warm runs of the
    same trace must produce byte-identical entries wherever the file lives.
    """
    return (f"ingested trace '{name}': {accesses} accesses replayed "
            f"verbatim (fingerprint {fingerprint_hex})")


def trace_fingerprint_hex(trace: MemoryTrace) -> str:
    """The trace's content fingerprint as the 8-hex-digit store key."""
    return f"{trace.fingerprint():08x}"


# ----------------------------------------------------------------------
# parsers (stream into the columnar spine)
# ----------------------------------------------------------------------
def _parse_int(field: str, what: str, where: str, maximum: int) -> int:
    field = field.strip()
    try:
        value = int(field, 16) if field[:2].lower() == "0x" else int(field)
    except (ValueError, IndexError):
        raise TraceParseError(
            f"{where}: {what} {field!r} is not a decimal or 0x-hex "
            f"integer") from None
    if not 0 <= value <= maximum:
        raise TraceParseError(
            f"{where}: {what} {value} out of range [0, {maximum}]")
    return value


def parse_text_trace(path: str, workload: Optional[str] = None) -> MemoryTrace:
    """Parse a line-oriented text/CSV address trace into a columnar trace.

    Each non-blank, non-``#`` line is ``pc,address,is_write[,instr_gap]``;
    values append straight onto the four typed-array columns.  Raises
    :class:`TraceParseError` naming ``path:line`` on the first bad line.
    """
    name = workload or default_trace_name(path)
    pcs, addresses = array("Q"), array("Q")
    flags, gaps = array("B"), array("Q")
    with _open_maybe_gzip(path) as handle:
        for lineno, raw in enumerate(handle, start=1):
            where = f"{path}:{lineno}"
            try:
                line = raw.decode("utf-8")
            except UnicodeDecodeError as error:
                raise TraceParseError(
                    f"{where}: not UTF-8 text ({error}); is this a binary "
                    f"trace? (pass format 'champsim')") from None
            line = line.split("#", 1)[0].strip()
            if not line:
                continue
            fields = [field.strip() for field in line.split(",")]
            if len(fields) not in (3, 4):
                raise TraceParseError(
                    f"{where}: expected 'pc,address,is_write[,instr_gap]' "
                    f"(3-4 fields), got {len(fields)} fields")
            pc = _parse_int(fields[0], "pc", where, _UINT64_MAX)
            address = _parse_int(fields[1], "address", where, _UINT64_MAX)
            if fields[2] not in ("0", "1"):
                raise TraceParseError(
                    f"{where}: is_write must be 0 or 1, got {fields[2]!r}")
            gap = (_parse_int(fields[3], "instr_gap", where, _UINT64_MAX)
                   if len(fields) == 4 else 4)
            pcs.append(pc)
            addresses.append(address)
            flags.append(FLAG_WRITE if fields[2] == "1" else 0)
            gaps.append(gap)
    if not pcs:
        raise TraceParseError(f"{path}: no accesses (only blank lines and "
                              f"comments)")
    return MemoryTrace(workload=name, columns=(pcs, addresses, flags, gaps))


def parse_champsim_trace(path: str,
                         workload: Optional[str] = None) -> MemoryTrace:
    """Parse a ChampSim-like fixed-width binary trace into a columnar trace.

    Streams 24-byte ``<QQIB3x`` records chunk-wise into the typed-array
    columns.  A truncated file (size not a record multiple) or a record
    with unknown flag bits raises :class:`TraceParseError` naming the
    0-based record index.
    """
    name = workload or default_trace_name(path)
    pcs, addresses = array("Q"), array("Q")
    flags, gaps = array("B"), array("Q")
    record = 0
    leftover = b""
    with _open_maybe_gzip(path) as handle:
        while True:
            chunk = handle.read(CHAMPSIM_RECORD_BYTES
                                * _CHAMPSIM_CHUNK_RECORDS)
            if not chunk:
                break
            # Short reads mid-stream are legal for file objects: carry the
            # partial record over to the next chunk; only bytes left at EOF
            # are a truncated file.
            chunk = leftover + chunk
            usable = len(chunk) - (len(chunk) % CHAMPSIM_RECORD_BYTES)
            leftover = chunk[usable:]
            for pc, address, gap, flag_byte in CHAMPSIM_RECORD.iter_unpack(
                    chunk[:usable]):
                if flag_byte & ~_CHAMPSIM_FLAG_MASK:
                    raise TraceParseError(
                        f"{path}: record #{record}: unknown flag bits "
                        f"0x{flag_byte & ~_CHAMPSIM_FLAG_MASK:02x} (valid: "
                        f"0x1 write, 0x2 prefetch)")
                pcs.append(pc)
                addresses.append(address)
                flags.append(flag_byte)
                gaps.append(gap)
                record += 1
    if leftover:
        raise TraceParseError(
            f"{path}: truncated record #{record}: {len(leftover)} trailing "
            f"byte(s) (records are {CHAMPSIM_RECORD_BYTES} bytes: pc u64, "
            f"address u64, instr_gap u32, flags u8, 3 pad)")
    if not pcs:
        raise TraceParseError(f"{path}: empty trace file")
    return MemoryTrace(workload=name, columns=(pcs, addresses, flags, gaps))


def parse_trace_file(path: str, fmt: Optional[str] = None,
                     workload: Optional[str] = None) -> MemoryTrace:
    """Parse a trace file in either format (suffix-detected when ``fmt`` is
    ``None``)."""
    fmt = fmt or detect_format(path)
    if fmt == FORMAT_TEXT:
        return parse_text_trace(path, workload=workload)
    if fmt == FORMAT_CHAMPSIM:
        return parse_champsim_trace(path, workload=workload)
    raise ValueError(f"unknown trace format {fmt!r}; expected one of "
                     f"{FORMATS}")


# ----------------------------------------------------------------------
# writers (round-trip tests, CI smoke, perf harness)
# ----------------------------------------------------------------------
def write_text_trace(trace: MemoryTrace, path: str) -> str:
    """Write a trace in the text format (gzipped when ``path`` ends ``.gz``).

    The text format has no prefetch field, so traces containing software
    prefetches must use the binary format instead.
    """
    pcs, addresses, flag_column, gaps = trace.columns()
    opener = gzip.open if path.endswith(".gz") else open
    with opener(path, "wt", encoding="utf-8") as handle:
        handle.write("# pc,address,is_write,instr_gap\n")
        for pc, address, flag_byte, gap in zip(pcs, addresses, flag_column,
                                               gaps):
            if flag_byte & FLAG_PREFETCH:
                raise ValueError(
                    "the text trace format cannot represent prefetch "
                    "accesses; use write_champsim_trace")
            handle.write(f"0x{pc:x},0x{address:x},"
                         f"{1 if flag_byte & FLAG_WRITE else 0},{gap}\n")
    return path


def write_champsim_trace(trace: MemoryTrace, path: str) -> str:
    """Write a trace in the fixed-width binary format (``.gz`` aware)."""
    pcs, addresses, flag_column, gaps = trace.columns()
    opener = gzip.open if path.endswith(".gz") else open
    with opener(path, "wb") as handle:
        pack = CHAMPSIM_RECORD.pack
        for index, (pc, address, flag_byte, gap) in enumerate(
                zip(pcs, addresses, flag_column, gaps)):
            if gap > 0xFFFFFFFF:
                raise ValueError(
                    f"access #{index}: instr_gap {gap} exceeds the binary "
                    f"format's u32 field")
            handle.write(pack(pc, address, gap, flag_byte))
    return path


# ----------------------------------------------------------------------
# the registry adapter
# ----------------------------------------------------------------------
class IngestedWorkload:
    """A parsed external trace behind the workload-registry protocol.

    Doubles as its own registry factory (calling it returns itself), so one
    object serves both the attribute-only listing path
    (:func:`~repro.workloads.generator.workload_info`) and
    :func:`~repro.workloads.generator.get_workload`.

    Semantics differ from synthetic generators **explicitly**: the trace is
    replayed verbatim, so :meth:`generate` returns the full ingested trace
    whatever ``num_accesses`` a session asks for, and the ``seed`` argument
    never changes the output (``kind == "ingested"`` and
    ``ignores_length``/``ignores_seed`` surface this to listings).
    """

    kind = "ingested"
    dominant_pattern = "external trace replayed verbatim"
    ignores_length = True
    ignores_seed = True

    def __init__(self, name: str, loader, accesses: int,
                 fingerprint_hex: str, source: str = ""):
        self.name = name
        self._loader = loader
        self.accesses = accesses
        self.fingerprint_hex = fingerprint_hex
        self.source = source
        self.description = ingested_description(name, accesses,
                                                fingerprint_hex)
        self.seed = 0
        self.binary = None
        self.working_set_blocks = 0
        self._trace: Optional[MemoryTrace] = None

    # Registry-factory protocol: get_workload(name, seed=...) calls the
    # registered factory; the seed is accepted and ignored (documented
    # above), never silently baked into a different trace.
    def __call__(self, seed: int = 0) -> "IngestedWorkload":
        return self

    def spec(self) -> WorkloadSpec:
        return WorkloadSpec(
            name=self.name,
            description=self.description,
            dominant_pattern=self.dominant_pattern,
            working_set_blocks=self.working_set_blocks,
        )

    def generate(self, num_accesses: Optional[int] = None) -> MemoryTrace:
        """The full ingested trace (``num_accesses`` is validated but does
        not truncate or extend the replay)."""
        if num_accesses is not None and num_accesses <= 0:
            raise ValueError("num_accesses must be positive")
        if self._trace is None:
            trace = self._loader()
            if trace.workload != self.name:
                raise ValueError(
                    f"loader for ingested workload {self.name!r} produced a "
                    f"trace named {trace.workload!r}")
            trace.description = self.description
            found = trace_fingerprint_hex(trace)
            if found != self.fingerprint_hex:
                raise ValueError(
                    f"ingested workload {self.name!r}: trace content "
                    f"fingerprint {found} does not match the registered "
                    f"fingerprint {self.fingerprint_hex} (source changed "
                    f"since registration?)")
            # Working-set size becomes known once the trace is in memory.
            self.working_set_blocks = len(
                {address >> 6 for address in trace.columns()[1]})
            self._trace = trace
        return self._trace

    def __repr__(self) -> str:
        return (f"IngestedWorkload(name={self.name!r}, "
                f"accesses={self.accesses}, "
                f"fingerprint={self.fingerprint_hex!r})")


# ----------------------------------------------------------------------
# registration
# ----------------------------------------------------------------------
def register_trace(trace: MemoryTrace, name: Optional[str] = None,
                   source: str = "") -> str:
    """Register an in-memory trace as a named ingested workload.

    Returns the registered name.  Raises
    :class:`~repro.errors.DuplicateNameError` when the name is taken —
    unless it is taken by the *same content* (identical fingerprint), in
    which case registration is an idempotent no-op.
    """
    if name is not None and name != trace.workload:
        # The workload name is part of the content fingerprint (and of
        # every simulation key), so renaming means re-wrapping copied
        # columns under the new name rather than mutating a possibly-shared
        # trace.
        trace = MemoryTrace(workload=name, seed=trace.seed,
                            columns=tuple(trace._copied_column(index)
                                          for index in range(4)))
    name = trace.workload
    fingerprint_hex = trace_fingerprint_hex(trace)
    trace.description = ingested_description(name, len(trace),
                                             fingerprint_hex)
    existing = _REGISTRY.get(name)
    if existing is not None:
        if getattr(existing, "fingerprint_hex", None) == fingerprint_hex:
            return name
        raise DuplicateNameError(
            f"workload {name!r} is already registered "
            f"({getattr(existing, 'kind', 'synthetic')}) with different "
            f"content; unregister it first or pick another name")
    entry = IngestedWorkload(name=name, loader=lambda: trace,
                             accesses=len(trace),
                             fingerprint_hex=fingerprint_hex, source=source)
    entry._trace = trace
    register_workload(entry)
    return name


def register_trace_file(path: str, name: Optional[str] = None,
                        fmt: Optional[str] = None) -> str:
    """Parse a trace file and register it as an ingested workload.

    Parsing is eager (registration is a one-time cost and errors should
    surface here, not mid-experiment); returns the registered name.
    """
    trace = parse_trace_file(path, fmt=fmt,
                             workload=name or default_trace_name(path))
    return register_trace(trace, source=os.path.abspath(path))


def register_stored_trace(store, meta: Dict[str, object]) -> str:
    """Register one trace-manifest entry from a store, loading lazily.

    ``meta`` is one :meth:`~repro.tracedb.store.TraceStore.trace_manifest`
    row.  The trace payload is only read from disk on first
    :meth:`IngestedWorkload.generate` call.
    """
    name = str(meta["name"])
    fingerprint_hex = str(meta["fingerprint"])
    existing = _REGISTRY.get(name)
    if existing is not None:
        if getattr(existing, "fingerprint_hex", None) == fingerprint_hex:
            return name
        raise DuplicateNameError(
            f"stored trace {name!r} (fingerprint {fingerprint_hex}) "
            f"collides with an already registered "
            f"{getattr(existing, 'kind', 'synthetic')} workload of the "
            f"same name; rename one side")

    def load() -> MemoryTrace:
        trace = store.load_trace(fingerprint_hex)
        if trace is None:
            raise TraceParseError(
                f"stored trace {name!r} (fingerprint {fingerprint_hex}) "
                f"is missing or unreadable in {store.root!r}; re-import it")
        return trace

    entry = IngestedWorkload(name=name, loader=load,
                             accesses=int(meta.get("accesses", 0)),
                             fingerprint_hex=fingerprint_hex,
                             source=str(meta.get("source", "")))
    register_workload(entry)
    return name


def ensure_store_traces_registered(store) -> List[str]:
    """Register every trace in a store's manifest; returns new names.

    Idempotent per (name, fingerprint): already registered identical
    entries are skipped, while a genuine name collision (same name,
    different content or a synthetic generator) raises
    :class:`DuplicateNameError` rather than silently shadowing.
    """
    registered: List[str] = []
    for meta in store.trace_manifest():
        name = str(meta["name"])
        existing = _REGISTRY.get(name)
        if (existing is not None
                and getattr(existing, "fingerprint_hex", None)
                == str(meta["fingerprint"])):
            continue
        registered.append(register_stored_trace(store, meta))
    return registered


def import_trace_file(store, path: str, name: Optional[str] = None,
                      fmt: Optional[str] = None) -> Tuple[str, Dict[str, object]]:
    """Parse a trace file and persist it into a store's trace manifest.

    The single code path behind ``python -m repro trace import``: parses,
    names, stamps the canonical description, writes the record keyed by
    content fingerprint and registers the workload in this process.
    Returns ``(name, manifest_meta)``.
    """
    fmt = fmt or detect_format(path)
    trace = parse_trace_file(path, fmt=fmt,
                             workload=name or default_trace_name(path))
    registered = register_trace(trace, source=os.path.abspath(path))
    store.save_trace(trace, source=os.path.abspath(path), fmt=fmt)
    fingerprint_hex = trace_fingerprint_hex(trace)
    meta = {
        "name": registered,
        "accesses": len(trace),
        "fingerprint": fingerprint_hex,
        "source": os.path.abspath(path),
        "format": fmt,
    }
    return registered, meta
