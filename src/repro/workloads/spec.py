"""Synthetic SPEC CPU2006-like workloads (astar, lbm, mcf, milc).

Each generator mimics the memory behaviour that the paper's analyses rely
on rather than the exact instruction stream of the original benchmark:

* ``astar`` — grid/graph path finding.  A small, hot "frontier" structure is
  reused constantly while node expansion touches a larger region with mixed
  locality.  Some sets become much hotter than others (set-hotness use case).
* ``lbm`` — lattice-Boltzmann streaming.  Long sequential scans over a grid
  far larger than the LLC are interleaved with accesses to a small collision
  table with strong reuse; recency-based policies evict the reusable lines
  during scans, which is exactly the interference the paper discusses.
* ``mcf`` — network-simplex pointer chasing.  Arc/node traversal touches a
  working set far larger than the LLC with near-random order, producing the
  ~95% miss-rate behaviour and the dead-on-arrival PCs that become bypass
  candidates.
* ``milc`` — SU(3) lattice sweeps with fixed strides.  Most PCs have very
  regular (low-variance) reuse distances, a few have noisy reuse; this is the
  stable/unstable PC split exploited by the Mockingjay use case.
"""

from __future__ import annotations

import random
from typing import List

from repro.workloads.generator import (
    BLOCK_BYTES,
    WorkloadGenerator,
    register_workload,
)
from repro.workloads.symbols import BinaryImage
from repro.workloads.trace import TraceAccess


def _pick_memory_pcs(binary: BinaryImage, function_name: str, count: int) -> List[int]:
    """Return up to ``count`` memory-instruction PCs from a named function."""
    for function in binary.functions:
        if function.name == function_name:
            pcs = function.memory_pcs
            if len(pcs) < count:
                raise ValueError(
                    f"function {function_name} has only {len(pcs)} memory PCs, need {count}"
                )
            return pcs[:count]
    raise KeyError(f"function {function_name!r} not found in binary image")


@register_workload
class AstarWorkload(WorkloadGenerator):
    """Grid path-finding with a hot frontier and mixed-locality expansion."""

    name = "astar"
    description = (
        "astar (SPEC CPU2006 473.astar-like): grid path finding. A small "
        "frontier/priority structure is reused heavily while node expansion "
        "walks a larger map region with mixed spatial locality."
    )
    dominant_pattern = "mixed locality with a hot frontier structure"
    working_set_blocks = 3072

    REGION_MAP = 0x2bfd4000000
    REGION_FRONTIER = 0x2bfe0000000
    REGION_BOUND = 0x2bff0000000

    def build_binary(self, rng: random.Random) -> BinaryImage:
        binary = BinaryImage(self.name)
        binary.add_function(
            "_ZN7way2obj11createwayarERP6pointtRi", 0x409200, 40,
            ["load", "load", "store", "load", "control", "load"],
            rng, description="creates way array entries while expanding nodes",
        )
        binary.add_function(
            "_ZN9regwayobj10makebound2ERK9flexarrayI7regobjtES4_", 0x409500, 36,
            ["load", "store", "load", "load"],
            rng, description="builds the new boundary (frontier) for region search",
        )
        binary.add_function(
            "_ZN6wayobj10makebound2EPiiS0_", 0x4090a0, 30,
            ["load", "load", "store"],
            rng, description="boundary construction over the map grid",
        )
        binary.add_function(
            "_ZN9statinfot11addwaylengtEid", 0x418480, 24,
            ["load", "store", "compute"],
            rng, description="statistics bookkeeping on the hot path",
        )
        return binary

    def emit_accesses(self, num_accesses: int, rng: random.Random) -> List[TraceAccess]:
        expand_pcs = _pick_memory_pcs(self.binary, "_ZN7way2obj11createwayarERP6pointtRi", 6)
        frontier_pcs = _pick_memory_pcs(
            self.binary, "_ZN9regwayobj10makebound2ERK9flexarrayI7regobjtES4_", 4)
        bound_pcs = _pick_memory_pcs(self.binary, "_ZN6wayobj10makebound2EPiiS0_", 3)
        stat_pcs = _pick_memory_pcs(self.binary, "_ZN9statinfot11addwaylengtEid", 3)

        map_blocks = self.working_set_blocks
        frontier_blocks = 96
        bound_blocks = 384

        accesses: List[TraceAccess] = []
        cursor = rng.randrange(map_blocks)
        while len(accesses) < num_accesses:
            # Expand a node: a burst of spatially-close map accesses.
            burst = rng.randint(3, 7)
            for i in range(burst):
                if len(accesses) >= num_accesses:
                    break
                block = (cursor + rng.randint(-2, 3)) % map_blocks
                accesses.append(TraceAccess(
                    pc=expand_pcs[i % len(expand_pcs)],
                    address=self.block_address(self.REGION_MAP, block),
                    is_write=(i % 4 == 3),
                    instructions_since_last=rng.randint(6, 14),
                ))
            # Frontier updates: small, hot region with very high reuse.
            for i in range(rng.randint(2, 4)):
                if len(accesses) >= num_accesses:
                    break
                block = rng.randrange(frontier_blocks)
                accesses.append(TraceAccess(
                    pc=frontier_pcs[i % len(frontier_pcs)],
                    address=self.block_address(self.REGION_FRONTIER, block),
                    is_write=(i % 2 == 1),
                    instructions_since_last=rng.randint(4, 10),
                ))
            # Boundary region: moderate reuse, skewed toward a hot subset so
            # some cache sets become much hotter than others.
            if rng.random() < 0.6:
                if rng.random() < 0.7:
                    block = rng.randrange(bound_blocks // 4)
                else:
                    block = rng.randrange(bound_blocks)
                accesses.append(TraceAccess(
                    pc=bound_pcs[rng.randrange(len(bound_pcs))],
                    address=self.block_address(self.REGION_BOUND, block),
                    is_write=False,
                    instructions_since_last=rng.randint(5, 12),
                ))
            # Occasional statistics update to a tiny region (always hits).
            if rng.random() < 0.25:
                accesses.append(TraceAccess(
                    pc=stat_pcs[rng.randrange(len(stat_pcs))],
                    address=self.block_address(self.REGION_BOUND + 0x100000,
                                               rng.randrange(8)),
                    is_write=True,
                    instructions_since_last=rng.randint(8, 16),
                ))
            # Jump to a new part of the map occasionally (re-rooting search).
            if rng.random() < 0.15:
                cursor = rng.randrange(map_blocks)
            else:
                cursor = (cursor + rng.randint(1, 6)) % map_blocks
        return accesses[:num_accesses]


@register_workload
class LbmWorkload(WorkloadGenerator):
    """Streaming stencil sweeps interleaved with a small reused table."""

    name = "lbm"
    description = (
        "lbm (SPEC CPU2006 470.lbm-like): lattice-Boltzmann fluid dynamics. "
        "Long streaming sweeps over a grid much larger than the LLC are "
        "interleaved with a small, heavily reused collision table; scans "
        "evict the reusable lines under recency-based policies."
    )
    dominant_pattern = "streaming scans interleaved with a small reused working set"
    working_set_blocks = 12288

    REGION_GRID_SRC = 0x35e78000000
    REGION_GRID_DST = 0x35e90000000
    REGION_TABLE = 0x35ea0000000

    def build_binary(self, rng: random.Random) -> BinaryImage:
        binary = BinaryImage(self.name)
        binary.add_function(
            "LBM_performStreamCollide", 0x401d80, 48,
            ["stream", "stream", "load", "store", "stream", "load"],
            rng, description="main stream-collide kernel sweeping the lattice",
        )
        binary.add_function(
            "LBM_handleInOutFlow", 0x402e80, 30,
            ["load", "store", "load"],
            rng, description="in/out flow boundary handling with table reuse",
        )
        binary.add_function(
            "LBM_swapGrids", 0x4037a0, 20,
            ["load", "store"],
            rng, description="pointer swap and occasional copies between grids",
        )
        return binary

    def emit_accesses(self, num_accesses: int, rng: random.Random) -> List[TraceAccess]:
        stream_pcs = _pick_memory_pcs(self.binary, "LBM_performStreamCollide", 6)
        table_pcs = _pick_memory_pcs(self.binary, "LBM_handleInOutFlow", 3)
        swap_pcs = _pick_memory_pcs(self.binary, "LBM_swapGrids", 2)

        grid_blocks = self.working_set_blocks
        table_blocks = 160

        accesses: List[TraceAccess] = []
        position = 0
        while len(accesses) < num_accesses:
            # Streaming phase: sequential scan of source and destination grids.
            for i in range(rng.randint(6, 10)):
                if len(accesses) >= num_accesses:
                    break
                block = position % grid_blocks
                accesses.append(TraceAccess(
                    pc=stream_pcs[i % len(stream_pcs)],
                    address=self.block_address(self.REGION_GRID_SRC, block),
                    is_write=False,
                    instructions_since_last=rng.randint(10, 18),
                ))
                if i % 2 == 0 and len(accesses) < num_accesses:
                    accesses.append(TraceAccess(
                        pc=stream_pcs[(i + 3) % len(stream_pcs)],
                        address=self.block_address(self.REGION_GRID_DST, block),
                        is_write=True,
                        instructions_since_last=rng.randint(4, 8),
                    ))
                position += 1
            # Interleaved accesses to the small reused collision table.
            for i in range(rng.randint(2, 4)):
                if len(accesses) >= num_accesses:
                    break
                block = rng.randrange(table_blocks)
                accesses.append(TraceAccess(
                    pc=table_pcs[i % len(table_pcs)],
                    address=self.block_address(self.REGION_TABLE, block),
                    is_write=(i % 3 == 2),
                    instructions_since_last=rng.randint(6, 12),
                ))
            # Occasional grid swap bookkeeping touching a tiny region.
            if rng.random() < 0.1:
                accesses.append(TraceAccess(
                    pc=swap_pcs[rng.randrange(len(swap_pcs))],
                    address=self.block_address(self.REGION_TABLE + 0x80000,
                                               rng.randrange(4)),
                    is_write=True,
                    instructions_since_last=rng.randint(12, 20),
                ))
        return accesses[:num_accesses]


@register_workload
class McfWorkload(WorkloadGenerator):
    """Pointer chasing over a huge arc/node working set (capacity bound)."""

    name = "mcf"
    description = (
        "mcf (SPEC CPU2006 429.mcf-like): network simplex optimisation. "
        "Pointer chasing over arc and node structures far larger than the "
        "LLC yields near-capacity miss rates; a few PCs touching small "
        "bookkeeping structures still hit."
    )
    dominant_pattern = "pointer chasing with a working set far larger than the LLC"
    working_set_blocks = 24576

    REGION_ARCS = 0xa3a00000000
    REGION_NODES = 0xa3b00000000
    REGION_BASKET = 0xa3c00000000

    def build_binary(self, rng: random.Random) -> BinaryImage:
        binary = BinaryImage(self.name)
        binary.add_function(
            "primal_bea_mpp", 0x401380, 44,
            ["pointer", "load", "load", "control", "pointer", "load"],
            rng, description="arc scanning for the entering basis variable",
        )
        binary.add_function(
            "refresh_potential", 0x4037a0, 36,
            ["pointer", "load", "store", "pointer"],
            rng, description="tree traversal updating node potentials",
        )
        binary.add_function(
            "price_out_impl", 0x402e80, 32,
            ["load", "load", "compute"],
            rng, description="pricing loop over candidate arcs",
        )
        binary.add_function(
            "insert_new_arc", 0x404a60, 24,
            ["load", "store", "store"],
            rng, description="basket/heap maintenance in a small hot region",
        )
        return binary

    def emit_accesses(self, num_accesses: int, rng: random.Random) -> List[TraceAccess]:
        arc_pcs = _pick_memory_pcs(self.binary, "primal_bea_mpp", 6)
        node_pcs = _pick_memory_pcs(self.binary, "refresh_potential", 4)
        price_pcs = _pick_memory_pcs(self.binary, "price_out_impl", 3)
        basket_pcs = _pick_memory_pcs(self.binary, "insert_new_arc", 3)

        arc_blocks = self.working_set_blocks
        node_blocks = self.working_set_blocks // 2
        basket_blocks = 48

        # Pre-build a pseudo-random pointer-chain permutation over arcs so the
        # traversal order is fixed for a given seed.
        chain = list(range(arc_blocks))
        rng.shuffle(chain)

        accesses: List[TraceAccess] = []
        arc_cursor = 0
        while len(accesses) < num_accesses:
            # Arc scan: pointer chase with essentially no short-term reuse.
            for i in range(rng.randint(4, 8)):
                if len(accesses) >= num_accesses:
                    break
                arc_cursor = chain[arc_cursor % arc_blocks]
                accesses.append(TraceAccess(
                    pc=arc_pcs[i % len(arc_pcs)],
                    address=self.block_address(self.REGION_ARCS, arc_cursor),
                    is_write=False,
                    instructions_since_last=rng.randint(5, 10),
                ))
            # Node potential updates: random accesses over a large node array.
            for i in range(rng.randint(2, 4)):
                if len(accesses) >= num_accesses:
                    break
                block = rng.randrange(node_blocks)
                accesses.append(TraceAccess(
                    pc=node_pcs[i % len(node_pcs)],
                    address=self.block_address(self.REGION_NODES, block),
                    is_write=(i % 2 == 1),
                    instructions_since_last=rng.randint(4, 9),
                ))
            # Pricing loop: strided reads over arcs (slightly better locality).
            if rng.random() < 0.5:
                base = rng.randrange(arc_blocks)
                for i in range(3):
                    if len(accesses) >= num_accesses:
                        break
                    accesses.append(TraceAccess(
                        pc=price_pcs[i % len(price_pcs)],
                        address=self.block_address(self.REGION_ARCS,
                                                   (base + i * 16) % arc_blocks),
                        is_write=False,
                        instructions_since_last=rng.randint(6, 12),
                    ))
            # Basket maintenance: tiny hot region, nearly always hits.
            if rng.random() < 0.35:
                accesses.append(TraceAccess(
                    pc=basket_pcs[rng.randrange(len(basket_pcs))],
                    address=self.block_address(self.REGION_BASKET,
                                               rng.randrange(basket_blocks)),
                    is_write=True,
                    instructions_since_last=rng.randint(6, 12),
                ))
        return accesses[:num_accesses]


@register_workload
class MilcWorkload(WorkloadGenerator):
    """Strided lattice sweeps with highly regular per-PC reuse distances."""

    name = "milc"
    description = (
        "milc (SPEC CPU2006 433.milc-like): SU(3) lattice QCD. Regular "
        "strided sweeps over lattice links give most PCs predictable reuse "
        "distances, while gather/scatter phases add a noisy minority."
    )
    dominant_pattern = "regular strided sweeps with predictable reuse"
    working_set_blocks = 2560

    REGION_LINKS = 0x7f4180000000
    REGION_SITES = 0x7f4190000000
    REGION_TEMP = 0x7f41a0000000

    def build_binary(self, rng: random.Random) -> BinaryImage:
        binary = BinaryImage(self.name)
        binary.add_function(
            "mult_su3_na", 0x4138e0, 40,
            ["load", "load", "compute", "store", "load"],
            rng, description="SU(3) matrix multiply over lattice links (regular sweep)",
        )
        binary.add_function(
            "u_shift_fermion", 0x417f00, 32,
            ["load", "load", "store"],
            rng, description="fermion field shifts with fixed stride",
        )
        binary.add_function(
            "scatter_gather_site", 0x4184a0, 28,
            ["pointer", "load", "store"],
            rng, description="irregular gather/scatter over site neighbours",
        )
        return binary

    def emit_accesses(self, num_accesses: int, rng: random.Random) -> List[TraceAccess]:
        mult_pcs = _pick_memory_pcs(self.binary, "mult_su3_na", 5)
        shift_pcs = _pick_memory_pcs(self.binary, "u_shift_fermion", 3)
        gather_pcs = _pick_memory_pcs(self.binary, "scatter_gather_site", 3)

        link_blocks = self.working_set_blocks
        site_blocks = self.working_set_blocks // 2
        temp_blocks = 64

        accesses: List[TraceAccess] = []
        sweep_position = 0
        while len(accesses) < num_accesses:
            # Regular sweep: every PC revisits the same block exactly one
            # working-set-sweep later, so reuse distance is extremely stable.
            for i in range(rng.randint(8, 12)):
                if len(accesses) >= num_accesses:
                    break
                block = sweep_position % link_blocks
                accesses.append(TraceAccess(
                    pc=mult_pcs[i % len(mult_pcs)],
                    address=self.block_address(self.REGION_LINKS, block),
                    is_write=(i % 5 == 4),
                    instructions_since_last=rng.randint(12, 20),
                ))
                if i % 3 == 0 and len(accesses) < num_accesses:
                    accesses.append(TraceAccess(
                        pc=shift_pcs[(i // 3) % len(shift_pcs)],
                        address=self.block_address(self.REGION_SITES,
                                                   (block * 2) % site_blocks),
                        is_write=False,
                        instructions_since_last=rng.randint(8, 14),
                    ))
                sweep_position += 1
            # Temp buffer: always-hot accumulators.
            if rng.random() < 0.4:
                accesses.append(TraceAccess(
                    pc=mult_pcs[-1],
                    address=self.block_address(self.REGION_TEMP,
                                               rng.randrange(temp_blocks)),
                    is_write=True,
                    instructions_since_last=rng.randint(4, 10),
                ))
            # Noisy gather/scatter phase: random neighbours, unstable reuse.
            if rng.random() < 0.3:
                for i in range(rng.randint(2, 5)):
                    if len(accesses) >= num_accesses:
                        break
                    accesses.append(TraceAccess(
                        pc=gather_pcs[i % len(gather_pcs)],
                        address=self.block_address(self.REGION_SITES,
                                                   rng.randrange(site_blocks)),
                        is_write=(i % 2 == 1),
                        instructions_since_last=rng.randint(5, 15),
                    ))
        return accesses[:num_accesses]
