"""Workload generator base class and registry."""

from __future__ import annotations

import random
import zlib
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import DuplicateNameError, UnknownNameError
from repro.workloads.symbols import BinaryImage
from repro.workloads.trace import MemoryTrace, TraceAccess

#: Cache block size in bytes used when generators reason in blocks.
BLOCK_BYTES = 64


def _stable_hash(name: str) -> int:
    """Process-independent hash for seeding (unlike builtin ``hash``)."""
    return zlib.crc32(name.encode("utf-8"))


@dataclass
class WorkloadSpec:
    """Static description of a workload used in database descriptions."""

    name: str
    description: str
    dominant_pattern: str
    working_set_blocks: int


class WorkloadGenerator(ABC):
    """Deterministic synthetic workload generator.

    Subclasses build a :class:`BinaryImage` describing the program's
    functions and memory instructions, then emit a :class:`MemoryTrace` whose
    access pattern mimics the documented behaviour of the original SPEC
    workload.  All randomness flows through a seeded ``random.Random`` so the
    same ``(workload, seed, length)`` tuple always yields an identical trace,
    which keeps CacheMindBench ground truths stable.
    """

    #: canonical workload name (``astar``, ``lbm``, ``mcf``, ...)
    name: str = "workload"
    #: registry kind: ``"synthetic"`` here; ingested traces report
    #: ``"ingested"`` (see :mod:`repro.workloads.ingest`).
    kind: str = "synthetic"
    #: one-line description stored in the trace database
    description: str = ""
    #: dominant access pattern summary (used by workload-analysis answers)
    dominant_pattern: str = ""
    #: nominal working-set size in 64-byte blocks
    working_set_blocks: int = 4096

    def __init__(self, seed: int = 0):
        self.seed = seed
        # zlib.crc32, not hash(): str hashing is randomised per process, and
        # traces (hence CacheMindBench ground truths) must be stable across
        # runs, not just within one interpreter.
        self._rng = random.Random((_stable_hash(self.name) & 0xFFFF) ^ seed)
        self.binary = self.build_binary(self._rng)

    # ------------------------------------------------------------------
    # subclass hooks
    # ------------------------------------------------------------------
    @abstractmethod
    def build_binary(self, rng: random.Random) -> BinaryImage:
        """Create the synthetic binary image (functions, PCs, assembly)."""

    @abstractmethod
    def emit_accesses(self, num_accesses: int, rng: random.Random) -> List[TraceAccess]:
        """Emit ``num_accesses`` dynamic memory accesses."""

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def spec(self) -> WorkloadSpec:
        return WorkloadSpec(
            name=self.name,
            description=self.description,
            dominant_pattern=self.dominant_pattern,
            working_set_blocks=self.working_set_blocks,
        )

    def generate(self, num_accesses: int = 20000) -> MemoryTrace:
        """Generate a trace with ``num_accesses`` memory accesses."""
        if num_accesses <= 0:
            raise ValueError("num_accesses must be positive")
        rng = random.Random((_stable_hash(self.name) & 0xFFFF) ^ self.seed ^ 0x5EED)
        accesses = self.emit_accesses(num_accesses, rng)
        trace = MemoryTrace(
            workload=self.name,
            accesses=accesses,
            binary=self.binary,
            description=self.description,
            seed=self.seed,
        )
        return trace

    # ------------------------------------------------------------------
    # helpers for subclasses
    # ------------------------------------------------------------------
    @staticmethod
    def block_address(region_base: int, block_index: int) -> int:
        """Byte address of the first byte of ``block_index`` within a region."""
        return region_base + block_index * BLOCK_BYTES


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
#: name -> factory.  A factory is anything callable as ``factory(seed=...)``
#: returning a generator-like object (``generate``/``description``), with
#: ``name``/``kind``/``description`` readable as attributes without calling
#: it: generator classes qualify directly, and ingested-trace entries
#: (:mod:`repro.workloads.ingest`) register lazy-loading factory objects.
WorkloadFactory = Callable[..., "WorkloadGenerator"]

_REGISTRY: Dict[str, WorkloadFactory] = {}


def _load_builtin_workloads() -> None:
    # Imported lazily to avoid a circular import at module load time.
    from repro.workloads import spec as _spec  # noqa: F401
    from repro.workloads import microbench as _microbench  # noqa: F401
    from repro.workloads import composite as _composite  # noqa: F401


def register_workload(factory: WorkloadFactory) -> WorkloadFactory:
    """Register a generator class (decorator) or factory under its ``name``.

    Registering a name twice raises :class:`DuplicateNameError` — silently
    overwriting would let e.g. an ingested trace shadow a synthetic
    generator and change every later session's answers without a trace.
    Re-registering the *same* factory object is an idempotent no-op (module
    reloads do this).
    """
    name = factory.name
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not factory:
        raise DuplicateNameError(
            f"workload {name!r} is already registered "
            f"({getattr(existing, 'kind', 'synthetic')}); unregister it "
            f"first or pick another name")
    _REGISTRY[name] = factory
    return factory


def unregister_workload(name: str) -> None:
    """Remove a registered workload (no-op when absent)."""
    _REGISTRY.pop(name, None)


def available_workloads() -> List[str]:
    """Names of all registered workloads."""
    _load_builtin_workloads()
    return sorted(_REGISTRY)


def workload_kind(name: str) -> str:
    """``"synthetic"`` or ``"ingested"`` for a registered name."""
    return workload_info(name)["kind"]


def workload_info(name: str) -> Dict[str, str]:
    """Registry metadata for one workload, without instantiating it.

    Reads the factory's attributes only — an ingested workload's trace is
    *not* loaded — so listings stay cheap.
    """
    _load_builtin_workloads()
    if name not in _REGISTRY:
        raise UnknownNameError(
            f"unknown workload {name!r}; available: {available_workloads()}")
    factory = _REGISTRY[name]
    return {
        "name": name,
        "kind": getattr(factory, "kind", "synthetic"),
        "description": getattr(factory, "description", ""),
        "dominant_pattern": getattr(factory, "dominant_pattern", ""),
    }


def available_workload_info() -> List[Dict[str, str]]:
    """:func:`workload_info` for every registered workload, name-sorted."""
    return [workload_info(name) for name in available_workloads()]


def get_workload(name: str, seed: int = 0) -> WorkloadGenerator:
    """Instantiate a registered workload generator by name."""
    _load_builtin_workloads()
    if name not in _REGISTRY:
        raise UnknownNameError(
            f"unknown workload {name!r}; available: {available_workloads()}")
    return _REGISTRY[name](seed=seed)


def generate_trace(name: str, num_accesses: int = 20000, seed: int = 0) -> MemoryTrace:
    """Convenience wrapper: instantiate and generate in one call."""
    return get_workload(name, seed=seed).generate(num_accesses)
