"""Memory trace containers consumed by the simulation engine."""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.workloads.symbols import BinaryImage


@dataclass
class TraceAccess:
    """One dynamic memory access.

    ``address`` is a byte address; the cache model converts it to a block
    address.  ``instructions_since_last`` is the number of retired
    instructions between the previous memory access and this one, which feeds
    the analytic IPC model.  ``is_prefetch`` marks software-prefetch requests
    (they warm the cache but do not stall the pipeline).
    """

    pc: int
    address: int
    is_write: bool = False
    instructions_since_last: int = 4
    is_prefetch: bool = False


@dataclass
class MemoryTrace:
    """A full workload trace plus its synthetic binary image."""

    workload: str
    accesses: List[TraceAccess] = field(default_factory=list)
    binary: Optional[BinaryImage] = None
    description: str = ""
    seed: int = 0

    def __len__(self) -> int:
        return len(self.accesses)

    def __iter__(self) -> Iterator[TraceAccess]:
        return iter(self.accesses)

    def __getitem__(self, index: int) -> TraceAccess:
        return self.accesses[index]

    @property
    def total_instructions(self) -> int:
        """Total retired instructions represented by the trace."""
        return sum(access.instructions_since_last + 1
                   for access in self.accesses
                   if not access.is_prefetch)

    def fingerprint(self) -> int:
        """Content hash of the access stream (cached after first call).

        Memoisation keys use this instead of (workload, length, seed)
        metadata alone, so a hand-built trace that happens to share those
        attributes with a generated one cannot collide.  Traces are treated
        as immutable once fingerprinted: :meth:`append` invalidates the
        cache, but in-place edits of ``accesses`` do not — mutate a copy
        instead.
        """
        cached = getattr(self, "_fingerprint", None)
        if cached is not None:
            return cached
        digest = zlib.crc32(self.workload.encode("utf-8"))
        for access in self.accesses:
            # instructions_since_last feeds the timing model, so traces
            # differing only in it must not collide (they have different IPC).
            digest = zlib.crc32(
                b"%d,%d,%d,%d,%d;" % (access.pc, access.address,
                                      access.is_write, access.is_prefetch,
                                      access.instructions_since_last),
                digest)
        self._fingerprint = digest
        return digest

    @property
    def unique_pcs(self) -> List[int]:
        seen = set()
        ordered = []
        for access in self.accesses:
            if access.pc not in seen:
                seen.add(access.pc)
                ordered.append(access.pc)
        return ordered

    @property
    def unique_addresses(self) -> List[int]:
        seen = set()
        ordered = []
        for access in self.accesses:
            if access.address not in seen:
                seen.add(access.address)
                ordered.append(access.address)
        return ordered

    def append(self, access: TraceAccess) -> None:
        self.accesses.append(access)
        self._fingerprint = None

    def extend(self, accesses: Iterable[TraceAccess]) -> None:
        self.accesses.extend(accesses)
        self._fingerprint = None

    def slice(self, start: int, stop: Optional[int] = None) -> "MemoryTrace":
        """Return a shallow copy containing a contiguous window of accesses."""
        return MemoryTrace(
            workload=self.workload,
            accesses=self.accesses[start:stop],
            binary=self.binary,
            description=self.description,
            seed=self.seed,
        )

    def pc_access_counts(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for access in self.accesses:
            counts[access.pc] = counts.get(access.pc, 0) + 1
        return counts

    def with_prefetches(self, prefetches: Sequence[TraceAccess]) -> "MemoryTrace":
        """Return a new trace with prefetch accesses merged in order.

        Prefetches are tagged with the position (``instructions_since_last``
        is reused to carry ordering) by the caller; here we simply interleave
        them before the access with the same index when provided as
        ``(index, access)`` pairs via :func:`insert_prefetches` instead.
        """
        merged = MemoryTrace(
            workload=self.workload,
            accesses=list(self.accesses) + list(prefetches),
            binary=self.binary,
            description=self.description,
            seed=self.seed,
        )
        return merged


def insert_prefetches(trace: MemoryTrace,
                      prefetch_plan: Sequence[tuple],
                      prefetch_pc: int) -> MemoryTrace:
    """Insert software prefetch accesses into a trace.

    ``prefetch_plan`` is a sequence of ``(position, address)`` tuples meaning
    "before the access at index ``position``, issue a prefetch of
    ``address``".  The resulting trace models a recompiled binary with
    ``__builtin_prefetch`` calls added (software-prefetch use case, section
    6.3 of the paper).
    """
    plan_by_position: Dict[int, List[int]] = {}
    for position, address in prefetch_plan:
        plan_by_position.setdefault(position, []).append(address)

    new_trace = MemoryTrace(
        workload=trace.workload,
        binary=trace.binary,
        description=trace.description + " (+software prefetch)",
        seed=trace.seed,
    )
    for index, access in enumerate(trace.accesses):
        for address in plan_by_position.get(index, ()):  # prefetches first
            new_trace.append(
                TraceAccess(
                    pc=prefetch_pc,
                    address=address,
                    is_write=False,
                    instructions_since_last=0,
                    is_prefetch=True,
                )
            )
        new_trace.append(access)
    return new_trace
