"""Memory trace containers consumed by the simulation engine.

:class:`MemoryTrace` is backed by four typed ``array.array`` columns (one
machine word per access instead of a Python object): program counter,
byte address, a flags byte (write / prefetch bits) and the retired
instruction gap feeding the timing model.  The columnar spine gives

* compact storage shared (zero-copy) with slices,
* a fingerprint computed by hashing whole column buffers instead of one
  ``crc32`` call per access,
* raw-array iteration for the simulation hot loops (:meth:`MemoryTrace.columns`),

while :class:`TraceAccess` remains the per-access *row view*: iteration,
indexing and ``trace.accesses`` still yield ``TraceAccess`` objects, so
existing callers are unaffected.
"""

from __future__ import annotations

import sys
import zlib
from array import array
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.workloads.symbols import BinaryImage

#: Bit set in the flags column for a store (demand write).
FLAG_WRITE = 0x1
#: Bit set in the flags column for a software-prefetch access.
FLAG_PREFETCH = 0x2

#: array typecodes of the four columns (pc, address, flags,
#: instructions_since_last).  64-bit unsigned words for addresses/PCs and the
#: instruction gap, one byte for the flags.
COLUMN_TYPECODES = ("Q", "Q", "B", "Q")

#: Buffer-capable column storage: a concrete array or a zero-copy window.
ColumnData = Union[array, memoryview]


@dataclass
class TraceAccess:
    """One dynamic memory access.

    ``address`` is a byte address; the cache model converts it to a block
    address.  ``instructions_since_last`` is the number of retired
    instructions between the previous memory access and this one, which feeds
    the analytic IPC model.  ``is_prefetch`` marks software-prefetch requests
    (they warm the cache but do not stall the pipeline).
    """

    pc: int
    address: int
    is_write: bool = False
    instructions_since_last: int = 4
    is_prefetch: bool = False


class _AccessView(Sequence):
    """Read-only ``Sequence[TraceAccess]`` view over a trace's columns.

    Materialises ``TraceAccess`` rows on demand, so legacy callers that index
    or iterate ``trace.accesses`` keep working without the trace storing
    per-access objects.
    """

    __slots__ = ("_trace",)

    def __init__(self, trace: "MemoryTrace"):
        self._trace = trace

    def __len__(self) -> int:
        return len(self._trace)

    def __iter__(self) -> Iterator[TraceAccess]:
        return iter(self._trace)

    def __getitem__(self, index):
        if isinstance(index, slice):
            trace = self._trace
            return [trace[i] for i in range(*index.indices(len(trace)))]
        return self._trace[index]

    def __repr__(self) -> str:
        return f"<accesses of {self._trace!r}>"


class MemoryTrace:
    """A full workload trace plus its synthetic binary image.

    Data lives in typed columns (see :data:`COLUMN_TYPECODES`); rows are
    materialised as :class:`TraceAccess` only at the API boundary.  Slices
    share the parent's buffers (zero-copy) until mutated.
    """

    def __init__(self, workload: str,
                 accesses: Optional[Iterable[TraceAccess]] = None,
                 binary: Optional[BinaryImage] = None,
                 description: str = "",
                 seed: int = 0,
                 columns: Optional[Tuple[ColumnData, ...]] = None):
        self.workload = workload
        self.binary = binary
        self.description = description
        self.seed = seed
        self._fingerprint: Optional[int] = None
        self._total_instructions: Optional[int] = None
        # Set once this trace has handed buffers to a slice(): the next
        # mutation swaps in fresh copies (arrays cannot grow while a
        # memoryview exports their buffer; the slice keeps the old ones).
        self._buffers_shared = False
        if columns is not None:
            if accesses is not None:
                raise ValueError("pass either accesses or columns, not both")
            self._pc, self._address, self._flags, self._instr = columns
        else:
            self._pc = array("Q")
            self._address = array("Q")
            self._flags = array("B")
            self._instr = array("Q")
            if accesses:
                self.extend(accesses)

    # ------------------------------------------------------------------
    # columnar access (the hot-loop API)
    # ------------------------------------------------------------------
    def columns(self) -> Tuple[ColumnData, ColumnData, ColumnData, ColumnData]:
        """The raw ``(pc, address, flags, instructions_since_last)`` columns.

        Returned objects are the live buffers (arrays, or zero-copy
        memoryviews for sliced traces): index them read-only.
        """
        return self._pc, self._address, self._flags, self._instr

    @property
    def is_view(self) -> bool:
        """True when this trace is a zero-copy window over another trace."""
        return isinstance(self._pc, memoryview)

    def _materialise(self) -> None:
        """Make the columns privately owned and growable (copy-on-write).

        Covers both directions of buffer sharing: a slice materialises its
        memoryviews, and a sliced *parent* sheds the exported buffers (an
        array cannot be resized while a view exports it — the slice keeps
        the old buffers alive).
        """
        if not (self.is_view or self._buffers_shared):
            return
        self._pc, self._address, self._flags, self._instr = tuple(
            self._copied_column(index) for index in range(4))
        self._buffers_shared = False

    def _copied_column(self, index: int) -> array:
        column = (self._pc, self._address, self._flags, self._instr)[index]
        if isinstance(column, array):
            return column[:]
        copied = array(COLUMN_TYPECODES[index])
        copied.frombytes(bytes(column))
        return copied

    def _invalidate(self) -> None:
        self._fingerprint = None
        self._total_instructions = None

    # ------------------------------------------------------------------
    # row-view protocol (TraceAccess at the boundary)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._pc)

    def __iter__(self) -> Iterator[TraceAccess]:
        for pc, address, flags, gap in zip(self._pc, self._address,
                                           self._flags, self._instr):
            yield TraceAccess(pc=pc, address=address,
                              is_write=bool(flags & FLAG_WRITE),
                              instructions_since_last=gap,
                              is_prefetch=bool(flags & FLAG_PREFETCH))

    def __getitem__(self, index: int) -> TraceAccess:
        flags = self._flags[index]
        return TraceAccess(pc=self._pc[index], address=self._address[index],
                           is_write=bool(flags & FLAG_WRITE),
                           instructions_since_last=self._instr[index],
                           is_prefetch=bool(flags & FLAG_PREFETCH))

    @property
    def accesses(self) -> _AccessView:
        """Sequence view yielding :class:`TraceAccess` rows on demand."""
        return _AccessView(self)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MemoryTrace):
            return NotImplemented
        return (self.workload == other.workload
                and self.seed == other.seed
                and self.description == other.description
                and all(bytes(memoryview(mine)) == bytes(memoryview(theirs))
                        for mine, theirs in zip(self.columns(), other.columns())))

    def __repr__(self) -> str:
        kind = "view" if self.is_view else "owned"
        return (f"MemoryTrace(workload={self.workload!r}, "
                f"accesses={len(self)}, seed={self.seed}, {kind})")

    # ------------------------------------------------------------------
    # pickling (views materialise; arrays pickle natively)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        return {
            "workload": self.workload,
            "binary": self.binary,
            "description": self.description,
            "seed": self.seed,
            "columns": tuple(self._copied_column(index) for index in range(4)),
        }

    def __setstate__(self, state: dict) -> None:
        self.workload = state["workload"]
        self.binary = state["binary"]
        self.description = state["description"]
        self.seed = state["seed"]
        self._pc, self._address, self._flags, self._instr = state["columns"]
        self._fingerprint = None
        self._total_instructions = None
        self._buffers_shared = False

    # ------------------------------------------------------------------
    # derived values (memoised; invalidated by append/extend)
    # ------------------------------------------------------------------
    @property
    def total_instructions(self) -> int:
        """Total retired instructions represented by the trace (memoised)."""
        cached = self._total_instructions
        if cached is None:
            cached = sum(gap + 1 for flags, gap in zip(self._flags, self._instr)
                         if not flags & FLAG_PREFETCH)
            self._total_instructions = cached
        return cached

    def fingerprint(self) -> int:
        """Content hash of the access stream (cached after first call).

        Memoisation keys use this instead of (workload, length, seed)
        metadata alone, so a hand-built trace that happens to share those
        attributes with a generated one cannot collide.  The digest is a
        ``crc32`` over the workload name followed by each raw column buffer
        — four ``crc32`` calls total instead of one per access — with
        buffers normalised to little-endian so fingerprints (and therefore
        memoiser keys and store digests) are identical across hosts.
        Traces are treated as immutable once fingerprinted: :meth:`append` /
        :meth:`extend` invalidate the cache, but writing into the columns
        directly does not — mutate a copy instead.
        """
        cached = self._fingerprint
        if cached is not None:
            return cached
        digest = zlib.crc32(self.workload.encode("utf-8"))
        big_endian = sys.byteorder == "big"
        for index, column in enumerate(self.columns()):
            if big_endian:
                swapped = self._copied_column(index)
                swapped.byteswap()
                buffer = memoryview(swapped)
            else:
                buffer = memoryview(column)
            digest = zlib.crc32(buffer, digest)
        self._fingerprint = digest
        return digest

    @property
    def unique_pcs(self) -> List[int]:
        seen = set()
        ordered = []
        for pc in self._pc:
            if pc not in seen:
                seen.add(pc)
                ordered.append(pc)
        return ordered

    @property
    def unique_addresses(self) -> List[int]:
        seen = set()
        ordered = []
        for address in self._address:
            if address not in seen:
                seen.add(address)
                ordered.append(address)
        return ordered

    def pc_access_counts(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for pc in self._pc:
            counts[pc] = counts.get(pc, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # mutation (copy-on-write for views)
    # ------------------------------------------------------------------
    def append(self, access: TraceAccess) -> None:
        self._materialise()
        self._pc.append(access.pc)
        self._address.append(access.address)
        self._flags.append((FLAG_WRITE if access.is_write else 0)
                           | (FLAG_PREFETCH if access.is_prefetch else 0))
        self._instr.append(access.instructions_since_last)
        self._invalidate()

    def extend(self, accesses: Iterable[TraceAccess]) -> None:
        self._materialise()
        pc_append = self._pc.append
        address_append = self._address.append
        flags_append = self._flags.append
        instr_append = self._instr.append
        for access in accesses:
            pc_append(access.pc)
            address_append(access.address)
            flags_append((FLAG_WRITE if access.is_write else 0)
                         | (FLAG_PREFETCH if access.is_prefetch else 0))
            instr_append(access.instructions_since_last)
        self._invalidate()

    # ------------------------------------------------------------------
    # derived traces
    # ------------------------------------------------------------------
    def slice(self, start: int, stop: Optional[int] = None) -> "MemoryTrace":
        """Return a zero-copy window of accesses sharing this trace's buffers.

        The slice references the parent columns through memoryviews; a
        mutation (``append``/``extend``) on either side copies first, so
        neither ever observes the other's changes.
        """
        self._buffers_shared = True
        return MemoryTrace(
            workload=self.workload,
            binary=self.binary,
            description=self.description,
            seed=self.seed,
            columns=tuple(memoryview(column)[start:stop]
                          for column in self.columns()),
        )

    def with_prefetches(self, prefetches: Sequence[TraceAccess]) -> "MemoryTrace":
        """Return a new trace with prefetch accesses appended in order.

        Prefetches are tagged with the position (``instructions_since_last``
        is reused to carry ordering) by the caller; here we simply interleave
        them before the access with the same index when provided as
        ``(index, access)`` pairs via :func:`insert_prefetches` instead.
        """
        merged = MemoryTrace(
            workload=self.workload,
            binary=self.binary,
            description=self.description,
            seed=self.seed,
            columns=tuple(self._copied_column(index) for index in range(4)),
        )
        merged.extend(prefetches)
        return merged


def insert_prefetches(trace: MemoryTrace,
                      prefetch_plan: Sequence[tuple],
                      prefetch_pc: int) -> MemoryTrace:
    """Insert software prefetch accesses into a trace.

    ``prefetch_plan`` is a sequence of ``(position, address)`` tuples meaning
    "before the access at index ``position``, issue a prefetch of
    ``address``".  The resulting trace models a recompiled binary with
    ``__builtin_prefetch`` calls added (software-prefetch use case, section
    6.3 of the paper).
    """
    plan_by_position: Dict[int, List[int]] = {}
    for position, address in prefetch_plan:
        plan_by_position.setdefault(position, []).append(address)

    new_trace = MemoryTrace(
        workload=trace.workload,
        binary=trace.binary,
        description=trace.description + " (+software prefetch)",
        seed=trace.seed,
    )
    for index, access in enumerate(trace):
        for address in plan_by_position.get(index, ()):  # prefetches first
            new_trace.append(
                TraceAccess(
                    pc=prefetch_pc,
                    address=address,
                    is_write=False,
                    instructions_since_last=0,
                    is_prefetch=True,
                )
            )
        new_trace.append(access)
    return new_trace
