"""CacheMind reproduction: natural-language, trace-grounded reasoning for
cache replacement (conf_asplos_MhapsekarGAA26).

The three-line session API:

    >>> from repro import CacheMind
    >>> session = CacheMind(workloads=["astar"], policies=["lru", "belady"])
    >>> print(session.ask("What is the miss rate of lru on astar?"))

Layer stack (each importable as ``repro.<layer>``):

* :mod:`repro.workloads` -- synthetic SPEC-like trace generators,
* :mod:`repro.policies`  -- replacement policies (registry-driven),
* :mod:`repro.sim`       -- the trace-driven LLC / hierarchy simulator,
* :mod:`repro.tracedb`   -- the eviction-annotated external store,
* :mod:`repro.analytics` -- the declarative query layer over columnar
  tables (:class:`Query` objects executed through swappable
  stdlib/sqlite :class:`BaseTabularStore` backends),
* :mod:`repro.retrieval` -- Sieve, Ranger and the embedding baseline
  (registry-driven),
* :mod:`repro.llm`       -- simulated LLM backends (registry-driven),
* :mod:`repro.core`      -- query parsing, answer generation, the
  request/plan/execute API, the declarative experiment API
  (:class:`ExperimentSpec` sweep grids compiled to merged job plans) and
  the :class:`CacheMind` facade tying all of the above together,
* :mod:`repro.serve`     -- the serving subsystem: the thread-safe
  :class:`CacheMindService`, the concurrent JSON-lines
  :class:`CacheMindServer` and the matching :class:`RemoteClient`,
* :mod:`repro.faults`    -- deterministic fault injection (seeded
  :class:`FaultPlan` rules fired at named :func:`fault_point` hooks) for
  chaos-testing the store, parallel builds and the serving stack.

``python -m repro`` exposes the ``simulate``, ``ask``, ``bench``,
``experiment``, ``store`` and ``serve`` subcommands over the same facade.
"""

from repro.analytics import (
    Aggregate,
    BaseTabularStore,
    Filter,
    Join,
    OrderBy,
    Query,
    SqliteBackend,
    StdlibBackend,
    parse_query,
    run_query,
)
from repro.core.answer import Answer, AskResponse
from repro.core.experiment import (
    ExperimentResult,
    ExperimentRunner,
    ExperimentSpec,
    run_experiment,
)
from repro.core.plan import AskRequest, QueryPlan, QueryPlanner
from repro.core.pipeline import SIMULATION_CACHE, CacheMind, SimulationCache
from repro.serve.client import (
    DeadlineExceeded,
    RemoteClient,
    RemoteError,
    ServerOverloadedError,
    ServerShuttingDownError,
)
from repro.serve.server import CacheMindServer
from repro.serve.service import CacheMindService
from repro.errors import (
    DeadlineExceededError,
    StoreVersionError,
    UnknownNameError,
)
from repro.faults import FaultPlan, FaultRule, InjectedFault, fault_point
from repro.core.query import QueryIntent, QueryParser
from repro.llm.backend import (
    LLMBackend,
    available_backend_names,
    get_backend,
    register_backend,
)
from repro.llm.simulated import SimulatedLLM, create_backend
from repro.policies.base import (
    ReplacementPolicy,
    available_policies,
    get_policy,
    register_policy,
)
from repro.retrieval.base import (
    Retriever,
    available_retrievers,
    get_retriever,
    register_retriever,
)
from repro.sim.config import PAPER_CONFIG, SMALL_CONFIG, TINY_CONFIG, HierarchyConfig
from repro.sim.engine import SimulationEngine, SimulationResult, simulate
from repro.tracedb.database import TraceDatabase, TraceEntry, build_database
from repro.tracedb.store import TraceStore
from repro.workloads.generator import (
    WorkloadGenerator,
    available_workloads,
    generate_trace,
    get_workload,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # session facade
    "CacheMind",
    "SimulationCache",
    "SIMULATION_CACHE",
    "Answer",
    "QueryIntent",
    "QueryParser",
    "UnknownNameError",
    # request/plan/execute serving API
    "AskRequest",
    "AskResponse",
    "QueryPlan",
    "QueryPlanner",
    "CacheMindService",
    "CacheMindServer",
    "RemoteClient",
    "RemoteError",
    "ServerOverloadedError",
    "ServerShuttingDownError",
    "DeadlineExceeded",
    "DeadlineExceededError",
    # fault injection / chaos testing
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "fault_point",
    # declarative analytics engine
    "Query",
    "Filter",
    "Aggregate",
    "OrderBy",
    "Join",
    "BaseTabularStore",
    "StdlibBackend",
    "SqliteBackend",
    "parse_query",
    "run_query",
    # declarative experiment API
    "ExperimentSpec",
    "ExperimentResult",
    "ExperimentRunner",
    "run_experiment",
    # simulation
    "HierarchyConfig",
    "PAPER_CONFIG",
    "SMALL_CONFIG",
    "TINY_CONFIG",
    "SimulationEngine",
    "SimulationResult",
    "simulate",
    # store
    "TraceDatabase",
    "TraceEntry",
    "build_database",
    # registries
    "ReplacementPolicy",
    "available_policies",
    "get_policy",
    "register_policy",
    "Retriever",
    "available_retrievers",
    "get_retriever",
    "register_retriever",
    "LLMBackend",
    "SimulatedLLM",
    "available_backend_names",
    "get_backend",
    "register_backend",
    "create_backend",
    # workloads
    "WorkloadGenerator",
    "available_workloads",
    "get_workload",
    "generate_trace",
]
