"""Retrieval layer: Sieve, Ranger and the embedding-similarity baseline.

CacheMind's dual-retrieval design (paper section 3):

* :class:`~repro.retrieval.sieve.SieveRetriever` -- symbolic + semantic
  filtering: workload/policy selection by sentence-embedding match, symbolic
  PC/address filters, statistical-expert aggregation and a structured,
  template-shaped context bundle.
* :class:`~repro.retrieval.ranger.RangerRetriever` -- LLM-guided retrieval:
  the query is translated into executable Python code against the
  ``loaded_data`` store, run in a sandbox, and the resulting string becomes
  the context.
* :class:`~repro.retrieval.embedding.EmbeddingRetriever` -- a LlamaIndex-like
  baseline that embeds serialized trace chunks and returns the most similar
  ones by cosine similarity; it illustrates why generic RAG fails on traces
  that differ only in a few hex digits.
"""

from repro.retrieval.context import (
    QUALITY_HIGH,
    QUALITY_LOW,
    QUALITY_MEDIUM,
    RetrievedContext,
    grade_quality,
)
from repro.retrieval.base import (
    Retriever,
    available_retrievers,
    get_retriever,
    register_retriever,
)
from repro.retrieval.sieve import SieveRetriever
from repro.retrieval.executor import CodeExecutionResult, SandboxExecutor
from repro.retrieval.codegen import RangerCodeGenerator
from repro.retrieval.ranger import RangerRetriever
from repro.retrieval.embedding import EmbeddingRetriever

__all__ = [
    "QUALITY_HIGH",
    "QUALITY_LOW",
    "QUALITY_MEDIUM",
    "RetrievedContext",
    "grade_quality",
    "Retriever",
    "available_retrievers",
    "get_retriever",
    "register_retriever",
    "SieveRetriever",
    "CodeExecutionResult",
    "SandboxExecutor",
    "RangerCodeGenerator",
    "RangerRetriever",
    "EmbeddingRetriever",
]
