"""Sandboxed execution of Ranger-generated retrieval code.

The generated code is plain Python that reads ``loaded_data`` and assigns a
string to ``result`` (and, for machine consumption, a ``payload`` dict).  It
is executed with a restricted builtin set — no imports, no file or attribute
tricks — which is both a safety measure and a faithful model of the narrow
API the paper's system prompt enforces ("No markdown, explanations, print, or
comments").
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

_ALLOWED_BUILTINS = {
    "abs": abs,
    "all": all,
    "any": any,
    "bool": bool,
    "dict": dict,
    "enumerate": enumerate,
    "float": float,
    "int": int,
    "len": len,
    "list": list,
    "max": max,
    "min": min,
    "range": range,
    "round": round,
    "set": set,
    "sorted": sorted,
    "str": str,
    "sum": sum,
    "tuple": tuple,
    "zip": zip,
    "isinstance": isinstance,
    "ValueError": ValueError,
    "KeyError": KeyError,
    "Exception": Exception,
}

_FORBIDDEN_PATTERNS = (
    re.compile(r"\bimport\b"),
    re.compile(r"\bopen\s*\("),
    re.compile(r"__\w+__"),
    re.compile(r"\bexec\s*\("),
    re.compile(r"\beval\s*\("),
)


@dataclass
class CodeExecutionResult:
    """Outcome of one sandboxed execution."""

    success: bool
    result: str = ""
    payload: Dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None
    code: str = ""

    def describe(self) -> str:
        if self.success:
            return self.result
        return f"execution failed: {self.error}"


class SandboxExecutor:
    """Executes retrieval code against the ``loaded_data`` store."""

    def __init__(self, loaded_data: Dict[str, Dict[str, Any]],
                 extra_globals: Optional[Dict[str, Any]] = None):
        self.loaded_data = loaded_data
        self.extra_globals = dict(extra_globals or {})

    def validate(self, code: str) -> Optional[str]:
        """Return an error message if the code violates the output rules."""
        for pattern in _FORBIDDEN_PATTERNS:
            if pattern.search(code):
                return f"forbidden construct matched {pattern.pattern!r}"
        if "result" not in code:
            return "generated code never assigns `result`"
        return None

    def execute(self, code: str) -> CodeExecutionResult:
        """Run the code and capture ``result`` / ``payload``."""
        violation = self.validate(code)
        if violation is not None:
            return CodeExecutionResult(success=False, error=violation, code=code)
        namespace: Dict[str, Any] = {
            "__builtins__": dict(_ALLOWED_BUILTINS),
            "loaded_data": self.loaded_data,
            "re": re,
            "math": math,
        }
        namespace.update(self.extra_globals)
        try:
            exec(compile(code, "<ranger-generated>", "exec"), namespace)  # noqa: S102
        except Exception as error:  # noqa: BLE001 - report any failure upward
            return CodeExecutionResult(success=False, error=f"{type(error).__name__}: {error}",
                                       code=code)
        result = namespace.get("result")
        if not isinstance(result, str):
            return CodeExecutionResult(
                success=False,
                error="generated code must assign a string to `result`",
                code=code,
            )
        payload = namespace.get("payload")
        payload_dict = payload if isinstance(payload, dict) else {}
        return CodeExecutionResult(success=True, result=result,
                                   payload=payload_dict, code=code)
