"""Embedding-similarity baseline retriever (LlamaIndex-style).

Conventional RAG frameworks chunk the corpus, embed every chunk and return
the chunks most cosine-similar to the query.  The paper shows this fails for
microarchitectural traces: records differ only by a few hex digits, so the
embedding of the *wrong* record is almost as close as the right one, and the
retrieved context rarely contains the exact (PC, address, policy, workload)
tuple the question asks about (10% correct-context rate in Figure 9).

:class:`EmbeddingRetriever` reproduces that behaviour honestly: it serialises
a sample of trace rows plus per-trace summaries into chunks, embeds them with
the hashing embedder and returns the top-k matches.  Facts are extracted only
when the retrieved chunks happen to contain the exact records needed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.query import QueryIntent
from repro.llm.embeddings import HashingEmbedder, cosine_similarity
from repro.retrieval.base import Retriever, register_retriever
from repro.retrieval.context import RetrievedContext
from repro.tracedb.database import TraceDatabase


@dataclass
class _Chunk:
    """One embedded document."""

    text: str
    trace_key: str
    kind: str                      # "summary" | "row"
    program_counter: Optional[str] = None
    memory_address: Optional[str] = None
    outcome: Optional[str] = None


@register_retriever
class EmbeddingRetriever(Retriever):
    """Cosine-similarity retrieval over serialized trace chunks."""

    name = "embedding"
    aliases = ("llamaindex", "baseline")

    def __init__(self, database: TraceDatabase,
                 embedder: Optional[HashingEmbedder] = None,
                 rows_per_trace: int = 150, top_k: int = 4):
        super().__init__(database)
        self.embedder = embedder if embedder is not None else HashingEmbedder()
        self.rows_per_trace = rows_per_trace
        self.top_k = top_k
        self._chunks: List[_Chunk] = []
        self._matrix: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # index construction
    # ------------------------------------------------------------------
    def build_index(self) -> int:
        """Chunk + embed the database; returns the number of chunks."""
        chunks: List[_Chunk] = []
        for key in self.database.keys():
            entry = self.database.entry(key)
            chunks.append(_Chunk(
                text=(f"TRACE_ID: {key}\nDESCRIPTION: {entry.description}\n"
                      f"METADATA: {entry.metadata}"),
                trace_key=key,
                kind="summary",
            ))
            table = entry.data_frame
            stride = max(1, len(table) // self.rows_per_trace)
            for index in range(0, len(table), stride):
                row = table.row(index)
                chunks.append(_Chunk(
                    text=(f"TRACE_ID: {key} "
                          f"program_counter={row['program_counter']}, "
                          f"memory_address={row['memory_address']}, "
                          f"evict={row['evict']}, "
                          f"cache_set_id={row['cache_set_id']}, "
                          f"reuse_distance={row['accessed_address_reuse_distance_numeric']}"),
                    trace_key=key,
                    kind="row",
                    program_counter=row["program_counter"],
                    memory_address=row["memory_address"],
                    outcome=row["evict"],
                ))
        self._chunks = chunks
        self._matrix = self.embedder.embed_batch([chunk.text for chunk in chunks])
        return len(chunks)

    def _ensure_index(self) -> None:
        if self._matrix is None:
            self.build_index()

    # ------------------------------------------------------------------
    def retrieve(self, intent: QueryIntent) -> RetrievedContext:
        start = time.time()
        self._ensure_index()
        assert self._matrix is not None

        query_vector = self.embedder.embed(intent.question)
        scores = self._matrix @ query_vector
        order = np.argsort(-scores)[: self.top_k]

        context = RetrievedContext(retriever_name=self.name)
        facts = context.facts
        blocks: List[str] = []
        sources: List[str] = []
        for rank, index in enumerate(order):
            chunk = self._chunks[int(index)]
            blocks.append(f"{scores[int(index)]:.4f}\n{chunk.text}")
            if chunk.trace_key not in sources:
                sources.append(chunk.trace_key)
            self._extract_facts(intent, chunk, facts)
        context.text = "\n---\n".join(blocks)
        context.sources = sources
        context.finalise_quality(intent)
        context.retrieval_time_seconds = time.time() - start
        return context

    # ------------------------------------------------------------------
    def _extract_facts(self, intent: QueryIntent, chunk: _Chunk,
                       facts: Dict) -> None:
        """Populate facts only when a retrieved chunk really contains them."""
        if chunk.kind == "summary":
            facts.setdefault("metadata", chunk.text)
            facts.setdefault("descriptions", {})[chunk.trace_key] = chunk.text
            return
        wants_pc = intent.pc
        wants_address = intent.address
        workload_ok = (intent.workload is None
                       or chunk.trace_key.startswith(intent.workload + "_"))
        policy_ok = (intent.policy is None
                     or chunk.trace_key.endswith("_" + intent.policy))
        if not (workload_ok and policy_ok):
            return
        facts.setdefault("slice_rows", []).append({
            "program_counter": chunk.program_counter,
            "memory_address": chunk.memory_address,
            "evict": chunk.outcome,
        })
        if wants_pc and chunk.program_counter == wants_pc:
            if wants_address is None or chunk.memory_address == wants_address:
                facts["exact_match"] = True
                facts["outcome"] = chunk.outcome
