"""Retrieved-context bundle and retrieval-quality grading.

A retriever returns a :class:`RetrievedContext`: the rendered context text
that goes into the generator prompt, plus *structured facts* that the answer
generator consumes (the simulated generator cannot literally read prose, so
the facts dictionary is its machine-readable view of the same content).

:func:`grade_quality` decides whether a context is Low / Medium / High for a
given question intent — this powers Figure 5 (accuracy vs. retrieval quality)
and Figure 9 (fraction of queries with correct retrieved context).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.query import (
    ARITHMETIC,
    CODE_GENERATION,
    CONCEPT,
    COUNT,
    GENERAL,
    HIT_MISS,
    MISS_RATE,
    PC_LIST,
    POLICY_ANALYSIS,
    POLICY_COMPARISON,
    SEMANTIC_ANALYSIS,
    SET_ANALYSIS,
    WORKLOAD_ANALYSIS,
    QueryIntent,
)

QUALITY_LOW = "low"
QUALITY_MEDIUM = "medium"
QUALITY_HIGH = "high"

#: numeric midpoints used when a quality score is needed as a float.
QUALITY_SCORES = {QUALITY_LOW: 0.2, QUALITY_MEDIUM: 0.6, QUALITY_HIGH: 1.0}


@dataclass
class RetrievedContext:
    """Everything a retriever hands to the generator."""

    text: str = ""
    facts: Dict[str, Any] = field(default_factory=dict)
    sources: List[str] = field(default_factory=list)
    retriever_name: str = ""
    retrieval_time_seconds: float = 0.0
    quality_label: str = QUALITY_LOW
    quality_score: float = QUALITY_SCORES[QUALITY_LOW]
    generated_code: Optional[str] = None
    notes: List[str] = field(default_factory=list)

    def has(self, *fact_names: str) -> bool:
        """Whether every named fact is present (and not None)."""
        return all(self.facts.get(name) is not None for name in fact_names)

    def fact(self, name: str, default: Any = None) -> Any:
        return self.facts.get(name, default)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def finalise_quality(self, intent: QueryIntent) -> None:
        """Compute and store the quality grade for this intent."""
        self.quality_label = grade_quality(intent, self)
        self.quality_score = QUALITY_SCORES[self.quality_label]

    def evidence_lines(self, limit: int = 6) -> List[str]:
        lines = [line for line in self.text.splitlines() if line.strip()]
        return lines[:limit]


# ----------------------------------------------------------------------
# quality grading
# ----------------------------------------------------------------------
def _required_facts(intent: QueryIntent) -> List[str]:
    """Facts that must be present for the context to be High quality."""
    question_type = intent.question_type
    if question_type == HIT_MISS:
        return ["outcome", "exact_match"]
    if question_type == MISS_RATE:
        return ["miss_rate"]
    if question_type == POLICY_COMPARISON:
        return ["per_policy"]
    if question_type == COUNT:
        return ["count"]
    if question_type == ARITHMETIC:
        return ["aggregate_value"]
    if question_type == CODE_GENERATION:
        return ["schema"]
    if question_type == POLICY_ANALYSIS:
        return ["pc_stats", "policy_descriptions"]
    if question_type == WORKLOAD_ANALYSIS:
        return ["workload_summaries"]
    if question_type == SEMANTIC_ANALYSIS:
        return ["pc_stats", "assembly"]
    if question_type == PC_LIST:
        return ["pc_list"]
    if question_type == SET_ANALYSIS:
        return ["set_stats"]
    if question_type == CONCEPT:
        return []  # retrieval-light
    return []


def _partial_facts(intent: QueryIntent) -> List[str]:
    """Facts that make the context at least Medium quality."""
    question_type = intent.question_type
    if question_type == HIT_MISS:
        return ["slice_rows"]
    if question_type == MISS_RATE:
        return ["pc_stats", "slice_rows"]
    if question_type == POLICY_COMPARISON:
        return ["miss_rate", "pc_stats"]
    if question_type == COUNT:
        return ["slice_rows", "pc_stats"]
    if question_type == ARITHMETIC:
        return ["values_sample", "pc_stats"]
    if question_type == POLICY_ANALYSIS:
        return ["pc_stats", "metadata"]
    if question_type == WORKLOAD_ANALYSIS:
        return ["metadata", "workload_descriptions"]
    if question_type == SEMANTIC_ANALYSIS:
        return ["assembly", "function_name", "pc_stats"]
    if question_type == PC_LIST:
        return ["slice_rows"]
    if question_type == SET_ANALYSIS:
        return ["slice_rows", "metadata"]
    return ["metadata", "descriptions"]


def grade_quality(intent: QueryIntent, context: RetrievedContext) -> str:
    """Grade a retrieved context Low / Medium / High for a question."""
    # A trick question handled correctly shows up as an explicit premise
    # violation; that is the *right* retrieval outcome, so grade it High.
    if context.facts.get("premise_violation"):
        return QUALITY_HIGH
    required = _required_facts(intent)
    if required and context.has(*required):
        return QUALITY_HIGH
    if not required:
        # Retrieval-light questions: any supporting context is High, nothing
        # retrieved is still Medium because the model can rely on knowledge.
        return QUALITY_HIGH if context.facts else QUALITY_MEDIUM
    partial = _partial_facts(intent)
    if any(context.facts.get(name) is not None for name in partial):
        return QUALITY_MEDIUM
    if any(context.facts.get(name) is not None for name in required):
        return QUALITY_MEDIUM
    return QUALITY_LOW
