"""CacheMind-Sieve: symbolic-indexed entries for verifiable extraction.

The Sieve pipeline (paper section 3.2) runs four stages:

1. **Trace-level filtering** -- a sentence embedder matches the workload and
   policy mentioned (possibly fuzzily) in the query against the database
   keys/descriptions to pick the trace slice(s) to search.
2. **PC and address filtering** -- symbolic equality filters on
   ``program_counter`` / ``memory_address`` isolate a compact slice.
3. **Cache statistical expert** -- per-PC statistics (miss rate, reuse
   distances, bad-eviction fraction) are computed for the PCs in the slice.
4. **Context assembly** -- workload/policy descriptions, PC-level context
   (function, assembly, statistics) and trace metadata are combined into a
   structured bundle for the generator.

Sieve is precise for the query patterns it anticipates (hit/miss, per-PC miss
rate, cross-policy comparison) but, as the paper notes, it cannot decompose
open-ended requests: it never computes counts or arbitrary aggregates itself,
it only exposes a bounded slice preview and raw value samples.

Every table lookup the stages perform — equality slices, presence counts,
hit tallies, value sampling — is expressed as a declarative
:class:`repro.analytics.Query` and executed through a swappable tabular-store
backend (``analytics=`` constructor knob, ``"stdlib"`` by default), so the
grounding path runs through one tested engine instead of ad-hoc loops.
Answers are byte-identical to the pre-engine implementation
(``tests/test_analytics.py`` holds the equivalence per intent type).
"""

from __future__ import annotations

import time
from itertools import islice
from typing import Dict, List, Optional, Tuple

from repro.analytics import Aggregate, Filter, Query, run_query
from repro.core.query import (
    POLICY_COMPARISON,
    QueryIntent,
    WORKLOAD_ANALYSIS,
)
from repro.llm.embeddings import HashingEmbedder
from repro.retrieval.base import Retriever, register_retriever
from repro.retrieval.context import RetrievedContext
from repro.tracedb.database import TraceDatabase, TraceEntry, trace_key
from repro.tracedb.metadata import parse_metadata_string
from repro.tracedb.schema import ACCESS_COLUMNS
from repro.tracedb.stats import CacheStatisticalExpert


@register_retriever
class SieveRetriever(Retriever):
    """Filter-based symbolic + semantic retriever."""

    name = "sieve"

    def __init__(self, database: TraceDatabase,
                 embedder: Optional[HashingEmbedder] = None,
                 slice_limit: int = 40,
                 values_sample_limit: int = 32,
                 cross_policy: bool = True,
                 analytics: str = "stdlib"):
        super().__init__(database)
        self.embedder = embedder if embedder is not None else HashingEmbedder()
        self.slice_limit = slice_limit
        self.values_sample_limit = values_sample_limit
        self.cross_policy = cross_policy
        #: analytics backend name every stage lookup executes through
        #: (see :mod:`repro.analytics`).
        self.analytics = analytics

    # ------------------------------------------------------------------
    # analytics engine plumbing: every table lookup in the stages below is
    # a declarative Query executed through the configured backend.
    # ------------------------------------------------------------------
    def _trace_slice(self, table, **conditions):
        """Rows of ``table`` matching exact-equality ``conditions``."""
        query = Query(table="trace", filters=tuple(
            Filter(name, "eq", value) for name, value in conditions.items()))
        return run_query(query, {"trace": table}, backend=self.analytics)

    def _trace_count(self, table, **conditions) -> int:
        """Number of rows of ``table`` matching ``conditions``."""
        query = Query(
            table="trace",
            filters=tuple(Filter(name, "eq", value)
                          for name, value in conditions.items()),
            aggregates=(Aggregate("count", alias="n"),))
        return run_query(query, {"trace": table},
                         backend=self.analytics)["n"].values[0]

    def _field_values(self, table, field: str) -> List:
        """Non-null, non-sentinel values of ``field`` in row order."""
        query = Query(
            table="trace",
            select=(field,),
            filters=(Filter(field, "not_null"), Filter(field, "ne", -1)))
        return run_query(query, {"trace": table},
                         backend=self.analytics)[field].values

    # ------------------------------------------------------------------
    # stage 1: workload / policy selection
    # ------------------------------------------------------------------
    def select_workloads(self, intent: QueryIntent) -> List[str]:
        available = self.database.workloads
        named = [w for w in intent.workloads if w in available]
        if named:
            return named
        if intent.question_type == WORKLOAD_ANALYSIS:
            return list(available)
        if not available:
            return []
        # Semantic fallback: rank workload descriptions against the question.
        descriptions = []
        for workload in available:
            entries = self.database.entries_for_workload(workload)
            text = entries[0].description if entries else workload
            descriptions.append(f"{workload}: {text}")
        best = self.embedder.best_match(intent.question, descriptions)
        return [available[best]]

    def select_policies(self, intent: QueryIntent) -> List[str]:
        available = self.database.policies
        named = [p for p in intent.policies if p in available]
        if named:
            if intent.question_type == POLICY_COMPARISON and len(named) == 1:
                return list(available)
            return named
        if intent.question_type == POLICY_COMPARISON or self.cross_policy:
            return list(available)
        if not available:
            return []
        best = self.embedder.best_match(intent.question, list(available))
        return [available[best]]

    def _select_entries(self, intent: QueryIntent
                        ) -> Tuple[List[TraceEntry], Optional[TraceEntry]]:
        """Entries to search plus the primary entry the answer focuses on."""
        workloads = self.select_workloads(intent)
        policies = self.select_policies(intent)
        entries: List[TraceEntry] = []
        for workload in workloads:
            for policy in policies:
                key = trace_key(workload, policy)
                if key in self.database:
                    entries.append(self.database.entry(key))
        primary = None
        if entries:
            named_policy = next((p for p in intent.policies if p in policies), None)
            named_workload = next((w for w in intent.workloads if w in workloads), None)
            for entry in entries:
                if ((named_policy is None or entry.policy == named_policy)
                        and (named_workload is None or entry.workload == named_workload)):
                    primary = entry
                    break
            if primary is None:
                primary = entries[0]
        return entries, primary

    # ------------------------------------------------------------------
    # main retrieval
    # ------------------------------------------------------------------
    def retrieve(self, intent: QueryIntent) -> RetrievedContext:
        start = time.time()
        context = RetrievedContext(retriever_name=self.name)
        facts = context.facts
        facts["schema"] = list(ACCESS_COLUMNS)

        entries, primary = self._select_entries(intent)
        if not entries or primary is None:
            context.text = "No matching workload/policy trace found in the database."
            context.finalise_quality(intent)
            context.retrieval_time_seconds = time.time() - start
            return context

        context.sources = [entry.key for entry in entries]
        facts["workload"] = primary.workload
        facts["policy"] = primary.policy
        facts["metadata"] = primary.metadata
        facts["descriptions"] = {entry.key: entry.description for entry in entries}
        facts["policy_descriptions"] = {
            entry.policy: entry.description.split("Workload:")[0].strip()
            for entry in entries
        }
        facts["workload_descriptions"] = {
            entry.workload: entry.description.split("Workload:")[-1].strip()
            for entry in entries
        }

        text_blocks: List[str] = []
        self._stage_pc_address(intent, entries, primary, facts, text_blocks)
        self._stage_statistics(intent, entries, primary, facts, text_blocks)
        self._stage_workload_summaries(intent, entries, facts, text_blocks)
        self._stage_metadata(primary, facts, text_blocks)

        context.text = "\n".join(text_blocks)
        context.finalise_quality(intent)
        context.retrieval_time_seconds = time.time() - start
        return context

    # ------------------------------------------------------------------
    # stage 2: symbolic PC / address filtering
    # ------------------------------------------------------------------
    def _stage_pc_address(self, intent: QueryIntent, entries: List[TraceEntry],
                          primary: TraceEntry, facts: Dict, text_blocks: List[str]) -> None:
        pc = intent.pc
        address = intent.address
        if pc is None and address is None:
            return

        table = primary.data_frame
        conditions = {}
        if pc is not None:
            conditions["program_counter"] = pc
        if address is not None:
            conditions["memory_address"] = address
        slice_table = self._trace_slice(table, **conditions)

        pc_in_primary = (pc is None
                         or self._trace_count(table, program_counter=pc) > 0)
        if pc is not None and not pc_in_primary:
            # Check the whole workload: if the PC never appears, the query's
            # premise is wrong (trick question) and Sieve can say so.
            appears_somewhere = any(
                self._trace_count(entry.data_frame, program_counter=pc) > 0
                for entry in self.database.entries_for_workload(primary.workload))
            facts["pc_found"] = False
            if not appears_somewhere:
                facts["premise_violation"] = (
                    f"PC {pc} does not appear in the {primary.workload} workload")
                other_workloads = [
                    workload for workload in self.database.workloads
                    if workload != primary.workload and any(
                        self._trace_count(entry.data_frame, program_counter=pc) > 0
                        for entry in self.database.entries_for_workload(workload))
                ]
                if other_workloads:
                    facts["premise_violation"] += (
                        f"; it appears in {', '.join(other_workloads)}")
            text_blocks.append(
                f"Exact PC {pc} not found in {primary.key}.")
        else:
            facts["pc_found"] = True

        if len(slice_table) == 0:
            text_blocks.append(
                "Exact PC, Memory Address match not found in "
                f"{primary.key}.")
            facts["exact_match"] = False
            if address is not None and pc is not None and facts.get("pc_found"):
                # The PC exists but never touches this address.
                touched = self._trace_slice(primary.data_frame,
                                            program_counter=pc)
                addresses = set(touched["memory_address"].values)
                if address not in addresses:
                    facts["premise_violation"] = (
                        f"PC {pc} never accesses address {address} in "
                        f"{primary.workload} under {primary.policy}")
            return

        facts["exact_match"] = True
        rows = list(islice(slice_table.iter_rows(), self.slice_limit))
        facts["slice_rows"] = rows
        first = rows[0]
        if pc is not None and address is not None:
            total = len(slice_table)
            hits = self._trace_count(slice_table, evict="Cache Hit")
            facts["outcome"] = ("Cache Hit" if hits * 2 > total
                                else "Cache Miss")
            text_blocks.append(
                f"{primary.policy.upper()} + {primary.workload} @ PC {pc}, "
                f"addr {address}:\n  Cache result: {facts['outcome']} "
                f"({hits}/{total} of matching accesses hit)")
            if self.cross_policy:
                cross = {}
                for entry in entries:
                    if entry.key == primary.key:
                        continue
                    other = self._trace_slice(
                        entry.data_frame,
                        program_counter=pc, memory_address=address)
                    if len(other) == 0:
                        continue
                    other_hits = self._trace_count(other, evict="Cache Hit")
                    label = ("Cache Hit" if other_hits * 2 > len(other)
                             else "Cache Miss")
                    cross[entry.policy] = label
                    text_blocks.append(
                        f"  {entry.policy} + {entry.workload}: {label}")
                if cross:
                    facts["cross_policy_outcome"] = cross
        if first.get("evicted_address"):
            text_blocks.append(
                f"  Evicted address: {first['evicted_address']} (needed again "
                f"in {first['evicted_address_reuse_distance_numeric']} accesses); "
                f"inserted address needed again in "
                f"{first['accessed_address_reuse_distance_numeric']} accesses.")
        if first.get("function_name"):
            facts["function_name"] = first["function_name"]
            facts["function_code"] = first.get("function_code", "")
            facts["assembly"] = first.get("assembly_code", "")
            text_blocks.append(f"  Source function: {first['function_name']}")
            if first.get("assembly_code"):
                text_blocks.append("  Assembly:\n" + first["assembly_code"])

        if intent.target_field:
            values = self._field_values(slice_table, intent.target_field)
            facts["values_sample"] = values[: self.values_sample_limit]
            facts["values_sample_truncated"] = len(values) > self.values_sample_limit
            text_blocks.append(
                f"  {intent.target_field} values (first "
                f"{len(facts['values_sample'])} of {len(values)}): "
                f"{facts['values_sample']}")

    # ------------------------------------------------------------------
    # stage 3: cache statistical expert
    # ------------------------------------------------------------------
    def _stage_statistics(self, intent: QueryIntent, entries: List[TraceEntry],
                          primary: TraceEntry, facts: Dict, text_blocks: List[str]) -> None:
        pc = intent.pc
        if pc is None:
            self._stage_trace_statistics(intent, entries, primary, facts,
                                         text_blocks)
            return
        per_policy_stats = {}
        per_policy_miss_rate = {}
        for entry in entries:
            if entry.workload != primary.workload:
                continue
            expert = CacheStatisticalExpert(entry.data_frame,
                                            backend=self.analytics)
            if self._trace_count(entry.data_frame, program_counter=pc) == 0:
                continue
            stats = expert.pc_statistics(pc)
            per_policy_stats[entry.policy] = stats
            per_policy_miss_rate[entry.policy] = stats.miss_rate
            text_blocks.append(
                f"Statistics for PC {pc} in {entry.workload} under "
                f"{entry.policy}: {stats.accesses} accesses, "
                f"{stats.hits} hits, {stats.misses} misses, "
                f"miss rate {stats.miss_rate * 100:.2f}%"
                + (f", function {stats.function_name}" if stats.function_name else ""))
        if not per_policy_stats:
            return
        facts["pc_stats"] = per_policy_stats
        if primary.policy in per_policy_stats:
            facts["miss_rate"] = per_policy_stats[primary.policy].miss_rate
            facts["hit_rate"] = 1.0 - per_policy_stats[primary.policy].miss_rate
        elif per_policy_stats:
            any_policy = next(iter(per_policy_stats))
            facts["miss_rate"] = per_policy_stats[any_policy].miss_rate
        if len(per_policy_miss_rate) >= 2:
            facts["per_policy"] = per_policy_miss_rate

    def _stage_trace_statistics(self, intent: QueryIntent,
                                entries: List[TraceEntry], primary: TraceEntry,
                                facts: Dict, text_blocks: List[str]) -> None:
        """Whole-trace statistics when nothing narrows the query: the
        statistical expert's trace-level miss rates, across policies."""
        if intent.address is not None:
            # An address-scoped question must not get the whole-trace rate
            # confidently attributed to that address; leave the evidence gap.
            return
        if intent.policies and all(policy not in self.database.policies
                                   for policy in intent.policies):
            # The question names only policies absent from the database;
            # publishing another policy's rate would mis-ground the answer.
            return
        # Workload-analysis questions already get these lines from
        # _stage_workload_summaries; keep the facts but skip the duplicates.
        emit_text = intent.question_type != WORKLOAD_ANALYSIS
        per_policy = {}
        for entry in entries:
            if entry.workload != primary.workload:
                continue
            per_policy[entry.policy] = entry.statistics.miss_rate
            if emit_text:
                text_blocks.append(
                    f"{entry.workload} under {entry.policy}: "
                    f"{entry.statistics.total_accesses} accesses, "
                    f"miss rate {entry.statistics.miss_rate * 100:.2f}%")
        if not per_policy:
            return
        # primary is one of `entries` with a matching workload, so its policy
        # is always present.
        facts["miss_rate"] = per_policy[primary.policy]
        facts["hit_rate"] = 1.0 - per_policy[primary.policy]
        if len(per_policy) >= 2:
            facts["per_policy"] = per_policy

    # ------------------------------------------------------------------
    # workload-level summaries (used by workload analysis questions)
    # ------------------------------------------------------------------
    def _stage_workload_summaries(self, intent: QueryIntent,
                                  entries: List[TraceEntry], facts: Dict,
                                  text_blocks: List[str]) -> None:
        if intent.question_type != WORKLOAD_ANALYSIS:
            return
        summaries = {}
        for entry in entries:
            parsed = parse_metadata_string(entry.metadata)
            summaries.setdefault(entry.workload, {})[entry.policy] = (
                parsed.miss_rate_percent)
            text_blocks.append(
                f"{entry.workload} under {entry.policy}: "
                f"{parsed.miss_rate_percent:.2f}% miss rate, "
                f"{parsed.total_accesses} accesses")
        facts["workload_summaries"] = summaries

    # ------------------------------------------------------------------
    # metadata fallback
    # ------------------------------------------------------------------
    def _stage_metadata(self, primary: TraceEntry, facts: Dict,
                        text_blocks: List[str]) -> None:
        text_blocks.append("Trace metadata: " + primary.metadata)
        text_blocks.append("Policy/Workload description: " + primary.description)
