"""Ranger code generation: translate a parsed query into retrieval code.

The paper's Ranger hands the query, the database schema and strict output
rules (Figure 3) to a code-writing LLM (GPT-4o) which emits Python that
slices ``loaded_data`` and assigns a string to ``result``.  This module plays
that role deterministically: each question intent maps to a code template
instantiated with the query's workload/policy/PC/address.  The generated code
additionally assigns a ``payload`` dict so downstream components get the same
facts in structured form.

The quality of real LLM code generation is imperfect, so the generator
supports producing *flawed* code — realistic mistakes such as using a wrong
column name or a malformed trace key — which the retriever requests when the
backing LLM fails its code-generation reliability check.  Flawed code either
raises inside the sandbox or returns a "not found" answer, degrading the
retrieved context exactly the way a bad generation would.
"""

from __future__ import annotations

import textwrap
from typing import Dict, List, Optional

from repro.core.query import (
    ARITHMETIC,
    CODE_GENERATION,
    COUNT,
    HIT_MISS,
    MISS_RATE,
    PC_LIST,
    POLICY_ANALYSIS,
    POLICY_COMPARISON,
    QueryIntent,
    SEMANTIC_ANALYSIS,
    SET_ANALYSIS,
    WORKLOAD_ANALYSIS,
    resolve_comparison,
)

_KEY_HELPER = """
def _find_key(workload, policy):
    if workload and policy:
        candidate = f"{workload}_evictions_{policy}"
        if candidate in loaded_data:
            return candidate
    for key in sorted(loaded_data):
        if workload and not key.startswith(workload + "_"):
            continue
        if policy and not key.endswith("_" + policy):
            continue
        return key
    return None
"""


def _header(workload: Optional[str], policy: Optional[str]) -> str:
    return (
        _KEY_HELPER
        + f"workload = {workload!r}\n"
        + f"policy = {policy!r}\n"
        + "key = _find_key(workload, policy)\n"
        + "payload = {}\n"
        + "if key is None:\n"
        + "    result = f\"No trace found for workload {workload} and policy {policy}.\"\n"
        + "else:\n"
        + "    entry = loaded_data[key]\n"
        + "    df = entry[\"data_frame\"]\n"
        + "    metadata = entry[\"metadata\"]\n"
        + "    payload[\"key\"] = key\n"
        + "    payload[\"metadata\"] = metadata\n"
    )


def _indent(body: str) -> str:
    return textwrap.indent(textwrap.dedent(body).strip("\n"), "    ")


class RangerCodeGenerator:
    """Intent-to-code translation for the Ranger retriever."""

    def generate(self, intent: QueryIntent, flawed: bool = False) -> str:
        """Produce the retrieval code for one intent."""
        if flawed:
            return self._flawed(intent)
        handler = {
            HIT_MISS: self._hit_miss,
            MISS_RATE: self._miss_rate,
            COUNT: self._count,
            ARITHMETIC: self._arithmetic,
            POLICY_COMPARISON: self._policy_comparison,
            PC_LIST: self._pc_list,
            SET_ANALYSIS: self._set_analysis,
            WORKLOAD_ANALYSIS: self._workload_analysis,
            POLICY_ANALYSIS: self._pc_context,
            SEMANTIC_ANALYSIS: self._pc_context,
            CODE_GENERATION: self._pc_context,
        }.get(intent.question_type, self._fallback)
        return handler(intent)

    # ------------------------------------------------------------------
    # templates
    # ------------------------------------------------------------------
    def _hit_miss(self, intent: QueryIntent) -> str:
        pc = intent.pc
        address = intent.address
        body = f"""
        rows = df.where(program_counter={pc!r}, memory_address={address!r}) if {address!r} else df.where(program_counter={pc!r})
        if len(rows) == 0:
            pc_rows = df.where(program_counter={pc!r})
            if len(pc_rows) == 0:
                payload["premise_violation"] = f"PC {pc} does not appear in {{key}}"
                result = f"Not found: PC {pc} does not appear in {{key}}."
            else:
                payload["premise_violation"] = f"PC {pc} never accesses address {address} in {{key}}"
                result = f"Not found: PC {pc} never accesses address {address} in {{key}}."
        else:
            outcomes = rows["evict"].values
            hits = sum(1 for value in outcomes if value == "Cache Hit")
            label = "Cache Hit" if hits * 2 > len(outcomes) else "Cache Miss"
            first = rows.row(0)
            payload["outcome"] = label
            payload["exact_match"] = True
            payload["function_name"] = first.get("function_name", "")
            payload["assembly"] = first.get("assembly_code", "")
            result = (f"Result: {{label}} for PC {pc} and addr {address} "
                      f"(trace: {{key}}). Function: {{first.get('function_name', '')}}")
        """
        return _header(intent.workload, intent.policy) + _indent(body)

    def _miss_rate(self, intent: QueryIntent) -> str:
        pc = intent.pc
        if pc is None:
            body = """
            misses = sum(df["is_miss"].values)
            total = len(df)
            rate = misses / total if total else 0.0
            payload["miss_rate"] = rate
            result = f"The miss rate for {key} is {rate * 100:.2f}% ({misses}/{total})."
            """
        else:
            body = f"""
            rows = df.where(program_counter={pc!r})
            if len(rows) == 0:
                payload["premise_violation"] = f"PC {pc} does not appear in {{key}}"
                result = f"Not found: PC {pc} does not appear in {{key}}."
            else:
                misses = sum(rows["is_miss"].values)
                total = len(rows)
                rate = misses / total if total else 0.0
                payload["miss_rate"] = rate
                payload["accesses"] = total
                payload["exact_match"] = True
                result = f"The miss rate for PC {pc} in {{key}} is {{rate * 100:.2f}}% ({{misses}}/{{total}} accesses)."
            """
        return _header(intent.workload, intent.policy) + _indent(body)

    def _count(self, intent: QueryIntent) -> str:
        pc = intent.pc
        address = intent.address
        filters = []
        if pc is not None:
            filters.append(f"program_counter={pc!r}")
        if address is not None:
            filters.append(f"memory_address={address!r}")
        filter_expr = ", ".join(filters)
        where_expr = f"df.where({filter_expr})" if filter_expr else "df"
        body = f"""
        rows = {where_expr}
        count = len(rows)
        payload["count"] = count
        if count == 0:
            payload["premise_violation"] = "no matching accesses found"
            result = f"No matching accesses found in {{key}}."
        else:
            payload["exact_match"] = True
            result = f"There are {{count}} matching accesses in {{key}}."
        """
        return _header(intent.workload, intent.policy) + _indent(body)

    def _arithmetic(self, intent: QueryIntent) -> str:
        pc = intent.pc
        column = intent.target_field or "accessed_address_reuse_distance_numeric"
        aggregation = intent.aggregation or "mean"
        body = f"""
        rows = df.where(program_counter={pc!r}) if {pc!r} else df
        values = [value for value in rows[{column!r}].values
                  if value is not None and value != -1]
        if not values:
            result = f"No usable {column} values found in {{key}}."
        else:
            mean_value = sum(values) / len(values)
            if {aggregation!r} == "std":
                variance = sum((value - mean_value) ** 2 for value in values) / len(values)
                aggregate = variance ** 0.5
            elif {aggregation!r} == "sum":
                aggregate = sum(values)
            else:
                aggregate = mean_value
            payload["aggregate_value"] = aggregate
            payload["aggregation"] = {aggregation!r}
            payload["sample_size"] = len(values)
            payload["exact_match"] = True
            result = (f"The {aggregation} {column} for PC {pc} in {{key}} is "
                      f"{{aggregate:.2f}} over {{len(values)}} values.")
        """
        return _header(intent.workload, intent.policy) + _indent(body)

    def _policy_comparison(self, intent: QueryIntent) -> str:
        pc = intent.pc
        workload = intent.workload
        comparison = intent.comparison or "best"
        # Shared with the Sieve answer path: maps the superlative/metric onto
        # the miss-rate ordering the generated code sorts by.
        pick_lowest = resolve_comparison(intent.comparison,
                                         intent.wants_hit_rate)
        scope = f" for PC {pc}" if pc is not None else ""
        if comparison in ("best", "worst"):
            winner_phrase = f"The {comparison} policy"
        else:
            metric = "hit rate" if intent.wants_hit_rate else "miss rate"
            winner_phrase = f"The policy with the {comparison} {metric}"
        body = f"""
        rates = {{}}
        for other_key in sorted(loaded_data):
            if {workload!r} and not other_key.startswith({workload!r} + "_"):
                continue
            other_df = loaded_data[other_key]["data_frame"]
            rows = other_df.where(program_counter={pc!r}) if {pc!r} else other_df
            if len(rows) == 0:
                continue
            policy_name = other_key.split("_evictions_")[-1]
            rates[policy_name] = sum(rows["is_miss"].values) / len(rows)
        if not rates:
            result = "No matching traces found for the comparison."
        else:
            ordered = sorted(rates.items(), key=lambda item: item[1])
            best = ordered[0] if {pick_lowest!r} else ordered[-1]
            payload["per_policy"] = rates
            payload["best_policy"] = best[0]
            payload["exact_match"] = True
            listing = ", ".join(f"{{name}}: {{rate * 100:.2f}}%" for name, rate in ordered)
            result = (f"Miss rates per policy{scope}: {{listing}}. "
                      f"{winner_phrase} is {{best[0]}}.")
        """
        return _header(intent.workload, intent.policy) + _indent(body)

    def _pc_list(self, intent: QueryIntent) -> str:
        body = """
        pcs = df["program_counter"].unique()
        payload["pc_list"] = pcs
        payload["exact_match"] = True
        preview = ", ".join(pcs[:40])
        result = f"There are {len(pcs)} unique PCs in {key}: {preview}"
        """
        return _header(intent.workload, intent.policy) + _indent(body)

    def _set_analysis(self, intent: QueryIntent) -> str:
        body = """
        per_set = {}
        for row in df.rows():
            set_id = row["cache_set_id"]
            stats = per_set.setdefault(set_id, [0, 0])
            stats[0] += 1
            if row["evict"] == "Cache Hit":
                stats[1] += 1
        summary = {set_id: {"accesses": values[0], "hits": values[1],
                            "hit_rate": (values[1] / values[0]) if values[0] else 0.0}
                   for set_id, values in per_set.items()}
        ordered = sorted(summary.items(), key=lambda item: item[1]["hit_rate"], reverse=True)
        hot = [set_id for set_id, _stats in ordered[:5]]
        cold = [set_id for set_id, _stats in ordered[-5:]]
        payload["set_stats"] = summary
        payload["hot_sets"] = hot
        payload["cold_sets"] = cold
        payload["exact_match"] = True
        result = (f"{key}: {len(summary)} sets accessed. Hot sets (by hit rate): {hot}. "
                  f"Cold sets: {cold}.")
        """
        return _header(intent.workload, intent.policy) + _indent(body)

    def _workload_analysis(self, intent: QueryIntent) -> str:
        policy = intent.policy
        body = f"""
        summaries = {{}}
        for other_key in sorted(loaded_data):
            if {policy!r} and not other_key.endswith("_" + {policy!r}):
                continue
            other_df = loaded_data[other_key]["data_frame"]
            workload_name = other_key.split("_evictions_")[0]
            policy_name = other_key.split("_evictions_")[-1]
            total = len(other_df)
            misses = sum(other_df["is_miss"].values)
            summaries.setdefault(workload_name, {{}})[policy_name] = (
                (misses / total * 100.0) if total else 0.0)
        if not summaries:
            result = "No traces matched the requested policy."
        else:
            payload["workload_summaries"] = summaries
            payload["exact_match"] = True
            listing = "; ".join(
                f"{{workload_name}}: " + ", ".join(
                    f"{{policy_name}} {{rate:.2f}}%"
                    for policy_name, rate in sorted(policy_rates.items()))
                for workload_name, policy_rates in sorted(summaries.items()))
            result = f"Per-workload miss rates: {{listing}}"
        """
        return _header(intent.workload, intent.policy) + _indent(body)

    def _pc_context(self, intent: QueryIntent) -> str:
        pc = intent.pc
        body = f"""
        rows = df.where(program_counter={pc!r}) if {pc!r} else df.head(5)
        if len(rows) == 0:
            result = f"PC {pc} not found in {{key}}; metadata: {{metadata}}"
        else:
            first = rows.row(0)
            misses = sum(rows["is_miss"].values)
            total = len(rows)
            payload["miss_rate"] = misses / total if total else 0.0
            payload["function_name"] = first.get("function_name", "")
            payload["assembly"] = first.get("assembly_code", "")
            payload["exact_match"] = True
            result = (f"PC {pc} in {{key}}: {{total}} accesses, miss rate "
                      f"{{(misses / total * 100.0) if total else 0.0:.2f}}%, "
                      f"function {{first.get('function_name', '')}}. "
                      f"Assembly: {{first.get('assembly_code', '')[:200]}} "
                      f"Metadata: {{metadata}}")
        """
        return _header(intent.workload, intent.policy) + _indent(body)

    def _fallback(self, intent: QueryIntent) -> str:
        body = """
        result = (f"Trace {key}: {len(df)} recorded LLC accesses. "
                  f"Metadata: {metadata} "
                  f"Description: {entry['description']}")
        payload["descriptions"] = {key: entry["description"]}
        """
        return _header(intent.workload, intent.policy) + _indent(body)

    # ------------------------------------------------------------------
    # realistic failure modes
    # ------------------------------------------------------------------
    def _flawed(self, intent: QueryIntent) -> str:
        """Code with a plausible LLM mistake (wrong column / key format)."""
        pc = intent.pc
        workload = intent.workload or "astar"
        policy = intent.policy or "lru"
        # The classic mistakes: a malformed trace key and a wrong column name.
        body = f"""
key = f"{workload}_{policy}_evictions"
payload = {{}}
entry = loaded_data[key]
df = entry["data_frame"]
rows = df.where(hit_miss={pc!r})
result = f"Found {{len(rows)}} rows."
"""
        return textwrap.dedent(body)
