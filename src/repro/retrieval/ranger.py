"""CacheMind-Ranger: retrieval via generated and executed code.

Ranger (paper section 3.3) hands the retrieval objective, the database schema
and strict output rules to a code-writing LLM, executes the generated Python
against ``loaded_data`` and uses the resulting string as the retrieved
context.  This implementation:

* translates the parsed intent into code with
  :class:`~repro.retrieval.codegen.RangerCodeGenerator`,
* models imperfect code generation — the backing LLM's reliability check
  decides whether the clean template or a realistically flawed variant is
  produced (the paper reports ~90% retrieval success for Ranger),
* executes the code in :class:`~repro.retrieval.executor.SandboxExecutor`
  and converts the structured payload into retrieval facts.

Compared to Sieve, Ranger computes counts and aggregates *exactly* (the code
does the arithmetic), which is why it dominates the Count/Arithmetic
categories; but its context is a single result string, so reasoning-heavy
(ARA) questions receive less supporting material than Sieve's structured
bundle — reproducing the Sieve/Ranger trade-off in the paper's abstract.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from repro.core.query import QueryIntent
from repro.llm.backend import LLMBackend
from repro.llm.prompts import RANGER_SYSTEM_PROMPT
from repro.llm.simulated import create_backend
from repro.retrieval.base import Retriever, register_retriever
from repro.retrieval.codegen import RangerCodeGenerator
from repro.retrieval.context import RetrievedContext
from repro.retrieval.executor import SandboxExecutor
from repro.tracedb.database import TraceDatabase
from repro.tracedb.schema import ACCESS_COLUMNS


@register_retriever
class RangerRetriever(Retriever):
    """LLM-guided code-generating retriever."""

    name = "ranger"

    def __init__(self, database: TraceDatabase,
                 code_llm: Optional[LLMBackend] = None,
                 reliability: float = 0.92,
                 include_metadata: bool = True):
        super().__init__(database)
        self.code_llm = code_llm if code_llm is not None else create_backend("gpt-4o")
        self.reliability = reliability
        self.include_metadata = include_metadata
        self.code_generator = RangerCodeGenerator()
        self.executor = SandboxExecutor(database.loaded_data())
        self.system_prompt = RANGER_SYSTEM_PROMPT

    # ------------------------------------------------------------------
    def _generation_succeeds(self, intent: QueryIntent) -> bool:
        """Whether this query's code generation comes out correct."""
        key = f"ranger-codegen|{intent.question}"
        # Both the backend's intrinsic code-generation skill and the overall
        # pipeline reliability must hold.
        skill_ok = self.code_llm.check("code_generation", key)
        pipeline_ok = self.code_llm.draw("pipeline|" + key) < self.reliability
        return skill_ok and pipeline_ok

    def generate_code(self, intent: QueryIntent) -> str:
        """Expose the generated code (used by code-generation questions)."""
        return self.code_generator.generate(intent, flawed=False)

    # ------------------------------------------------------------------
    def retrieve(self, intent: QueryIntent) -> RetrievedContext:
        start = time.time()
        flawed = not self._generation_succeeds(intent)
        code = self.code_generator.generate(intent, flawed=flawed)
        execution = self.executor.execute(code)

        context = RetrievedContext(retriever_name=self.name, generated_code=code)
        facts = context.facts
        facts["schema"] = list(ACCESS_COLUMNS)

        if execution.success:
            context.text = execution.result
            facts.update(execution.payload)
            key = execution.payload.get("key")
            if key:
                context.sources = [key]
                entry = self.database.entries.get(key)
                if entry is not None and self.include_metadata:
                    facts.setdefault("metadata", entry.metadata)
                    facts.setdefault("descriptions", {key: entry.description})
                    facts.setdefault("workload", entry.workload)
                    facts.setdefault("policy", entry.policy)
        else:
            context.text = (f"Retrieval code failed to execute: {execution.error}")
            context.add_note("generated code failed; no grounded context")

        context.finalise_quality(intent)
        context.retrieval_time_seconds = time.time() - start
        return context
