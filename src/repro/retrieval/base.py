"""Retriever interface and factory."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Union

from repro.core.query import QueryIntent, QueryParser
from repro.retrieval.context import RetrievedContext
from repro.tracedb.database import TraceDatabase


class Retriever(ABC):
    """A retriever maps (question intent, database) to a context bundle."""

    name: str = "retriever"

    def __init__(self, database: TraceDatabase):
        self.database = database
        self.parser = QueryParser(known_workloads=database.workloads,
                                  known_policies=database.policies)

    @abstractmethod
    def retrieve(self, intent: QueryIntent) -> RetrievedContext:
        """Assemble the context for one parsed question."""

    def retrieve_text(self, question: str) -> RetrievedContext:
        """Convenience path: parse then retrieve."""
        return self.retrieve(self.parser.parse(question))

    def describe(self) -> str:
        return f"{self.name} retriever over {len(self.database)} trace entries"


def get_retriever(name_or_instance: Union[str, Retriever],
                  database: TraceDatabase, **kwargs) -> Retriever:
    """Build a retriever by name ('sieve', 'ranger', 'embedding')."""
    if isinstance(name_or_instance, Retriever):
        return name_or_instance
    # Imported here to avoid circular imports at module load time.
    from repro.retrieval.embedding import EmbeddingRetriever
    from repro.retrieval.ranger import RangerRetriever
    from repro.retrieval.sieve import SieveRetriever

    name = name_or_instance.lower()
    if name == "sieve":
        return SieveRetriever(database, **kwargs)
    if name == "ranger":
        return RangerRetriever(database, **kwargs)
    if name in ("embedding", "llamaindex", "baseline"):
        return EmbeddingRetriever(database, **kwargs)
    raise KeyError(f"unknown retriever {name_or_instance!r}; "
                   "expected 'sieve', 'ranger' or 'embedding'")
