"""Retriever interface, plugin registry and factory.

Retrievers register themselves with :func:`register_retriever` (mirroring
``repro.policies.base.register_policy``), so external code can plug new
retrieval strategies into :class:`~repro.core.pipeline.CacheMind` without
touching this package:

    @register_retriever
    class MyRetriever(Retriever):
        name = "mine"
        ...

    get_retriever("mine", database)
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Tuple, Type, Union

from repro.core.query import QueryIntent, QueryParser
from repro.errors import UnknownNameError
from repro.retrieval.context import RetrievedContext
from repro.tracedb.database import TraceDatabase


class Retriever(ABC):
    """A retriever maps (question intent, database) to a context bundle."""

    name: str = "retriever"
    #: alternative names accepted by :func:`get_retriever`.
    aliases: Tuple[str, ...] = ()

    def __init__(self, database: TraceDatabase):
        self.database = database
        self.parser = QueryParser(known_workloads=database.workloads,
                                  known_policies=database.policies)

    @abstractmethod
    def retrieve(self, intent: QueryIntent) -> RetrievedContext:
        """Assemble the context for one parsed question."""

    def retrieve_text(self, question: str) -> RetrievedContext:
        """Convenience path: parse then retrieve."""
        return self.retrieve(self.parser.parse(question))

    def describe(self) -> str:
        return f"{self.name} retriever over {len(self.database)} trace entries"


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Type[Retriever]] = {}


def register_retriever(cls: Type[Retriever]) -> Type[Retriever]:
    """Class decorator registering a retriever under its ``name`` and aliases."""
    # Lowercase at registration to match the lowercased lookups (and the
    # backend registry's behaviour).
    _REGISTRY[cls.name.lower()] = cls
    for alias in cls.aliases:
        _REGISTRY[alias.lower()] = cls
    return cls


def available_retrievers() -> List[str]:
    """Canonical names of all registered retrievers (aliases excluded)."""
    _ensure_retrievers_imported()
    return sorted({cls.name for cls in _REGISTRY.values()})


def resolve_retriever_name(name: str) -> str:
    """Canonical registered name for ``name`` (resolving aliases)."""
    _ensure_retrievers_imported()
    lowered = name.lower()
    if lowered not in _REGISTRY:
        raise UnknownNameError(f"unknown retriever {name!r}; "
                               f"available: {available_retrievers()}")
    return _REGISTRY[lowered].name


def get_retriever(name_or_instance: Union[str, Retriever],
                  database: TraceDatabase, **kwargs) -> Retriever:
    """Build a registered retriever by name ('sieve', 'ranger', 'embedding')."""
    if isinstance(name_or_instance, Retriever):
        return name_or_instance
    _ensure_retrievers_imported()
    name = name_or_instance.lower()
    if name not in _REGISTRY:
        raise UnknownNameError(f"unknown retriever {name_or_instance!r}; "
                               f"available: {available_retrievers()}")
    return _REGISTRY[name](database, **kwargs)


def _ensure_retrievers_imported() -> None:
    # Importing the package registers every built-in retriever exactly once.
    import repro.retrieval  # noqa: F401
