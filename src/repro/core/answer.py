"""Answer objects returned by CacheMind."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class Answer:
    """A trace-grounded answer with its provenance.

    ``value`` carries the machine-checkable payload when one exists (the
    hit/miss label, a rate, a count, a policy name, ...); ``text`` is the
    human-readable answer the chat interface shows; ``evidence`` lists the
    context lines the answer is grounded in; ``grounded`` records whether the
    retriever supplied the facts the answer relies on.
    """

    question: str
    text: str
    value: Any = None
    category: str = "general"
    grounded: bool = False
    admitted_unknown: bool = False
    rejected_premise: bool = False
    evidence: List[str] = field(default_factory=list)
    sources: List[str] = field(default_factory=list)
    retrieval_quality: str = "low"
    backend: str = ""
    retriever: str = ""
    generated_code: Optional[str] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        return self.text

    def short(self, width: int = 120) -> str:
        text = " ".join(self.text.split())
        return text if len(text) <= width else text[: width - 3] + "..."
