"""Answer objects returned by CacheMind, and their wire envelope.

Two objects cross the serving boundary (``repro.serve``):

* :class:`Answer` — the grounded answer with provenance, unchanged whether
  it was produced in-process or behind the JSON server;
* :class:`AskResponse` — the answer plus everything the request/plan/execute
  path learned along the way: the chosen route, the parsed intent, plan and
  dedup job counts, and per-stage timings.

Both serialise losslessly with ``to_dict``/``from_dict`` (every field is a
plain JSON type), which is what makes the three entry points — legacy
``CacheMind.ask``, ``CacheMindService.ask`` and the JSON-lines server —
byte-identical on the answer payload.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Optional


def _dataclass_from_dict(cls, payload: Dict[str, Any]) -> dict:
    """Keyword arguments for ``cls`` from ``payload``, ignoring unknown keys
    (forward compatibility: an older client may receive a newer response)."""
    known = {f.name for f in fields(cls)}
    return {key: value for key, value in payload.items() if key in known}


@dataclass
class Answer:
    """A trace-grounded answer with its provenance.

    ``value`` carries the machine-checkable payload when one exists (the
    hit/miss label, a rate, a count, a policy name, ...); ``text`` is the
    human-readable answer the chat interface shows; ``evidence`` lists the
    context lines the answer is grounded in; ``grounded`` records whether the
    retriever supplied the facts the answer relies on.
    """

    question: str
    text: str
    value: Any = None
    category: str = "general"
    grounded: bool = False
    admitted_unknown: bool = False
    rejected_premise: bool = False
    evidence: List[str] = field(default_factory=list)
    sources: List[str] = field(default_factory=list)
    retrieval_quality: str = "low"
    backend: str = ""
    retriever: str = ""
    generated_code: Optional[str] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        return self.text

    def short(self, width: int = 120) -> str:
        text = " ".join(self.text.split())
        return text if len(text) <= width else text[: width - 3] + "..."

    # ------------------------------------------------------------------
    # wire format
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable dictionary with every field.

        Fields are copied (not shared) so mutating the dictionary never
        mutates the answer; ``value`` and ``extra`` must already be plain
        JSON types, which every generator path guarantees.
        """
        return {
            "question": self.question,
            "text": self.text,
            "value": self.value,
            "category": self.category,
            "grounded": self.grounded,
            "admitted_unknown": self.admitted_unknown,
            "rejected_premise": self.rejected_premise,
            "evidence": list(self.evidence),
            "sources": list(self.sources),
            "retrieval_quality": self.retrieval_quality,
            "backend": self.backend,
            "retriever": self.retriever,
            "generated_code": self.generated_code,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Answer":
        """Rebuild an :class:`Answer` from :meth:`to_dict` output (unknown
        keys from newer producers are ignored)."""
        return cls(**_dataclass_from_dict(cls, payload))


@dataclass
class AskResponse:
    """One served answer plus its plan and execution telemetry.

    ``timings`` maps stage names (``plan``, ``simulate``, ``retrieve``,
    ``generate``, ``total``, plus ``batch_simulate``) to seconds —
    ``simulate`` is this request's amortised share of the batch's shared
    simulation pass and ``batch_simulate`` the full batch cost, so
    per-request totals sum to the wall time; ``planned_jobs`` counts the
    simulation jobs this request's plan named, ``batch_unique_jobs`` the
    deduplicated job count of the batch it executed in (equal to
    ``planned_jobs`` for a single request) and ``simulations_run`` how many
    simulations actually executed (0 for a warm cache).  ``server`` is
    reserved for transport-level metadata (filled by the JSON server, empty
    in-process) and is deliberately excluded from answer equivalence.
    """

    answer: Answer
    request_id: str = ""
    route: str = ""
    question_type: str = ""
    intent: str = ""
    planned_jobs: int = 0
    batch_unique_jobs: int = 0
    batch_duplicate_jobs: int = 0
    simulations_run: int = 0
    timings: Dict[str, float] = field(default_factory=dict)
    server: Dict[str, Any] = field(default_factory=dict)

    @property
    def question(self) -> str:
        return self.answer.question

    def __str__(self) -> str:
        return self.answer.text

    # ------------------------------------------------------------------
    # wire format
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable dictionary (the JSON-lines server payload)."""
        return {
            "answer": self.answer.to_dict(),
            "request_id": self.request_id,
            "route": self.route,
            "question_type": self.question_type,
            "intent": self.intent,
            "planned_jobs": self.planned_jobs,
            "batch_unique_jobs": self.batch_unique_jobs,
            "batch_duplicate_jobs": self.batch_duplicate_jobs,
            "simulations_run": self.simulations_run,
            "timings": dict(self.timings),
            "server": dict(self.server),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "AskResponse":
        """Rebuild an :class:`AskResponse` from :meth:`to_dict` output."""
        kwargs = _dataclass_from_dict(cls, payload)
        kwargs["answer"] = Answer.from_dict(payload.get("answer") or {})
        return cls(**kwargs)
