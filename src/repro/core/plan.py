"""Query planning: one question (or a batch) -> an explicit execution plan.

This module is the middle stage of the request/plan/execute serving API:

    AskRequest --(QueryPlanner.plan)--> QueryPlan --(CacheMind.execute)-->
    AskResponse

A :class:`QueryPlan` makes everything the monolithic ``ask()`` used to do
implicitly *inspectable before any work runs*: the parsed
:class:`~repro.core.query.QueryIntent`, the retriever route the intent maps
to, and the exact set of :class:`PlannedJob` simulations the answer depends
on.  Plans are pure descriptions — building one runs no simulation — which
is the seam batching, deduplication and remote serving plug into:
:func:`QueryPlanner.merge_jobs` collapses a batch of plans into the unique
``(workload, policy, config, mode, detail)`` job set, so N questions over
the same pair simulate it exactly once.

Job scoping: a CacheMind session answers over one shared trace database
(retrievers like Sieve consult *every* entry for comparison and
workload-analysis questions, and Ranger's sandbox executes against the full
``loaded_data`` store), so a plan names the session's full
``workloads x policies`` matrix.  That keeps planned execution byte-identical
to the legacy path; narrowing the job set per-intent is deliberately a
planner-local decision future work can make without touching callers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.answer import _dataclass_from_dict
from repro.core.query import QueryIntent, QueryParser
from repro.retrieval.base import Retriever, resolve_retriever_name


# ----------------------------------------------------------------------
# request
# ----------------------------------------------------------------------
@dataclass
class AskRequest:
    """One question on its way into the pipeline.

    ``retriever`` optionally forces a retrieval strategy (a registered name,
    or an in-process :class:`~repro.retrieval.base.Retriever` instance —
    instances cannot cross the wire).  ``request_id`` is assigned by the
    serving layer when empty, and echoed back on the response.
    """

    question: str
    retriever: Union[str, Retriever, None] = None
    request_id: str = ""

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (refuses in-process retriever instances)."""
        if self.retriever is not None and not isinstance(self.retriever, str):
            raise ValueError(
                "AskRequest with a Retriever instance cannot be serialised; "
                "use a registered retriever name for remote requests")
        return {"question": self.question, "retriever": self.retriever,
                "request_id": self.request_id}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "AskRequest":
        return cls(**_dataclass_from_dict(cls, payload))


def as_request(request_or_question: Union[str, AskRequest],
               retriever: Union[str, Retriever, None] = None) -> AskRequest:
    """Coerce a bare question string into an :class:`AskRequest`.

    An explicit ``retriever`` only applies to bare strings; a ready-made
    request already carries its own override.
    """
    if isinstance(request_or_question, AskRequest):
        return request_or_question
    return AskRequest(question=request_or_question, retriever=retriever)


# ----------------------------------------------------------------------
# planned simulation jobs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PlannedJob:
    """One simulation the plan depends on, named by its full identity.

    Frozen and hashable so batch merging can dedupe on the job itself; the
    identity fields mirror what the simulation memoiser/store key on (minus
    the trace content fingerprint, which only exists once the trace is
    generated at execution time).
    """

    workload: str
    policy: str
    num_accesses: int
    seed: int
    config_name: str
    mode: str
    detail: str = "full"

    @property
    def key(self) -> Tuple:
        """The dedup identity: two equal keys must simulate once."""
        return (self.workload, self.policy, self.num_accesses, self.seed,
                self.config_name, self.mode, self.detail)

    def to_dict(self) -> Dict[str, Any]:
        return {"workload": self.workload, "policy": self.policy,
                "num_accesses": self.num_accesses, "seed": self.seed,
                "config_name": self.config_name, "mode": self.mode,
                "detail": self.detail}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "PlannedJob":
        return cls(**_dataclass_from_dict(cls, payload))


# ----------------------------------------------------------------------
# the plan
# ----------------------------------------------------------------------
@dataclass
class QueryPlan:
    """Everything needed to execute one request, decided up front.

    ``route`` is the canonical retriever name; ``retriever_instance``
    carries an in-process :class:`Retriever` override (never serialised)
    that execution must use instead of resolving ``route``.
    """

    request: AskRequest
    intent: QueryIntent
    route: str
    jobs: Tuple[PlannedJob, ...] = ()
    retriever_instance: Optional[Retriever] = field(default=None, repr=False)

    @property
    def question(self) -> str:
        return self.request.question

    def job_keys(self) -> List[Tuple]:
        return [job.key for job in self.jobs]

    def describe(self) -> str:
        return (f"plan[{self.route}] {self.intent.describe()} "
                f"({len(self.jobs)} jobs)")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable summary (intent as its describe() string)."""
        return {
            "request": self.request.to_dict(),
            "intent": self.intent.describe(),
            "question_type": self.intent.question_type,
            "route": self.route,
            "jobs": [job.to_dict() for job in self.jobs],
        }


# ----------------------------------------------------------------------
# the planner
# ----------------------------------------------------------------------
class QueryPlanner:
    """Turns requests into :class:`QueryPlan` objects for one session shape.

    The planner owns no simulation state: it needs only the session's query
    parser, its routing function and the session parameters that define the
    job matrix.  ``router`` maps a parsed intent to a retriever name (the
    session passes :meth:`CacheMind.route`); ``forced_retriever`` mirrors
    the session-wide override.
    """

    def __init__(self, parser: QueryParser,
                 router: Callable[[QueryIntent], str],
                 workloads: Sequence[str], policies: Sequence[str],
                 num_accesses: int, seed: int, config_name: str, mode: str,
                 detail: str = "full",
                 forced_retriever: Union[str, Retriever, None] = None):
        self.parser = parser
        self.router = router
        self.workloads = tuple(workloads)
        self.policies = tuple(policies)
        self.num_accesses = num_accesses
        self.seed = seed
        self.config_name = config_name
        self.mode = mode
        self.detail = detail
        self.forced_retriever = forced_retriever
        #: job count of the last merge_jobs() call through this planner —
        #: the batch-dedup probe tests and the service read.
        self.last_merged_job_count: Optional[int] = None

    # ------------------------------------------------------------------
    def matrix_jobs(self) -> Tuple[PlannedJob, ...]:
        """The session's full ``workloads x policies`` simulation matrix, in
        the (workload-major) order the database builder uses."""
        return tuple(
            PlannedJob(workload=workload, policy=policy,
                       num_accesses=self.num_accesses, seed=self.seed,
                       config_name=self.config_name, mode=self.mode,
                       detail=self.detail)
            for workload in self.workloads for policy in self.policies)

    def _resolve_route(self, request: AskRequest,
                       intent: QueryIntent) -> Tuple[str, Optional[Retriever]]:
        # `is None` rather than truthiness: an explicit '' is a configuration
        # error and must surface as UnknownNameError, not silent routing.
        chosen = (request.retriever if request.retriever is not None
                  else self.forced_retriever)
        if chosen is None:
            return self.router(intent), None
        if isinstance(chosen, str):
            return resolve_retriever_name(chosen), None
        return chosen.name, chosen

    def plan(self, request_or_question: Union[str, AskRequest]) -> QueryPlan:
        """Parse and route one request into an executable plan."""
        request = as_request(request_or_question)
        intent = self.parser.parse(request.question)
        route, instance = self._resolve_route(request, intent)
        return QueryPlan(request=request, intent=intent, route=route,
                         jobs=self.matrix_jobs(),
                         retriever_instance=instance)

    def plan_many(self, requests: Sequence[Union[str, AskRequest]]
                  ) -> List[QueryPlan]:
        """Plan a batch (one plan per request, in order)."""
        return [self.plan(request) for request in requests]

    # ------------------------------------------------------------------
    def merge_jobs(self, plans: Sequence[QueryPlan]
                   ) -> Tuple[PlannedJob, ...]:
        """Deduplicate the batch's jobs, preserving first-seen order.

        This is the batching contract: however many plans name the same
        ``(workload, policy, config, mode, detail)`` job, it appears once in
        the merged set and therefore simulates once.  The merged count is
        recorded in :attr:`last_merged_job_count`.
        """
        merged = merge_jobs(plans)
        self.last_merged_job_count = len(merged)
        return merged


def merge_jobs(plans: Sequence[QueryPlan]) -> Tuple[PlannedJob, ...]:
    """The unique jobs across ``plans``, in first-seen order."""
    return merge_job_lists(plan.jobs for plan in plans)


def merge_job_lists(
        job_lists: Iterable[Sequence[PlannedJob]]) -> Tuple[PlannedJob, ...]:
    """The unique jobs across any job sequences, in first-seen order.

    The same dedup contract as :func:`merge_jobs` for callers that produce
    :class:`PlannedJob` sets without a :class:`QueryPlan` around them — the
    experiment compiler (``repro.core.experiment``) merges one job list per
    grid cell through here, so duplicate cells simulate once.
    """
    seen: Dict[Tuple, PlannedJob] = {}
    for jobs in job_lists:
        for job in jobs:
            seen.setdefault(job.key, job)
    return tuple(seen.values())
