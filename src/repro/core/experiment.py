"""Declarative experiment API: sweep grids compiled to merged job plans.

The paper's analyses are sweeps — policy x workload x hierarchy-configuration
grids — but a :class:`~repro.core.pipeline.CacheMind` session is pinned to
one :class:`~repro.sim.config.HierarchyConfig`.  This module is the layer
that runs the whole evaluation matrix as one call:

* :class:`ExperimentSpec` names every axis of a grid declaratively —
  workloads x policies x **multiple configs** x detail levels x trace
  lengths x seeds, plus the metrics to report and an optional baseline
  policy — and serialises losslessly (``to_dict``/``from_dict``), so specs
  cross the JSON-server wire unchanged.
* :meth:`ExperimentSpec.compile` flattens the grid into one
  :class:`~repro.core.plan.PlannedJob` per cell and merges duplicates
  through the same machinery the serving batch path uses
  (:func:`~repro.core.plan.merge_job_lists`): however the grid names a
  cell twice — duplicated axis values, a baseline policy already in the
  policy list — it simulates exactly once.
* :class:`ExperimentRunner` executes a compiled plan through the
  :class:`~repro.core.pipeline.SimulationCache` (and therefore the
  persistent :class:`~repro.tracedb.store.TraceStore`, when one is
  attached: warm cells skip simulation across processes) with the
  cache-miss subset fanned out over
  :class:`~repro.sim.parallel.ParallelSimulator` workers per
  (config, detail) group.
* :class:`ExperimentResult` is a columnar cell table — one row per unique
  grid cell with miss/hit rate, IPC and cycle accounting — with lossless
  ``to_dict``/``from_dict``, derived views (:meth:`~ExperimentResult.pivot`,
  :meth:`~ExperimentResult.best_policy_per_cell`,
  :meth:`~ExperimentResult.delta_vs_baseline`) and store persistence keyed
  by the spec fingerprint.

Equivalence contract: a ``detail="full"`` cell reports exactly the numbers a
single-config :class:`CacheMind` session reports for that (workload, policy,
config) — metrics come from the same memoised
:class:`~repro.tracedb.database.TraceEntry` objects the session database
holds (``entry.statistics`` for rates, ``entry.result.ipc`` for IPC), so
``compare_policies`` can route through here without changing a digit.
``detail="stats"`` cells skip entry derivation entirely and read the raw
LLC counters (the fast path for wide sweeps).

    >>> from repro.core.experiment import ExperimentSpec, ExperimentRunner
    >>> spec = ExperimentSpec(workloads=["astar", "lbm"],
    ...                       policies=["lru", "belady"],
    ...                       configs=["tiny", "small"],
    ...                       baseline_policy="lru")
    >>> result = ExperimentRunner().run(spec)
    >>> result.pivot("miss_rate", where={"config": "tiny"})
"""

from __future__ import annotations

import hashlib
import json
import time
import warnings
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.answer import _dataclass_from_dict
from repro.core.plan import PlannedJob, merge_job_lists
from repro.policies.base import get_policy
from repro.sim.config import HierarchyConfig, resolve_config
from repro.sim.batch import BatchSimulator, RolloutSpec
from repro.sim.engine import SimulationEngine
from repro.sim.parallel import ParallelSimulator, SimulationJob
from repro.errors import StoreReadOnlyError
from repro.tracedb.store import StoreCorruptionWarning
from repro.workloads.generator import get_workload, workload_kind
from repro.workloads.ingest import ensure_store_traces_registered

#: metrics where a smaller value wins (everything else is higher-is-better).
LOWER_IS_BETTER_METRICS = ("miss_rate",)

#: simulation modes an experiment may run in.
MODES = ("llc_only", "hierarchy")

#: engine detail levels an experiment may sweep over.
DETAILS = ("full", "stats")

#: metric names a spec may select for its default views.
METRICS = ("miss_rate", "hit_rate", "ipc")

#: identity columns of the cell table, in row order.
AXES = ("workload", "policy", "config", "detail", "num_accesses", "seed")

#: measured columns recorded for every cell (all of them, always — the
#: spec's ``metrics`` tuple only selects which ones the default views show).
VALUES = ("miss_rate", "hit_rate", "ipc", "accesses", "hits", "misses",
          "evictions", "instructions", "cycles")

#: every column of the cell table.
COLUMNS = AXES + VALUES

#: progress callback shape: ``progress(cells_done, cells_total)``.
ProgressCallback = Callable[[int, int], None]


def _as_tuple(value, item_type=None) -> tuple:
    """Coerce a scalar-or-sequence axis value into a tuple."""
    if isinstance(value, (str, int)) or not isinstance(value, Sequence):
        value = (value,)
    items = tuple(value)
    if item_type is not None:
        items = tuple(item_type(item) for item in items)
    return items


# ----------------------------------------------------------------------
# the spec
# ----------------------------------------------------------------------
@dataclass
class ExperimentSpec:
    """One declarative sweep grid: every axis named up front, no execution.

    ``configs`` accepts registered names (``"tiny"``), full
    :meth:`~repro.sim.config.HierarchyConfig.to_dict` payloads (the wire
    form) or ready instances, in any mix.  ``baseline_policy`` adds its
    cells to the grid when absent from ``policies`` (deduplicated when
    present) and enables :meth:`ExperimentResult.delta_vs_baseline`.
    Scalars are accepted for single-value axes (``num_accesses=4000``).
    """

    workloads: Tuple[str, ...] = ()
    policies: Tuple[str, ...] = ()
    configs: Tuple[HierarchyConfig, ...] = ()
    mode: str = "llc_only"
    details: Tuple[str, ...] = ("full",)
    num_accesses: Tuple[int, ...] = (20000,)
    seeds: Tuple[int, ...] = (0,)
    metrics: Tuple[str, ...] = METRICS
    baseline_policy: Optional[str] = None

    def __post_init__(self) -> None:
        self.workloads = _as_tuple(self.workloads, str)
        self.policies = _as_tuple(self.policies, str)
        self.configs = tuple(resolve_config(config)
                             for config in _as_tuple(self.configs))
        self.details = _as_tuple(self.details, str)
        self.num_accesses = _as_tuple(self.num_accesses, int)
        self.seeds = _as_tuple(self.seeds, int)
        self.metrics = _as_tuple(self.metrics, str)
        for axis_name in ("workloads", "policies", "configs", "details",
                          "num_accesses", "seeds", "metrics"):
            if not getattr(self, axis_name):
                raise ValueError(f"experiment spec needs at least one value "
                                 f"on the {axis_name!r} axis")
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}")
        for detail in self.details:
            if detail not in DETAILS:
                raise ValueError(f"details must be drawn from {DETAILS}; "
                                 f"got {detail!r}")
        for metric in self.metrics:
            if metric not in METRICS:
                raise ValueError(f"metrics must be drawn from {METRICS}; "
                                 f"got {metric!r}")
        for length in self.num_accesses:
            if length <= 0:
                raise ValueError("num_accesses values must be positive")
        # Config names are the cell/job identity (PlannedJob carries the
        # name, not the object), so one name must never denote two
        # different hierarchies within a grid.
        by_name: Dict[str, HierarchyConfig] = {}
        for config in self.configs:
            seen = by_name.setdefault(config.name, config)
            if seen != config:
                raise ValueError(
                    f"two different configurations share the name "
                    f"{config.name!r}; rename one (e.g. "
                    f"config.scaled_llc(..., name='{config.name}-v2'))")

    # ------------------------------------------------------------------
    @property
    def config_map(self) -> Dict[str, HierarchyConfig]:
        """Config-name -> config, in grid order (names are unique)."""
        mapping: Dict[str, HierarchyConfig] = {}
        for config in self.configs:
            mapping.setdefault(config.name, config)
        return mapping

    @property
    def grid_policies(self) -> Tuple[str, ...]:
        """The policy axis actually swept: ``policies`` plus the baseline
        when it is not already listed."""
        if (self.baseline_policy is not None
                and self.baseline_policy not in self.policies):
            return self.policies + (self.baseline_policy,)
        return self.policies

    def cells(self) -> Tuple[PlannedJob, ...]:
        """One :class:`PlannedJob` per grid cell, config-major, duplicates
        preserved (the compile step merges them)."""
        return tuple(
            PlannedJob(workload=workload, policy=policy,
                       num_accesses=length, seed=seed,
                       config_name=config.name, mode=self.mode,
                       detail=detail)
            for config in self.configs
            for detail in self.details
            for length in self.num_accesses
            for seed in self.seeds
            for workload in self.workloads
            for policy in self.grid_policies)

    def compile(self) -> "ExperimentPlan":
        """Flatten the grid and merge duplicate cells into one job set."""
        cells = self.cells()
        return ExperimentPlan(spec=self, cells=cells,
                              jobs=merge_job_lists((cells,)))

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Lossless JSON-serialisable form (configs as full dictionaries)."""
        return {
            "workloads": list(self.workloads),
            "policies": list(self.policies),
            "configs": [config.to_dict() for config in self.configs],
            "mode": self.mode,
            "details": list(self.details),
            "num_accesses": list(self.num_accesses),
            "seeds": list(self.seeds),
            "metrics": list(self.metrics),
            "baseline_policy": self.baseline_policy,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ExperimentSpec":
        """Rebuild a spec from :meth:`to_dict` output (unknown keys from
        newer producers are ignored)."""
        return cls(**_dataclass_from_dict(cls, payload))

    def fingerprint(self) -> str:
        """Stable content hash of the whole grid (the persistence key).

        Hashes the canonical JSON of :meth:`to_dict`, so two specs with
        equal axes — however they were constructed — share a fingerprint,
        and any changed axis (including a config parameter) changes it.
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:32]

    def describe(self) -> str:
        axes = (f"{len(self.workloads)} workloads x "
                f"{len(self.grid_policies)} policies x "
                f"{len(self.configs)} configs x "
                f"{len(self.details)} details x "
                f"{len(self.num_accesses)} trace lengths x "
                f"{len(self.seeds)} seeds")
        plan = self.compile()
        return (f"experiment grid [{self.mode}]: {axes} = "
                f"{len(plan.cells)} cells ({len(plan.jobs)} unique jobs)")


def as_experiment_spec(
        value: Union[ExperimentSpec, Dict[str, Any]]) -> ExperimentSpec:
    """Coerce a spec-or-payload (the wire form) into an
    :class:`ExperimentSpec`."""
    if isinstance(value, ExperimentSpec):
        return value
    if isinstance(value, dict):
        return ExperimentSpec.from_dict(value)
    raise TypeError(f"cannot coerce {type(value).__name__!r} into an "
                    f"ExperimentSpec (expected spec or dict)")


# ----------------------------------------------------------------------
# the compiled plan
# ----------------------------------------------------------------------
@dataclass
class ExperimentPlan:
    """A compiled grid: every cell, and the merged unique job set.

    Pure description — building one runs no simulation, mirroring
    :class:`~repro.core.plan.QueryPlan`.
    """

    spec: ExperimentSpec
    cells: Tuple[PlannedJob, ...]
    jobs: Tuple[PlannedJob, ...]

    @property
    def planned_cells(self) -> int:
        return len(self.cells)

    @property
    def unique_jobs(self) -> int:
        return len(self.jobs)

    @property
    def duplicate_jobs(self) -> int:
        """How many grid cells the merge collapsed into earlier ones."""
        return len(self.cells) - len(self.jobs)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "planned_cells": self.planned_cells,
            "unique_jobs": self.unique_jobs,
            "duplicate_jobs": self.duplicate_jobs,
            "jobs": [job.to_dict() for job in self.jobs],
        }


# ----------------------------------------------------------------------
# the result table
# ----------------------------------------------------------------------
class ExperimentResult:
    """Columnar cell table: one row per unique grid cell, plus run telemetry.

    ``columns`` maps every :data:`COLUMNS` name to a parallel list (rows in
    first-seen cell order).  ``counters`` records the dedup and cache
    telemetry of the run (``planned_cells``, ``unique_jobs``,
    ``duplicate_jobs``, ``simulations_run``, ``cache_hits``,
    ``store_hits``); ``timings`` the per-stage seconds (``compile``,
    ``execute``, ``total``).
    """

    def __init__(self, spec: ExperimentSpec,
                 columns: Dict[str, List[Any]],
                 counters: Optional[Dict[str, int]] = None,
                 timings: Optional[Dict[str, float]] = None,
                 fingerprint: str = ""):
        self.spec = spec
        self.columns = {name: list(columns.get(name, []))
                        for name in COLUMNS}
        lengths = {len(column) for column in self.columns.values()}
        if len(lengths) > 1:
            raise ValueError(f"ragged cell table: column lengths {lengths}")
        self.counters = dict(counters or {})
        self.timings = dict(timings or {})
        self.fingerprint = fingerprint or spec.fingerprint()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.columns["workload"])

    @property
    def num_cells(self) -> int:
        return len(self)

    def row(self, index: int) -> Dict[str, Any]:
        return {name: self.columns[name][index] for name in COLUMNS}

    def rows(self) -> List[Dict[str, Any]]:
        """Row-dictionary view of the cell table (materialised on demand)."""
        return list(self.iter_rows())

    def iter_rows(self):
        """Lazily yield one dict per cell, in row order."""
        for index in range(len(self)):
            yield self.row(index)

    # ------------------------------------------------------------------
    # lookups and derived views
    # ------------------------------------------------------------------
    def as_table(self):
        """The cell table as a :class:`~repro.tracedb.table.Table` copy."""
        from repro.tracedb.table import Table

        return Table.from_columns(
            {name: list(values) for name, values in self.columns.items()})

    def query(self, query, backend: str = "stdlib"):
        """Run a declarative :class:`~repro.analytics.Query` (or its wire
        form) against the cell table via :mod:`repro.analytics`.

        The cell table is registered under the query's own table name
        (conventionally ``"cells"``), so any single-table query works;
        for cross-experiment joins use :meth:`join`.  ``backend`` is an
        analytics backend registry name (``stdlib`` or ``sqlite``).
        """
        from repro.analytics import as_query, run_query

        query = as_query(query)
        return run_query(query, {query.table: self.as_table()}, backend=backend)

    def top_k(self, metric: str, k: int = 5,
              where: Optional[Dict[str, Any]] = None,
              descending: bool = True, backend: str = "stdlib"):
        """The ``k`` cells with the largest ``metric`` (axes + metric
        columns), optionally under an axis filter.

        Largest-first by default; pass ``descending=False`` for the
        smallest (e.g. best ``miss_rate``).  Ties preserve cell order.
        """
        from repro.analytics import Filter, OrderBy, Query

        self._check_metric(metric)
        filters = tuple(Filter(axis, "eq", value)
                        for axis, value in (where or {}).items())
        return self.query(Query(
            table="cells",
            select=AXES + (metric,),
            filters=filters,
            order_by=(OrderBy(metric, descending),),
            limit=k,
        ), backend=backend)

    def join(self, other: "ExperimentResult",
             on: Sequence[str] = AXES,
             metrics: Sequence[str] = ("miss_rate",),
             suffix: str = "_other", backend: str = "stdlib"):
        """Inner-join this cell table against another experiment's.

        Rows match on the ``on`` axes (all of :data:`AXES` by default, i.e.
        identical grid cells).  The result carries every left column plus
        each requested right ``metric`` as ``<metric><suffix>`` and a
        computed ``<metric>_delta`` (left minus right) — the
        delta-vs-baseline view across *experiments* rather than policies.
        """
        from repro.analytics import Join, Query, run_query

        for metric in metrics:
            self._check_metric(metric)
        query = Query(table="cells", join=Join(
            table="other",
            on=tuple((axis, axis) for axis in on),
            select=tuple((metric, f"{metric}{suffix}") for metric in metrics),
        ))
        joined = run_query(
            query,
            {"cells": self.as_table(), "other": other.as_table()},
            backend=backend,
        )
        for metric in metrics:
            left = joined[metric].values
            right = joined[f"{metric}{suffix}"].values
            joined.add_column(f"{metric}_delta", [
                (a - b) if isinstance(a, (int, float)) and isinstance(b, (int, float))
                else None
                for a, b in zip(left, right)
            ])
        return joined

    def _indices(self, where: Optional[Dict[str, Any]] = None) -> List[int]:
        if not where:
            return list(range(len(self)))
        for axis in where:
            if axis not in COLUMNS:
                raise ValueError(f"unknown filter column {axis!r}; "
                                 f"columns: {', '.join(COLUMNS)}")
        return [index for index in range(len(self))
                if all(self.columns[axis][index] == value
                       for axis, value in where.items())]

    def value(self, metric: str, **axes: Any) -> Any:
        """The single cell value for ``metric`` under the axis filter;
        raises if the filter does not pin exactly one cell."""
        self._check_metric(metric)
        matches = self._indices(axes)
        if len(matches) != 1:
            raise ValueError(
                f"filter {axes!r} matches {len(matches)} cells; "
                f"pin more axes (grid axes: {', '.join(AXES)})")
        return self.columns[metric][matches[0]]

    def _check_metric(self, metric: str) -> None:
        if metric not in VALUES:
            raise ValueError(f"unknown metric {metric!r}; "
                             f"available: {', '.join(VALUES)}")

    def pivot(self, metric: str, rows: str = "workload",
              cols: str = "policy",
              where: Optional[Dict[str, Any]] = None
              ) -> Dict[Any, Dict[Any, Any]]:
        """A ``{row: {col: metric}}`` table over the (filtered) cells.

        Raises when two cells land on the same (row, col) — that means an
        unpinned axis still varies; add it to ``where``.
        """
        self._check_metric(metric)
        if rows not in AXES or cols not in AXES or rows == cols:
            raise ValueError(f"rows/cols must be two different grid axes "
                             f"({', '.join(AXES)})")
        table: Dict[Any, Dict[Any, Any]] = {}
        origin: Dict[Tuple[Any, Any], int] = {}
        selected = self._indices(where)
        for index in selected:
            row_key = self.columns[rows][index]
            col_key = self.columns[cols][index]
            if (row_key, col_key) in origin:
                # Name the axes that actually still vary among the
                # *filtered* rows; a pinned axis (even to a falsy value
                # like seed=0) is never reported.
                varying = [
                    axis for axis in AXES
                    if axis not in (rows, cols)
                    and axis not in (where or {})
                    and len({self.columns[axis][i] for i in selected}) > 1]
                raise ValueError(
                    f"pivot cell ({row_key!r}, {col_key!r}) is ambiguous: "
                    f"unpinned axes still vary ({', '.join(varying)}); "
                    f"filter them via where={{...}}")
            origin[(row_key, col_key)] = index
            table.setdefault(row_key, {})[col_key] = (
                self.columns[metric][index])
        return table

    def best_policy_per_cell(self, metric: str = "miss_rate"
                             ) -> List[Dict[str, Any]]:
        """The winning policy for every non-policy cell of the grid.

        Returns one row per (workload, config, detail, num_accesses, seed)
        group with the chosen ``policy`` and its metric value; lower wins
        for :data:`LOWER_IS_BETTER_METRICS`, higher otherwise.
        """
        self._check_metric(metric)
        group_axes = tuple(axis for axis in AXES if axis != "policy")
        groups: Dict[Tuple, List[int]] = {}
        for index in range(len(self)):
            key = tuple(self.columns[axis][index] for axis in group_axes)
            groups.setdefault(key, []).append(index)
        chooser = min if metric in LOWER_IS_BETTER_METRICS else max
        winners = []
        for key, indices in groups.items():
            best = chooser(indices,
                           key=lambda index: self.columns[metric][index])
            row = dict(zip(group_axes, key))
            row["policy"] = self.columns["policy"][best]
            row[metric] = self.columns[metric][best]
            winners.append(row)
        return winners

    def delta_vs_baseline(self, metric: str = "miss_rate"
                          ) -> List[Dict[str, Any]]:
        """Per-cell metric delta against the spec's baseline policy.

        One row per non-baseline cell: the cell's axes, its ``metric``
        value, the baseline's value in the same group and
        ``delta = value - baseline`` (negative means below baseline).
        """
        self._check_metric(metric)
        baseline = self.spec.baseline_policy
        if baseline is None:
            raise ValueError("spec has no baseline_policy; set one to use "
                             "delta_vs_baseline")
        group_axes = tuple(axis for axis in AXES if axis != "policy")

        def group_key(index: int) -> Tuple:
            return tuple(self.columns[axis][index] for axis in group_axes)

        baseline_values: Dict[Tuple, Any] = {}
        for index in range(len(self)):
            if self.columns["policy"][index] == baseline:
                baseline_values[group_key(index)] = (
                    self.columns[metric][index])
        deltas = []
        for index in range(len(self)):
            policy = self.columns["policy"][index]
            if policy == baseline:
                continue
            key = group_key(index)
            if key not in baseline_values:
                raise ValueError(f"no baseline ({baseline!r}) cell for "
                                 f"group {dict(zip(group_axes, key))!r}")
            value = self.columns[metric][index]
            row = dict(zip(group_axes, key))
            row["policy"] = policy
            row[metric] = value
            row["baseline"] = baseline_values[key]
            row["delta"] = value - baseline_values[key]
            deltas.append(row)
        return deltas

    # ------------------------------------------------------------------
    # wire format and persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Lossless JSON-serialisable form (every column is plain data)."""
        return {
            "spec": self.spec.to_dict(),
            "fingerprint": self.fingerprint,
            "columns": {name: list(values)
                        for name, values in self.columns.items()},
            "counters": dict(self.counters),
            "timings": dict(self.timings),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_dict` output."""
        return cls(spec=ExperimentSpec.from_dict(payload.get("spec") or {}),
                   columns=payload.get("columns") or {},
                   counters=payload.get("counters"),
                   timings=payload.get("timings"),
                   fingerprint=payload.get("fingerprint", ""))

    def save(self, store) -> str:
        """Persist into a :class:`~repro.tracedb.store.TraceStore` under the
        spec fingerprint; returns the record path."""
        return store.save_experiment(self.fingerprint, self.to_dict())

    @classmethod
    def load(cls, store, fingerprint: str) -> Optional["ExperimentResult"]:
        """Load a stored result by fingerprint, or ``None``."""
        payload = store.load_experiment(fingerprint)
        return cls.from_dict(payload) if payload is not None else None

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def summary(self) -> str:
        counters = self.counters
        return (f"experiment {self.fingerprint[:12]}: "
                f"{counters.get('planned_cells', len(self))} cells -> "
                f"{counters.get('unique_jobs', len(self))} unique jobs "
                f"({counters.get('duplicate_jobs', 0)} duplicates merged); "
                f"{counters.get('simulations_run', 0)} simulated, "
                f"{counters.get('cache_hits', 0)} cache hits "
                f"({counters.get('store_hits', 0)} from store) "
                f"in {self.timings.get('total', 0.0):.3f}s")

    def format_table(self, metric: Optional[str] = None) -> str:
        """Workload x policy grids, one block per remaining axis group."""
        metric = metric or self.spec.metrics[0]
        self._check_metric(metric)
        percent = metric in ("miss_rate", "hit_rate")
        group_axes = ("config", "detail", "num_accesses", "seed")
        seen_groups: List[Tuple] = []
        for index in range(len(self)):
            key = tuple(self.columns[axis][index] for axis in group_axes)
            if key not in seen_groups:
                seen_groups.append(key)
        lines = [f"{metric} per (workload, policy)"]
        for key in seen_groups:
            where = dict(zip(group_axes, key))
            table = self.pivot(metric, where=where)
            lines.append("  " + "  ".join(f"{axis}={value}"
                                          for axis, value in where.items()))
            name_width = max(len(str(name)) for name in table)
            for workload, row in table.items():
                rendered = []
                for policy in sorted(row):
                    value = row[policy]
                    cell = (f"{value * 100:.2f}%" if percent
                            else f"{value:.4f}")
                    rendered.append(f"{policy}={cell}")
                lines.append(f"    {workload:<{name_width}}  "
                             + "  ".join(rendered))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"ExperimentResult(cells={len(self)}, "
                f"fingerprint={self.fingerprint[:12]!r})")


# ----------------------------------------------------------------------
# the executor
# ----------------------------------------------------------------------
class ExperimentRunner:
    """Execute compiled grids through the simulation memoiser.

    ``simulation_cache`` defaults to the process-wide singleton; attach a
    store-backed cache for cross-process warm runs.  ``jobs > 1`` fans the
    cache-miss subset of each (config, detail) group out over a
    :class:`ParallelSimulator`; results land back in the shared memoiser,
    so parallelism, memoisation and persistence compose exactly as in the
    session database build.

    ``strategy`` picks how serial cache misses execute: ``"auto"``
    (default) routes every group of >= 2 misses sharing a trace through the
    lockstep :class:`~repro.sim.batch.BatchSimulator` (one trace pass, many
    rollouts) and keeps per-cell replay for singletons; ``"batch"`` forces
    the batch kernel even for singletons; ``"single"`` forces per-cell
    replay everywhere (the equivalence oracle).  Either way results install
    through ``SimulationCache.put_result/put_entry``, so warm-store
    semantics are unchanged and re-runs simulate zero cells.
    """

    STRATEGIES = ("auto", "batch", "single")

    def __init__(self, simulation_cache=None, jobs: int = 1,
                 executor: str = "auto",
                 max_records: Optional[int] = None,
                 strategy: str = "auto"):
        if strategy not in self.STRATEGIES:
            raise ValueError(f"strategy must be one of {self.STRATEGIES}")
        self.simulation_cache = simulation_cache
        self.jobs = max(1, int(jobs))
        self.executor = executor
        self.max_records = max_records
        self.strategy = strategy

    # ------------------------------------------------------------------
    def _cache(self):
        if self.simulation_cache is not None:
            return self.simulation_cache
        # Lazy: repro.core.pipeline imports this module at load time.
        from repro.core.pipeline import SIMULATION_CACHE
        return SIMULATION_CACHE

    def run(self, spec: Union[ExperimentSpec, Dict[str, Any]],
            progress: Optional[ProgressCallback] = None) -> ExperimentResult:
        """Compile and execute ``spec``; returns the populated result.

        With a store-backed cache the result is also persisted under the
        spec fingerprint, so ``experiment report`` (and warm re-runs) can
        find it later.
        """
        started = time.perf_counter()
        spec = as_experiment_spec(spec)
        plan = spec.compile()
        cache = self._cache()
        if cache.store is not None:
            # Traces imported by earlier processes become nameable grid
            # axes before the typo check below rejects them.
            ensure_store_traces_registered(cache.store)
        # Fail on a typo'd policy/workload name before hours of sweep run.
        for policy in {job.policy for job in plan.jobs}:
            get_policy(policy)
        for workload in {job.workload for job in plan.jobs}:
            get_workload(workload)
        compile_seconds = time.perf_counter() - started
        execute_started = time.perf_counter()
        # Counted per-cell by this run (not as a delta of the shared
        # cache's global counters): other threads sharing the cache — the
        # serving layer runs sweeps concurrently with asks — must not
        # leak their hits/misses into this result's telemetry, which the
        # CLI's --expect-warm assertion and the stored record rely on.
        tally = {"simulations_run": 0, "cache_hits": 0, "store_hits": 0,
                 "batch_groups": 0, "batch_cells": 0}
        outputs = self._execute(spec, plan, cache, progress, tally)
        execute_seconds = time.perf_counter() - execute_started

        columns: Dict[str, List[Any]] = {name: [] for name in COLUMNS}
        for job in plan.jobs:
            for name, value in outputs[job.key].items():
                columns[name].append(value)
        counters = {
            "planned_cells": plan.planned_cells,
            "unique_jobs": plan.unique_jobs,
            "duplicate_jobs": plan.duplicate_jobs,
            **tally,
        }
        total_seconds = time.perf_counter() - started
        result = ExperimentResult(
            spec=spec, columns=columns, counters=counters,
            timings={"compile": compile_seconds,
                     "execute": execute_seconds,
                     "total": total_seconds})
        if cache.store is not None:
            # The store is an accelerator: a failed persist must not lose
            # the freshly computed in-memory result.  A read-only mount is
            # the deliberate "serve warm, don't persist" configuration, so
            # it skips silently rather than warning per experiment.
            try:
                result.save(cache.store)
            except StoreReadOnlyError:
                pass
            except OSError as error:
                warnings.warn(
                    f"experiment result persist failed ({error!r}); "
                    f"continuing without persistence",
                    StoreCorruptionWarning, stacklevel=2)
        return result

    # ------------------------------------------------------------------
    def _execute(self, spec: ExperimentSpec, plan: ExperimentPlan, cache,
                 progress: Optional[ProgressCallback],
                 tally: Dict[str, int]) -> Dict[Tuple, Dict[str, Any]]:
        """Run every unique job; returns job-key -> cell row values.

        ``tally`` accumulates this run's own simulation/hit counts (cell by
        cell, via :meth:`SimulationCache.lookup_entry` provenance), so the
        result telemetry stays honest when other threads share the cache.
        """
        config_map = spec.config_map
        engines: Dict[Tuple[str, str], SimulationEngine] = {}
        outputs: Dict[Tuple, Dict[str, Any]] = {}
        pending: Dict[Tuple[str, str],
                      List[Tuple[PlannedJob, Any, str]]] = {}
        # Serial cache misses, grouped by the trace they replay: >= 2
        # cells sharing a trace advance in one lockstep batch pass.
        serial_pending: Dict[Tuple[str, int, int],
                             List[Tuple[PlannedJob, Any, str,
                                        SimulationEngine]]] = {}
        total = plan.unique_jobs
        done = 0

        def advance() -> None:
            nonlocal done
            done += 1
            if progress is not None:
                progress(done, total)

        # Announce the total before any work: observers (the serving
        # telemetry) learn the grid size without compiling the spec
        # themselves.
        if progress is not None:
            progress(0, total)

        for job in plan.jobs:
            group = (job.config_name, job.detail)
            engine = engines.get(group)
            if engine is None:
                engine = SimulationEngine(
                    config=config_map[job.config_name], mode=spec.mode,
                    max_records=self.max_records, detail=job.detail)
                # Oracle cells share one reuse precompute per trace.
                engine.reuse_cache = cache.reuse_for
                engines[group] = engine
            trace, description = cache.get_trace(
                job.workload, job.num_accesses, job.seed)
            if job.detail == "full":
                found, origin = cache.lookup_entry(engine, trace, job.policy,
                                                   description=description)
            else:
                found, origin = cache.lookup_result(engine, trace, job.policy)
            if found is None:
                if self.jobs > 1:
                    # Dispatch only the cache misses to workers, exactly
                    # like the parallel session database build.
                    pending.setdefault(group, []).append(
                        (job, trace, description))
                else:
                    # Serial miss: deferred so misses sharing a trace can
                    # batch into one lockstep pass below.
                    serial_pending.setdefault(
                        (job.workload, job.num_accesses, job.seed),
                        []).append((job, trace, description, engine))
                continue
            tally["cache_hits"] += 1
            if origin == "store":
                tally["store_hits"] += 1
            outputs[job.key] = (self._row_from_entry(job, found)
                                if job.detail == "full"
                                else self._row_from_result(job, found))
            advance()

        for group_pending in serial_pending.values():
            shared_trace = group_pending[0][1]
            use_batch = (self.strategy == "batch"
                         or (self.strategy == "auto"
                             and len(group_pending) >= 2))
            if use_batch:
                tally["batch_groups"] += 1
                tally["batch_cells"] += len(group_pending)
                rollouts = [RolloutSpec(policy=job.policy,
                                        config=config_map[job.config_name],
                                        mode=spec.mode, detail=job.detail,
                                        max_records=self.max_records)
                            for job, _trace, _desc, _engine in group_pending]
                results = BatchSimulator(shared_trace).run(rollouts)
            else:
                results = [engine.run(trace, job.policy)
                           for job, trace, _desc, engine in group_pending]
            # Install via put_*, which persists to the store exactly as
            # get_entry's miss path would.
            for (job, trace, description, engine), result in zip(
                    group_pending, results):
                tally["simulations_run"] += 1
                if job.detail == "full":
                    from repro.tracedb.database import make_entry
                    entry = make_entry(result,
                                       workload_description=description)
                    cache.put_entry(engine, trace, job.policy, description,
                                    entry)
                    outputs[job.key] = self._row_from_entry(job, entry)
                else:
                    cache.put_result(engine, trace, job.policy, result)
                    outputs[job.key] = self._row_from_result(job, result)
                advance()

        for group, group_pending in pending.items():
            config_name, detail = group
            engine = engines[group]
            simulator = ParallelSimulator(
                jobs=self.jobs, executor=self.executor,
                config=config_map[config_name], mode=spec.mode,
                max_records=self.max_records, detail=detail)
            # Ingested traces ship to workers verbatim (a spawned worker
            # cannot regenerate a trace that only exists in this process's
            # registry); synthetic jobs regenerate in-worker as before.
            simulation_jobs = [
                SimulationJob(workload=job.workload, policy=job.policy,
                              num_accesses=job.num_accesses, seed=job.seed,
                              description=description,
                              trace=(trace if workload_kind(job.workload)
                                     == "ingested" else None))
                for job, trace, description in group_pending
            ]
            if detail == "full":
                produced = simulator.run_entries(simulation_jobs)
            else:
                produced = simulator.run_results(simulation_jobs)
            for (job, trace, description), item in zip(group_pending,
                                                       produced):
                tally["simulations_run"] += 1
                if detail == "full":
                    cache.put_entry(engine, trace, job.policy, description,
                                    item)
                    outputs[job.key] = self._row_from_entry(job, item)
                else:
                    cache.put_result(engine, trace, job.policy, item)
                    outputs[job.key] = self._row_from_result(job, item)
                advance()
        return outputs

    # ------------------------------------------------------------------
    @staticmethod
    def _axis_values(job: PlannedJob) -> Dict[str, Any]:
        return {"workload": job.workload, "policy": job.policy,
                "config": job.config_name, "detail": job.detail,
                "num_accesses": job.num_accesses, "seed": job.seed}

    @classmethod
    def _row_from_entry(cls, job: PlannedJob, entry) -> Dict[str, Any]:
        """Cell values for a full-detail job, from its database entry.

        Rates come from ``entry.statistics`` and IPC from
        ``entry.result.ipc`` — the exact expressions
        ``CacheMind.compare_policies`` reads, so experiment cells and
        session tables agree to the last bit.
        """
        stats = entry.statistics
        result = entry.result
        row = cls._axis_values(job)
        row.update({
            "miss_rate": stats.miss_rate,
            "hit_rate": stats.hit_rate,
            "ipc": result.ipc if result is not None else 0.0,
            "accesses": stats.total_accesses,
            "hits": stats.total_accesses - stats.total_misses,
            "misses": stats.total_misses,
            "evictions": stats.total_evictions,
            "instructions": (result.timing.instructions
                             if result is not None else 0),
            "cycles": result.timing.cycles if result is not None else 0.0,
        })
        return row

    @classmethod
    def _row_from_result(cls, job: PlannedJob, result) -> Dict[str, Any]:
        """Cell values for a stats-detail job, from the raw LLC counters."""
        llc = result.llc_stats
        row = cls._axis_values(job)
        row.update({
            "miss_rate": llc.miss_rate,
            "hit_rate": llc.hit_rate,
            "ipc": result.ipc,
            "accesses": llc.accesses,
            "hits": llc.hits,
            "misses": llc.misses,
            "evictions": llc.evictions,
            "instructions": result.timing.instructions,
            "cycles": result.timing.cycles,
        })
        return row


def run_experiment(spec: Union[ExperimentSpec, Dict[str, Any]],
                   simulation_cache=None, jobs: int = 1,
                   executor: str = "auto",
                   max_records: Optional[int] = None,
                   strategy: str = "auto",
                   progress: Optional[ProgressCallback] = None
                   ) -> ExperimentResult:
    """Module-level convenience: compile and execute one spec."""
    runner = ExperimentRunner(simulation_cache=simulation_cache, jobs=jobs,
                              executor=executor, max_records=max_records,
                              strategy=strategy)
    return runner.run(spec, progress=progress)
