"""The CacheMind session facade: one object from question to grounded answer.

This module is the public seam over the whole reproduction.  A
:class:`CacheMind` session owns

* a lazily built :class:`~repro.tracedb.database.TraceDatabase` whose
  underlying simulations are memoised in a process-wide
  :class:`SimulationCache` (repeated sessions over the same
  ``(workload, policy, config)`` tuples never re-simulate),
* a :class:`~repro.core.query.QueryParser` shared with the retrievers,
* one retriever per registered strategy, constructed on first use, with
  intent-based routing: Sieve for trace-grounded lookups, Ranger for
  exact-computation categories (counts, arithmetic, code generation), the
  embedding baseline as the fallback,
* a pluggable LLM backend (any registered name or
  :class:`~repro.llm.backend.LLMBackend` instance) driving the
  :class:`~repro.core.generate.AnswerGenerator`,
* conversation memory threaded into every generator prompt.

Asking is the explicit three-stage serving API (``repro.core.plan``):
requests are planned (:meth:`CacheMind.plan` — parsed intent, retriever
route, the exact simulation jobs required), batches are merged so duplicate
jobs simulate once, and execution emits :class:`AskResponse` envelopes with
per-stage timings (:meth:`CacheMind.ask_request_many`).  The legacy
:meth:`CacheMind.ask`/:meth:`ask_many` delegate to that path with
byte-identical answers, and ``repro.serve`` puts a thread-safe service, an
asyncio front-end and a JSON-lines server on top of it (the
asynchronous/batched serving direction of Kinsy et al.).

    >>> from repro import CacheMind
    >>> session = CacheMind(workloads=["astar"], policies=["lru", "belady"])
    >>> answer = session.ask("What is the miss rate of lru on astar?")
"""

from __future__ import annotations

import os
import threading
import time
import warnings
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.answer import Answer, AskResponse
from repro.core.experiment import (
    LOWER_IS_BETTER_METRICS,
    ExperimentResult,
    ExperimentRunner,
    ExperimentSpec,
    ProgressCallback,
    as_experiment_spec,
)
from repro.core.generate import AnswerGenerator
from repro.core.plan import (
    AskRequest,
    PlannedJob,
    QueryPlan,
    QueryPlanner,
    as_request,
)
from repro.core.query import (
    ARITHMETIC,
    CODE_GENERATION,
    COUNT,
    HIT_MISS,
    MISS_RATE,
    PC_LIST,
    POLICY_ANALYSIS,
    POLICY_COMPARISON,
    QueryIntent,
    QueryParser,
    SEMANTIC_ANALYSIS,
    SET_ANALYSIS,
    TRICK,
    WORKLOAD_ANALYSIS,
)
from repro.errors import StoreReadOnlyError, UnknownNameError
from repro.llm.backend import LLMBackend, get_backend
from repro.llm.memory import ConversationMemory
from repro.retrieval.base import Retriever, get_retriever, resolve_retriever_name
from repro.sim.config import HierarchyConfig, SMALL_CONFIG
from repro.sim.engine import (SimulationEngine, SimulationResult, TraceReuse,
                              compute_full_reuse, compute_next_use)
from repro.sim.parallel import ParallelSimulator, SimulationJob
from repro.tracedb.database import (
    DEFAULT_POLICIES,
    DEFAULT_WORKLOADS,
    TraceDatabase,
    TraceEntry,
    make_entry,
)
from repro.tracedb.store import StoreCorruptionWarning, TraceStore, simulation_key
from repro.workloads.generator import get_workload, workload_kind
from repro.workloads.ingest import ensure_store_traces_registered
from repro.workloads.trace import MemoryTrace

# LOWER_IS_BETTER_METRICS lives in repro.core.experiment (the experiment
# views need it too) and is re-exported here for existing callers.

#: question types answered by exact computation over the store (Ranger).
RANGER_TYPES = (COUNT, ARITHMETIC, CODE_GENERATION, PC_LIST, SET_ANALYSIS)
#: trace-grounded types answered from Sieve's structured bundle.
SIEVE_TYPES = (HIT_MISS, MISS_RATE, POLICY_COMPARISON, TRICK,
               POLICY_ANALYSIS, WORKLOAD_ANALYSIS, SEMANTIC_ANALYSIS)


# ----------------------------------------------------------------------
# simulation memoisation
# ----------------------------------------------------------------------
class SimulationCache:
    """Process-wide memoiser for simulation runs and generated traces.

    Keys cover everything that determines a run's output: workload, policy,
    the (hashable, frozen) hierarchy config, engine mode, trace length, seed
    and the record cap.  ``hits``/``misses`` are exposed so callers and tests
    can verify that repeated sessions reuse prior work; the counters and
    :meth:`stats` read under the cache lock, so concurrent serving threads
    never observe a torn snapshot.

    With a ``store`` (a :class:`~repro.tracedb.store.TraceStore` or a
    directory path), memoisation extends across processes: in-memory misses
    fall through to the on-disk store before simulating, and freshly
    computed results/entries are persisted, so a warm session in a new
    process runs zero simulations.  Store loads count as ``hits`` (an
    avoided simulation) and additionally as ``store_hits``.
    """

    def __init__(self, max_entries: int = 256,
                 store: Union[TraceStore, str, None] = None) -> None:
        # OrderedDicts with LRU eviction: the cache is process-wide and
        # simulation results are large, so a sweep over many seeds or trace
        # lengths must not grow memory without bound.
        self.max_entries = max_entries
        self.store = (TraceStore(store) if isinstance(store, str) else store)
        self._results: "OrderedDict[tuple, SimulationResult]" = OrderedDict()
        self._entries: "OrderedDict[tuple, TraceEntry]" = OrderedDict()
        self._traces: "OrderedDict[tuple, Tuple[MemoryTrace, str]]" = OrderedDict()
        self._reuse: "OrderedDict[tuple, TraceReuse]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._store_hits = 0

    # Counter reads take the lock: a lone int read is atomic in CPython, but
    # serving threads read these while workers increment them, and the
    # locked read keeps hits/misses/store_hits mutually consistent with the
    # maps (and honest on GILless builds).  Internal code that already
    # holds the lock must touch the underscored fields directly.
    @property
    def hits(self) -> int:
        with self._lock:
            return self._hits

    @property
    def misses(self) -> int:
        with self._lock:
            return self._misses

    @property
    def store_hits(self) -> int:
        with self._lock:
            return self._store_hits

    def _put(self, store: "OrderedDict", key: tuple, value) -> None:
        """Insert under the LRU bound (caller holds the lock)."""
        store.setdefault(key, value)
        store.move_to_end(key)
        while len(store) > self.max_entries:
            store.popitem(last=False)

    def _get(self, store: "OrderedDict", key: tuple):
        """LRU-aware lookup (caller holds the lock)."""
        value = store.get(key)
        if value is not None:
            store.move_to_end(key)
        return value

    # ------------------------------------------------------------------
    def get_trace(self, workload: str, num_accesses: int,
                  seed: int) -> Tuple[MemoryTrace, str]:
        """Generate (or reuse) a workload trace; returns (trace, description).

        The returned trace is the shared cached object: treat it as
        immutable.  To modify it, work on a copy (``copy.deepcopy(trace)``,
        or a ``slice()`` — zero-copy views copy-on-write before any
        mutation), or every later session with the same key sees the
        mutation.
        """
        key = (workload, num_accesses, seed)
        with self._lock:
            cached = self._get(self._traces, key)
        if cached is not None:
            return cached
        # Generated outside the lock: concurrent first-builds of the same key
        # may duplicate this (benign, keyed by value) rather than serialise
        # every other caller behind one generation.
        try:
            generator = get_workload(workload, seed=seed)
        except UnknownNameError:
            # An ingested trace imported by a *previous* process lives in
            # the store manifest but not in this process's registry yet.
            if self.store is None:
                raise
            ensure_store_traces_registered(self.store)
            generator = get_workload(workload, seed=seed)
        trace = generator.generate(num_accesses)
        value = (trace, generator.description)
        with self._lock:
            self._put(self._traces, key, value)
        return value

    # ------------------------------------------------------------------
    def reuse_for(self, trace: MemoryTrace, block_bytes: int,
                  full: bool = False) -> TraceReuse:
        """Memoised oracle reuse precompute, keyed by trace fingerprint.

        ``full=False`` returns just the next-use column (the stats replay's
        need); ``full=True`` also carries prev-use and per-block position
        lists (the full-detail replay's need) and upgrades an existing
        stats-only entry in place.  The arrays are pure functions of
        ``(trace content, block_bytes)``, so every belady/oracle cell over
        the same trace — batch or single replay — shares one computation.
        Engines built by this cache get this method as their
        ``reuse_cache`` hook.
        """
        key = (trace.fingerprint(), block_bytes)
        with self._lock:
            cached = self._get(self._reuse, key)
        if cached is not None and (not full or cached.prev_use is not None):
            return cached
        addresses = trace.columns()[1]
        if full:
            reuse = compute_full_reuse(addresses, block_bytes)
        else:
            reuse = TraceReuse(next_use=compute_next_use(addresses,
                                                         block_bytes))
        with self._lock:
            # Re-check under the lock: never downgrade a full entry a
            # concurrent caller installed while we computed.
            cached = self._get(self._reuse, key)
            if cached is not None and (not full
                                       or cached.prev_use is not None):
                return cached
            self._reuse[key] = reuse
            self._reuse.move_to_end(key)
            while len(self._reuse) > self.max_entries:
                self._reuse.popitem(last=False)
        return reuse

    @staticmethod
    def _key(engine: SimulationEngine, trace: MemoryTrace,
             policy_name: str) -> tuple:
        # Shared with the on-disk store so both layers agree on identity
        # (content fingerprint, config, mode, detail, record cap, ...).
        return simulation_key(engine, trace, policy_name)

    @staticmethod
    def _store_save(save, *args) -> None:
        """Persist a record, degrading to a warning on I/O failure.

        The store is an accelerator, not the source of truth: a full disk
        or injected write fault must not fail the request whose result is
        already computed and memoised in memory.
        """
        try:
            save(*args)
        except StoreReadOnlyError:
            # A read-only mount means "serve warm, don't persist" — the
            # deliberate configuration for replicas sharing one corpus, so
            # not even worth a warning per record.
            pass
        except OSError as error:
            warnings.warn(
                f"trace store write failed ({error!r}); continuing without "
                f"persistence for this record",
                StoreCorruptionWarning, stacklevel=3)

    def _install_entry(self, sim_key: tuple, entry_key: tuple,
                       entry: "TraceEntry") -> None:
        """Memoise a loaded/computed entry plus its embedded result
        (caller must NOT hold the lock)."""
        with self._lock:
            if entry.result is not None:
                self._put(self._results, sim_key, entry.result)
            self._put(self._entries, entry_key, entry)

    def get_or_run(self, engine: SimulationEngine, trace: MemoryTrace,
                   policy_name: str) -> SimulationResult:
        """Run ``trace`` under ``policy_name``, reusing a memoised result.

        Lookup order: in-memory, then the on-disk store (if attached), then
        a real simulation (whose result is persisted).
        """
        key = self._key(engine, trace, policy_name)
        with self._lock:
            result = self._get(self._results, key)
            if result is not None:
                self._hits += 1
                return result
        if self.store is not None:
            result = self.store.load_result(key)
            if result is not None:
                with self._lock:
                    self._put(self._results, key, result)
                    self._hits += 1
                    self._store_hits += 1
                return result
        if engine.reuse_cache is None:
            # Oracle cells over the same trace then share one reuse
            # precompute, keyed by content fingerprint.
            engine.reuse_cache = self.reuse_for
        result = engine.run(trace, policy_name)
        with self._lock:
            self._put(self._results, key, result)
            self._misses += 1
        if self.store is not None:
            self._store_save(self.store.save_result, key, result)
        return result

    def lookup_result(self, engine: SimulationEngine, trace: MemoryTrace,
                      policy_name: str
                      ) -> Tuple[Optional[SimulationResult], str]:
        """``(result, origin)`` without simulating: origin is ``"memory"``,
        ``"store"`` or ``"miss"`` (result is ``None`` only for a miss).

        The provenance lets callers keep their own hit/store-hit counters —
        the experiment runner needs counts that stay honest while other
        threads share this cache, which a before/after delta of the global
        counters cannot provide.
        """
        key = self._key(engine, trace, policy_name)
        with self._lock:
            result = self._get(self._results, key)
            if result is not None:
                self._hits += 1
                return result, "memory"
        if self.store is not None:
            result = self.store.load_result(key)
            if result is not None:
                with self._lock:
                    self._put(self._results, key, result)
                    self._hits += 1
                    self._store_hits += 1
                return result, "store"
        return None, "miss"

    def peek_result(self, engine: SimulationEngine, trace: MemoryTrace,
                    policy_name: str) -> Optional[SimulationResult]:
        """A memoised result if present, else ``None`` (never simulates).

        The bare-result counterpart of :meth:`peek_entry`, for callers that
        do not need the :meth:`lookup_result` provenance.
        """
        return self.lookup_result(engine, trace, policy_name)[0]

    def put_result(self, engine: SimulationEngine, trace: MemoryTrace,
                   policy_name: str, result: SimulationResult) -> None:
        """Install an externally computed result (e.g. from a worker).

        Counts as one miss — the simulation genuinely ran, just not through
        :meth:`get_or_run` — mirroring :meth:`put_entry`.  With a store
        attached the result is persisted for future processes.
        """
        key = self._key(engine, trace, policy_name)
        with self._lock:
            self._put(self._results, key, result)
            self._misses += 1
        if self.store is not None:
            self._store_save(self.store.save_result, key, result)

    def get_entry(self, engine: SimulationEngine, trace: MemoryTrace,
                  policy_name: str, description: str = "") -> "TraceEntry":
        """A memoised database entry (simulation + derived table/statistics).

        The table conversion and whole-trace statistics dominate repeat
        session builds once the simulation itself is cached, so the derived
        :class:`TraceEntry` is memoised under the same key — in memory and,
        when a store is attached, on disk.  A fresh computation persists
        both records (the entry *and* the bare result), so a later
        :meth:`get_or_run` in a brand-new process is warm too.
        """
        sim_key = self._key(engine, trace, policy_name)
        key = sim_key + (description,)
        with self._lock:
            entry = self._get(self._entries, key)
            if entry is not None:
                # An entry hit is an avoided simulation: count it so the
                # hit/miss counters keep describing simulation reuse.
                self._hits += 1
                return entry
        if self.store is not None:
            entry = self.store.load_entry(key)
            if entry is not None:
                self._install_entry(sim_key, key, entry)
                with self._lock:
                    self._hits += 1
                    self._store_hits += 1
                return entry
        result = self.get_or_run(engine, trace, policy_name)
        entry = make_entry(result, workload_description=description)
        with self._lock:
            self._put(self._entries, key, entry)
        if self.store is not None:
            self._store_save(self.store.save_entry, key, entry)
        return entry

    def lookup_entry(self, engine: SimulationEngine, trace: MemoryTrace,
                     policy_name: str, description: str = ""
                     ) -> Tuple[Optional["TraceEntry"], str]:
        """``(entry, origin)`` without simulating — the entry counterpart of
        :meth:`lookup_result` (origin: ``"memory"``/``"store"``/``"miss"``).
        A found entry counts as a hit, mirroring :meth:`get_entry`."""
        sim_key = self._key(engine, trace, policy_name)
        key = sim_key + (description,)
        with self._lock:
            entry = self._get(self._entries, key)
            if entry is not None:
                self._hits += 1
                return entry, "memory"
        if self.store is not None:
            entry = self.store.load_entry(key)
            if entry is not None:
                self._install_entry(sim_key, key, entry)
                with self._lock:
                    self._hits += 1
                    self._store_hits += 1
                return entry, "store"
        return None, "miss"

    def peek_entry(self, engine: SimulationEngine, trace: MemoryTrace,
                   policy_name: str,
                   description: str = "") -> Optional["TraceEntry"]:
        """A memoised entry if present, else ``None`` (never simulates).

        Used by parallel database builds to dispatch only the cache misses
        to workers; consults the on-disk store after the in-memory maps.
        """
        return self.lookup_entry(engine, trace, policy_name,
                                 description=description)[0]

    def put_entry(self, engine: SimulationEngine, trace: MemoryTrace,
                  policy_name: str, description: str,
                  entry: "TraceEntry") -> None:
        """Install an externally computed entry (e.g. from a worker process).

        Counts as one miss: the simulation genuinely ran, just not through
        :meth:`get_or_run`.  The embedded result is memoised too, so later
        :meth:`get_or_run` calls for the same key are hits.  With a store
        attached, both records are persisted for future processes.
        """
        key = self._key(engine, trace, policy_name)
        with self._lock:
            if entry.result is not None:
                self._put(self._results, key, entry.result)
            self._put(self._entries, key + (description,), entry)
            self._misses += 1
        if self.store is not None:
            self._store_save(self.store.save_entry, key + (description,), entry)
            if entry.result is not None:
                self._store_save(self.store.save_result, key, entry.result)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._results)

    def stats(self) -> Dict[str, int]:
        """One consistent snapshot of sizes and counters, taken under the
        lock (concurrent serving threads otherwise race the increments)."""
        with self._lock:
            return {"results": len(self._results),
                    "derived_entries": len(self._entries),
                    "traces": len(self._traces),
                    "reuse": len(self._reuse),
                    "hits": self._hits, "misses": self._misses,
                    "store_hits": self._store_hits}

    def clear(self) -> None:
        """Drop the in-memory maps and counters (the on-disk store, if any,
        is left intact — use ``store.clear()`` to wipe it)."""
        with self._lock:
            self._results.clear()
            self._entries.clear()
            self._traces.clear()
            self._reuse.clear()
            self._hits = 0
            self._misses = 0
            self._store_hits = 0


#: default process-wide cache shared by every session.
SIMULATION_CACHE = SimulationCache()


# ----------------------------------------------------------------------
# the facade
# ----------------------------------------------------------------------
class CacheMind:
    """End-to-end session: workloads + policies + backend -> answers."""

    #: answer-history bound: a long-running serving session answers
    #: indefinitely, and Answer objects (evidence lists, extras) are large
    #: enough that an unbounded list would grow for the server's lifetime.
    MAX_HISTORY = 1024

    def __init__(self,
                 workloads: Sequence[str] = DEFAULT_WORKLOADS,
                 policies: Sequence[str] = DEFAULT_POLICIES,
                 num_accesses: int = 20000,
                 config: HierarchyConfig = SMALL_CONFIG,
                 mode: str = "llc_only",
                 seed: int = 0,
                 backend: Union[str, LLMBackend] = "gpt-4o",
                 prompting: str = "zero_shot",
                 retriever: Union[str, Retriever, None] = None,
                 max_records: Optional[int] = None,
                 simulation_cache: Optional[SimulationCache] = None,
                 jobs: int = 1,
                 executor: str = "auto",
                 store_dir: Optional[str] = None,
                 store_read_only: bool = False):
        if not workloads:
            raise ValueError("CacheMind needs at least one workload")
        if not policies:
            raise ValueError("CacheMind needs at least one policy")
        self.workloads = tuple(workloads)
        self.policies = tuple(policies)
        self.num_accesses = num_accesses
        self.config = config
        self.mode = mode
        self.seed = seed
        self.prompting = prompting
        self.max_records = max_records
        # jobs > 1 fans database-build simulations out over worker processes
        # (see _build_database); only cache misses are dispatched.
        self.jobs = max(1, int(jobs))
        self.executor = executor
        # store_dir attaches a persistent on-disk store so repeated sessions
        # (and parallel workers) start warm across processes.  With an
        # explicit simulation_cache the store is attached to it (unless it
        # already has one); otherwise a private store-backed cache is used
        # rather than mutating the process-wide singleton.
        # store_read_only mounts that store without write access — the
        # replica configuration: many sessions share one warm corpus a
        # single writer maintains; nothing this session computes is
        # persisted back.
        self.store_dir = store_dir
        self.store_read_only = store_read_only
        if store_read_only and store_dir is None:
            raise ValueError("store_read_only=True requires store_dir")
        if simulation_cache is not None:
            self.simulation_cache = simulation_cache
            if store_dir is not None:
                if self.simulation_cache.store is None:
                    self.simulation_cache.store = TraceStore(
                        store_dir, read_only=store_read_only)
                elif (os.path.abspath(self.simulation_cache.store.root)
                      != os.path.abspath(os.fspath(store_dir))):
                    # Silently persisting to a different directory than the
                    # caller named would strand their store_dir cold.
                    raise ValueError(
                        f"simulation_cache already persists to "
                        f"{self.simulation_cache.store.root!r}; cannot also "
                        f"attach store_dir={store_dir!r}")
        elif store_dir is not None:
            self.simulation_cache = SimulationCache(
                store=TraceStore(store_dir, read_only=store_read_only))
        else:
            self.simulation_cache = SIMULATION_CACHE
        # get_backend passes instances through; lenient=True drops the
        # always-offered seed/prompting for factories not declaring them.
        self.backend = get_backend(backend, lenient=True, seed=seed,
                                   prompting=prompting)
        self.generator = AnswerGenerator(self.backend, prompting=prompting)
        self.memory = ConversationMemory()
        self.parser = QueryParser(known_workloads=self.workloads,
                                  known_policies=self.policies)
        self.history: List[Answer] = []
        self.database_builds = 0
        # Validate a forced retriever name eagerly (like the backend) so a
        # typo errors before the expensive database build.
        if isinstance(retriever, str):
            resolve_retriever_name(retriever)
        self._forced_retriever = retriever
        # The planner shares the session parser and routing function; its
        # matrix_jobs() is the single source of truth for which simulations
        # a database build (and therefore every plan) depends on.
        self.planner = QueryPlanner(
            parser=self.parser, router=self.route,
            workloads=self.workloads, policies=self.policies,
            num_accesses=self.num_accesses, seed=self.seed,
            config_name=self.config.name, mode=self.mode,
            forced_retriever=self._forced_retriever)
        self._database: Optional[TraceDatabase] = None
        self._retrievers: Dict[str, Retriever] = {}
        # Experiment bookkeeping: how many sweeps ran through this session
        # and which hierarchy configurations they touched (describe()
        # reports these — the session is no longer pinned to one config).
        # Guarded by a lock: the serving layer runs sweeps concurrently
        # outside its serving lock, so these read-modify-writes would
        # otherwise interleave.
        self.experiments_run = 0
        self._experiment_configs: Dict[str, HierarchyConfig] = {}
        self._experiment_state_lock = threading.Lock()

    # ------------------------------------------------------------------
    # database lifecycle
    # ------------------------------------------------------------------
    @property
    def database(self) -> TraceDatabase:
        """The trace database, built on first use and then reused."""
        if self._database is None:
            self._database = self._build_database()
        return self._database

    def _build_database(self) -> TraceDatabase:
        return self._database_from_jobs(self.planner.matrix_jobs())

    def _database_from_jobs(self,
                            planned: Sequence[PlannedJob]) -> TraceDatabase:
        """Execute ``planned`` and assemble the entries into a database."""
        database = TraceDatabase(config=self.config)
        for entry in self._execute_planned_jobs(planned):
            database.install_entry(entry)
        self.database_builds += 1
        return database

    def _execute_planned_jobs(
            self, planned: Sequence[PlannedJob]) -> List[TraceEntry]:
        """Run every planned job through the memoiser, in plan order.

        This is the single execution path under both the legacy database
        build and the plan/execute serving API: serial runs flow through
        :meth:`SimulationCache.get_entry`, and with ``jobs > 1`` only the
        cache misses fan out to :class:`ParallelSimulator` workers before
        the returned entries land back in the shared memoiser — parallelism
        and memoisation compose (a second session re-simulates nothing).
        """
        engine = SimulationEngine(config=self.config, mode=self.mode,
                                  max_records=self.max_records)
        entries: Dict[tuple, TraceEntry] = {}
        pending: List[Tuple[PlannedJob, MemoryTrace, str]] = []
        dispatched = set()
        for job in planned:
            # Duplicate keys execute once even when the caller skipped
            # merge_jobs (covers completed entries and still-pending ones).
            if job.key in entries or job.key in dispatched:
                continue
            dispatched.add(job.key)
            if (job.config_name != self.config.name
                    or job.mode != self.mode):
                # Executing a foreign-config job under this session's engine
                # would silently produce results for the wrong hierarchy.
                raise ValueError(
                    f"planned job {job!r} targets config/mode "
                    f"({job.config_name!r}, {job.mode!r}); this session runs "
                    f"({self.config.name!r}, {self.mode!r})")
            trace, description = self.simulation_cache.get_trace(
                job.workload, job.num_accesses, job.seed)
            if self.jobs > 1:
                entry = self.simulation_cache.peek_entry(
                    engine, trace, job.policy, description=description)
                if entry is None:
                    pending.append((job, trace, description))
                    continue
            else:
                entry = self.simulation_cache.get_entry(
                    engine, trace, job.policy, description=description)
            entries[job.key] = entry
        if pending:
            simulator = ParallelSimulator(
                jobs=self.jobs, executor=self.executor, config=self.config,
                mode=self.mode, max_records=self.max_records)
            # trace=None: workers regenerate the identical trace from
            # (workload, num_accesses, seed) — crc32-seeded generators are
            # process-independent — which keeps the pickled payload to a few
            # strings per job instead of one full trace copy per policy.
            # Ingested traces are the exception: spawned workers cannot
            # regenerate a trace that exists only in this process's registry
            # (or a store manifest), so those jobs ship the trace itself.
            simulation_jobs = [
                SimulationJob(workload=trace.workload, policy=job.policy,
                              num_accesses=job.num_accesses, seed=job.seed,
                              description=description,
                              trace=(trace if workload_kind(trace.workload)
                                     == "ingested" else None))
                for job, trace, description in pending
            ]
            for (job, trace, description), entry in zip(
                    pending, simulator.run_entries(simulation_jobs)):
                self.simulation_cache.put_entry(engine, trace, job.policy,
                                                description, entry)
                entries[job.key] = entry
        return [entries[job.key] for job in planned]

    def simulate(self, workload: str, policy: str) -> SimulationResult:
        """One memoised simulation run (shares the session's cache)."""
        engine = SimulationEngine(config=self.config, mode=self.mode,
                                  max_records=self.max_records)
        trace, _description = self.simulation_cache.get_trace(
            workload, self.num_accesses, self.seed)
        return self.simulation_cache.get_or_run(engine, trace, policy)

    # ------------------------------------------------------------------
    # retriever routing
    # ------------------------------------------------------------------
    @staticmethod
    def route(intent: QueryIntent) -> str:
        """Retriever name for a parsed intent (the dual-retrieval split)."""
        if intent.question_type in RANGER_TYPES:
            return "ranger"
        if intent.question_type in SIEVE_TYPES:
            return "sieve"
        return "embedding"

    def retriever(self, name_or_instance: Union[str, Retriever]) -> Retriever:
        """A per-session retriever instance, constructed on first use."""
        if isinstance(name_or_instance, Retriever):
            return name_or_instance
        # Resolve aliases before the cache lookup so 'baseline' after
        # 'embedding' reuses the (expensively indexed) same instance.
        name = resolve_retriever_name(name_or_instance)
        if name not in self._retrievers:
            # Ranger's code generation is driven by the session backend so
            # cross-backend benchmarks exercise per-backend codegen skill.
            kwargs = {"code_llm": self.backend} if name == "ranger" else {}
            self._retrievers[name] = get_retriever(name, self.database, **kwargs)
        return self._retrievers[name]

    # ------------------------------------------------------------------
    # asking questions: request -> plan -> execute -> response
    # ------------------------------------------------------------------
    def plan(self, request_or_question: Union[str, AskRequest]) -> QueryPlan:
        """Plan one request without executing anything (pure description)."""
        return self.planner.plan(request_or_question)

    def ask(self, question: str,
            retriever: Union[str, Retriever, None] = None) -> Answer:
        """Answer one natural-language question with provenance.

        Thin wrapper over the plan/execute path (:meth:`ask_request`); the
        returned :class:`Answer` is byte-identical to what the serving
        layers produce for the same question.
        """
        return self.ask_request(
            AskRequest(question=question, retriever=retriever)).answer

    def ask_many(self, questions: Iterable[str],
                 retriever: Union[str, Retriever, None] = None) -> List[Answer]:
        """Answer a batch of questions over one shared database build."""
        requests = [as_request(question, retriever=retriever)
                    for question in questions]
        return [response.answer
                for response in self.ask_request_many(requests)]

    def ask_request(self,
                    request: Union[str, AskRequest]) -> AskResponse:
        """Plan and execute one request; returns the full response envelope
        (answer + route + job/dedup counts + per-stage timings)."""
        return self.ask_request_many([as_request(request)])[0]

    def ask_request_many(self, requests: Sequence[Union[str, AskRequest]]
                         ) -> List[AskResponse]:
        """The batched serving path: plan everything, merge duplicate
        simulation jobs, execute once, then generate every answer."""
        plans: List[QueryPlan] = []
        plan_seconds: List[float] = []
        for request in requests:
            started = time.perf_counter()
            plans.append(self.planner.plan(as_request(request)))
            plan_seconds.append(time.perf_counter() - started)
        return self.execute_many(plans, plan_seconds=plan_seconds)

    def execute(self, plan: QueryPlan) -> AskResponse:
        """Execute one previously built plan."""
        return self.execute_many([plan])[0]

    def execute_many(self, plans: Sequence[QueryPlan],
                     plan_seconds: Optional[Sequence[float]] = None
                     ) -> List[AskResponse]:
        """Execute a batch of plans over one shared simulation pass.

        The batch's job sets are merged first
        (:meth:`QueryPlanner.merge_jobs`), so duplicate ``(workload,
        policy, config, detail)`` jobs simulate exactly once regardless of
        how many plans name them; the merged set is dispatched through the
        existing :class:`ParallelSimulator`/store machinery before any
        answer is generated.  Answers are then produced sequentially in
        plan order (conversation memory is order-sensitive).
        """
        merged = self.planner.merge_jobs(plans)
        simulate_started = time.perf_counter()
        misses_before = self.simulation_cache.stats()["misses"]
        if plans:
            if self._database is None:
                matrix_keys = {job.key for job in self.planner.matrix_jobs()}
                if {job.key for job in merged} >= matrix_keys:
                    # The common case: the merged batch covers the session
                    # matrix, so executing it IS the database build.
                    self._database = self._database_from_jobs(merged)
                else:
                    # Hand-built plans with a narrower job set: honour
                    # their jobs first, then complete the database
                    # (already-executed jobs are cache hits, never
                    # re-simulated).
                    self._execute_planned_jobs(merged)
                    _ = self.database
            else:
                # Warm session: the batch's jobs must still be honoured —
                # planner-emitted jobs are all memoiser hits (cheap
                # lookups), but a hand-built plan naming an unexecuted or
                # foreign-config job runs (or raises) here exactly like it
                # would on a cold session.
                self._execute_planned_jobs(merged)
        simulate_seconds = time.perf_counter() - simulate_started
        simulations = self.simulation_cache.stats()["misses"] - misses_before
        duplicates = sum(len(plan.jobs) for plan in plans) - len(merged)
        # The simulation pass is shared by the whole batch: each response
        # carries its amortised share as "simulate" (so per-request totals
        # sum to the wall time and latency percentiles stay honest) and the
        # full batch cost as "batch_simulate".
        simulate_share = simulate_seconds / len(plans) if plans else 0.0
        responses = []
        for index, plan in enumerate(plans):
            planned_seconds = (plan_seconds[index]
                               if plan_seconds is not None else 0.0)
            responses.append(self._respond(
                plan, plan_seconds=planned_seconds,
                simulate_seconds=simulate_share,
                batch_simulate_seconds=simulate_seconds,
                batch_unique_jobs=len(merged),
                batch_duplicate_jobs=duplicates,
                simulations_run=simulations))
        return responses

    def _respond(self, plan: QueryPlan, *, plan_seconds: float,
                 simulate_seconds: float, batch_simulate_seconds: float,
                 batch_unique_jobs: int, batch_duplicate_jobs: int,
                 simulations_run: int) -> AskResponse:
        """Retrieve + generate for one executed plan (the legacy ``ask``
        body, emitting the response envelope)."""
        generate_started = time.perf_counter()
        selected = self.retriever(plan.retriever_instance
                                  if plan.retriever_instance is not None
                                  else plan.route)
        context = selected.retrieve(plan.intent)
        retrieve_seconds = time.perf_counter() - generate_started
        question = plan.request.question
        memory_block = (self.memory.context_block(question)
                        if len(self.memory) else "")
        answer = self.generator.generate(plan.intent, context,
                                         memory_block=memory_block)
        self.memory.add_turn("user", question)
        self.memory.add_turn("assistant", answer.text,
                             metadata={"category": answer.category})
        self.history.append(answer)
        if len(self.history) > self.MAX_HISTORY:
            del self.history[: len(self.history) - self.MAX_HISTORY]
        generate_seconds = (time.perf_counter() - generate_started
                            - retrieve_seconds)
        return AskResponse(
            answer=answer,
            request_id=plan.request.request_id,
            route=plan.route,
            question_type=plan.intent.question_type,
            intent=plan.intent.describe(),
            planned_jobs=len(plan.jobs),
            batch_unique_jobs=batch_unique_jobs,
            batch_duplicate_jobs=batch_duplicate_jobs,
            simulations_run=simulations_run,
            timings={
                "plan": plan_seconds,
                "simulate": simulate_seconds,
                "batch_simulate": batch_simulate_seconds,
                "retrieve": retrieve_seconds,
                "generate": generate_seconds,
                "total": (plan_seconds + simulate_seconds + retrieve_seconds
                          + generate_seconds),
            })

    # ------------------------------------------------------------------
    # experiments: declarative sweep grids over many configurations
    # ------------------------------------------------------------------
    def experiment_spec(self, **overrides) -> ExperimentSpec:
        """An :class:`ExperimentSpec` defaulting every axis from this
        session (workloads, policies, config, mode, trace length, seed);
        keyword overrides replace whole axes.

            >>> spec = session.experiment_spec(
            ...     configs=[session.config, "tiny"], seeds=[0, 1])
        """
        options: Dict[str, object] = dict(
            workloads=self.workloads, policies=self.policies,
            configs=(self.config,), mode=self.mode,
            num_accesses=(self.num_accesses,), seeds=(self.seed,))
        options.update(overrides)
        return ExperimentSpec(**options)

    def run_experiment(self, spec: Union[ExperimentSpec, Dict],
                       progress: Optional[ProgressCallback] = None
                       ) -> ExperimentResult:
        """Execute one declarative sweep grid through this session's cache.

        This lifts the one-config-per-session restriction: cells targeting
        configurations other than ``self.config`` route through the
        simulation memoiser (and its store, when attached) rather than the
        session database, so a multi-config grid never trips the
        foreign-config guard of the ask path.  Full-detail cells land in
        the same memoised entries a database build would use — a later
        ``ask`` over overlapping (workload, policy) pairs re-simulates
        nothing, and vice versa.  ``spec`` may be an
        :class:`ExperimentSpec` or its ``to_dict`` payload (the wire form).
        """
        spec = as_experiment_spec(spec)
        runner = ExperimentRunner(simulation_cache=self.simulation_cache,
                                  jobs=self.jobs, executor=self.executor,
                                  max_records=self.max_records)
        result = runner.run(spec, progress=progress)
        with self._experiment_state_lock:
            # The planner's merge counter doubles as the dedup probe for
            # experiments, exactly as it does for batched ask plans.
            self.planner.last_merged_job_count = result.counters[
                "unique_jobs"]
            self._experiment_configs.update(spec.config_map)
            self.experiments_run += 1
        return result

    # ------------------------------------------------------------------
    # batch analytics
    # ------------------------------------------------------------------
    def compare_policies(self, workload: Optional[str] = None,
                         policies: Optional[Sequence[str]] = None,
                         metric: str = "miss_rate"
                         ) -> Dict[str, Dict[str, float]]:
        """Per-workload ``{policy: metric}`` table.

        ``metric`` is one of ``miss_rate``, ``hit_rate`` or ``ipc``.  A
        narrowed comparison (one workload and/or a policy subset) on a cold
        session routes through the experiment executor and simulates only
        the selected cells — it no longer forces a full database build;
        the full-matrix call (and any call on a warm session) reads the
        session database as before.  Values are identical either way: both
        paths read the same memoised entries.
        """
        if metric not in ("miss_rate", "hit_rate", "ipc"):
            raise ValueError("metric must be 'miss_rate', 'hit_rate' or 'ipc'")
        selected_workloads = ([workload] if workload is not None
                              else list(self.workloads))
        selected_policies = list(policies) if policies is not None else list(
            self.policies)
        unknown = sorted(
            {name for name in selected_workloads
             if name not in self.workloads}
            | {name for name in selected_policies
               if name not in self.policies})
        if unknown:
            raise UnknownNameError(
                f"compare_policies covers this session's matrix only; "
                f"unknown: {', '.join(unknown)} (workloads: "
                f"{', '.join(self.workloads)}; policies: "
                f"{', '.join(self.policies)})")
        full_matrix = (set(selected_workloads) == set(self.workloads)
                       and set(selected_policies) == set(self.policies))
        if self._database is None and not full_matrix:
            result = self.run_experiment(self.experiment_spec(
                workloads=tuple(selected_workloads),
                policies=tuple(selected_policies), metrics=(metric,)))
            return {
                workload_name: {
                    policy_name: result.value(metric,
                                              workload=workload_name,
                                              policy=policy_name)
                    for policy_name in selected_policies}
                for workload_name in selected_workloads}
        database = self.database
        table: Dict[str, Dict[str, float]] = {}
        for workload_name in selected_workloads:
            row: Dict[str, float] = {}
            for policy_name in selected_policies:
                entry = database.get(workload_name, policy_name)
                if metric == "ipc":
                    row[policy_name] = (entry.result.ipc
                                        if entry.result is not None else 0.0)
                elif metric == "hit_rate":
                    row[policy_name] = entry.statistics.hit_rate
                else:
                    row[policy_name] = entry.statistics.miss_rate
            table[workload_name] = row
        return table

    def best_policy(self, workload: str,
                    metric: str = "miss_rate") -> Tuple[str, float]:
        """The winning policy for one workload (lowest miss rate / highest
        hit rate or IPC)."""
        row = self.compare_policies(workload=workload, metric=metric)[workload]
        chooser = min if metric in LOWER_IS_BETTER_METRICS else max
        name = chooser(row, key=row.get)
        return name, row[name]

    # ------------------------------------------------------------------
    def describe(self) -> str:
        lines = [
            f"CacheMind session: {len(self.workloads)} workloads x "
            f"{len(self.policies)} policies, backend {self.backend.name}, "
            f"config '{self.config.name}', {self.num_accesses} accesses",
        ]
        store = self.simulation_cache.store
        if store is not None:
            cache_stats = self.simulation_cache.stats()
            lines.append(f"trace store: {len(store)} records at "
                         f"'{store.root}' ({cache_stats['store_hits']} warm "
                         f"loads this process)")
        with self._experiment_state_lock:
            experiments_run = self.experiments_run
            seen = sorted(set(self._experiment_configs) | {self.config.name})
        if experiments_run:
            lines.append(f"experiments: {experiments_run} run; "
                         f"configs seen: {', '.join(seen)}")
        if self._database is not None:
            lines.append(self._database.describe())
        else:
            lines.append("trace database: not built yet (built lazily on "
                         "first ask)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"CacheMind(workloads={list(self.workloads)!r}, "
                f"policies={list(self.policies)!r}, "
                f"backend={self.backend.name!r})")
