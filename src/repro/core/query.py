"""Natural-language query parsing (the shared NLU layer).

Both retrievers, the answer generator and the benchmark generator share one
structured view of a question: :class:`QueryIntent`.  Parsing combines

* symbolic extraction of program counters and memory addresses (hex
  literals, classified by the preceding word or by length),
* workload / policy identification against the names known to the database,
  with an embedding-similarity fallback for fuzzy mentions (Sieve's
  "sentence embedder" first stage), and
* keyword rules that classify the question into the CacheMindBench
  categories.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.llm.embeddings import HashingEmbedder

# ----------------------------------------------------------------------
# question types (the 11 CacheMindBench categories plus helpers)
# ----------------------------------------------------------------------
HIT_MISS = "hit_miss"
MISS_RATE = "miss_rate"
POLICY_COMPARISON = "policy_comparison"
COUNT = "count"
ARITHMETIC = "arithmetic"
TRICK = "trick"
CONCEPT = "concept"
CODE_GENERATION = "code_generation"
POLICY_ANALYSIS = "policy_analysis"
WORKLOAD_ANALYSIS = "workload_analysis"
SEMANTIC_ANALYSIS = "semantic_analysis"
PC_LIST = "pc_list"
SET_ANALYSIS = "set_analysis"
GENERAL = "general"

TRACE_GROUNDED_TYPES = (HIT_MISS, MISS_RATE, POLICY_COMPARISON, COUNT,
                        ARITHMETIC, TRICK)
REASONING_TYPES = (CONCEPT, CODE_GENERATION, POLICY_ANALYSIS,
                   WORKLOAD_ANALYSIS, SEMANTIC_ANALYSIS)

_HEX_RE = re.compile(r"0x[0-9a-fA-F]+")
_LABELLED_HEX_RE = re.compile(
    r"(pc|program counter|address|addr)\s*[:=]?\s*(0x[0-9a-fA-F]+)",
    re.IGNORECASE,
)

#: policy aliases accepted in questions.
POLICY_ALIASES: Dict[str, str] = {
    "lru": "lru",
    "least recently used": "lru",
    "fifo": "fifo",
    "belady": "belady",
    "belady's optimal": "belady",
    "opt": "belady",
    "min": "belady",
    "parrot": "parrot",
    "mlp": "mlp",
    "perceptron": "mlp",
    "multi-layer perceptron": "mlp",
    "mockingjay": "mockingjay",
    "ship": "ship",
    "srrip": "srrip",
    "brrip": "brrip",
    "drrip": "drrip",
    "rrip": "srrip",
    "dip": "dip",
    "hawkeye": "hawkeye",
    "random": "random",
    "plru": "plru",
    "bypass": "bypass",
}


@dataclass
class QueryIntent:
    """Structured representation of a natural-language question."""

    question: str
    question_type: str = GENERAL
    pcs: List[str] = field(default_factory=list)
    addresses: List[str] = field(default_factory=list)
    workloads: List[str] = field(default_factory=list)
    policies: List[str] = field(default_factory=list)
    aggregation: Optional[str] = None     # "mean" | "count" | "std" | "sum"
    target_field: Optional[str] = None    # e.g. "evicted_reuse_distance"
    comparison: Optional[str] = None      # "lowest" | "highest" | "best" | "worst"
    wants_sets: bool = False
    wants_pc_list: bool = False
    #: the question is about hits ("hit rate", "most hits") rather than
    #: misses; answers must report/rank by 1 - miss rate.
    wants_hit_rate: bool = False

    @property
    def pc(self) -> Optional[str]:
        return self.pcs[0] if self.pcs else None

    @property
    def address(self) -> Optional[str]:
        return self.addresses[0] if self.addresses else None

    @property
    def workload(self) -> Optional[str]:
        return self.workloads[0] if self.workloads else None

    @property
    def policy(self) -> Optional[str]:
        return self.policies[0] if self.policies else None

    def is_trace_grounded(self) -> bool:
        return self.question_type in TRACE_GROUNDED_TYPES

    def describe(self) -> str:
        parts = [f"type={self.question_type}"]
        if self.pcs:
            parts.append("pc=" + ",".join(self.pcs))
        if self.addresses:
            parts.append("address=" + ",".join(self.addresses))
        if self.workloads:
            parts.append("workload=" + ",".join(self.workloads))
        if self.policies:
            parts.append("policy=" + ",".join(self.policies))
        if self.aggregation:
            parts.append(f"aggregation={self.aggregation}")
        if self.comparison:
            parts.append(f"comparison={self.comparison}")
        return " ".join(parts)


def resolve_comparison(comparison: Optional[str],
                       wants_hit_rate: bool = False) -> bool:
    """Map a parsed superlative onto the miss-rate ordering.

    Returns True when the winner is the policy with the LOWEST miss rate.
    ``best``/None always mean the winning policy; ``worst`` the opposite;
    ``lowest``/``highest`` refer to the named metric, so hit-oriented
    questions invert them.  Shared by the Sieve answer path and Ranger's
    code generator so the two cannot diverge.
    """
    if comparison in ("best", None):
        return True
    if comparison == "worst":
        return False
    return (comparison == "highest") == wants_hit_rate


class QueryParser:
    """Parses questions into :class:`QueryIntent` objects."""

    def __init__(self, known_workloads: Sequence[str] = (),
                 known_policies: Sequence[str] = (),
                 embedder: Optional[HashingEmbedder] = None):
        self.known_workloads = [name.lower() for name in known_workloads]
        self.known_policies = [name.lower() for name in known_policies]
        self.embedder = embedder if embedder is not None else HashingEmbedder()

    # ------------------------------------------------------------------
    # symbolic extraction
    # ------------------------------------------------------------------
    @staticmethod
    def extract_hex(question: str) -> Dict[str, List[str]]:
        """Classify hex literals into PCs and memory addresses."""
        pcs: List[str] = []
        addresses: List[str] = []
        labelled = {}
        for label, value in _LABELLED_HEX_RE.findall(question):
            labelled[value.lower()] = label.lower()
        for value in _HEX_RE.findall(question):
            value = value.lower()
            label = labelled.get(value, "")
            digits = len(value) - 2
            if label.startswith(("pc", "program")):
                target = pcs
            elif label.startswith(("addr",)):
                target = addresses
            elif digits <= 8:
                target = pcs
            else:
                target = addresses
            if value not in target:
                target.append(value)
        return {"pcs": pcs, "addresses": addresses}

    def extract_workloads(self, question: str) -> List[str]:
        lowered = question.lower()
        found = [name for name in self.known_workloads
                 if re.search(rf"\b{re.escape(name)}\b", lowered)]
        return found

    def extract_policies(self, question: str) -> List[str]:
        lowered = question.lower()
        found: List[str] = []
        for alias, canonical in POLICY_ALIASES.items():
            if re.search(rf"\b{re.escape(alias)}\b", lowered):
                if self.known_policies and canonical not in self.known_policies:
                    # Keep unknown policies too: trick questions may name them.
                    pass
                if canonical not in found:
                    found.append(canonical)
        return found

    # ------------------------------------------------------------------
    # classification
    # ------------------------------------------------------------------
    def classify(self, question: str, intent: QueryIntent) -> str:
        lowered = question.lower()

        def has(*phrases: str) -> bool:
            return any(phrase in lowered for phrase in phrases)

        if has("write code", "generate code", "write python", "code to compute",
               "code that computes"):
            return CODE_GENERATION
        if has("hot and cold", "hot sets", "cold sets", "cache sets", "set hotness",
               "unique cache sets"):
            return SET_ANALYSIS
        if has("list all unique pcs", "list all pcs", "list the pcs",
               "unique pcs", "all pcs in"):
            return PC_LIST
        if has("how many", "count the", "number of times", "how often") and not has("why"):
            return COUNT
        if has("average", "mean ", "standard deviation", "variance", "sum of"):
            return ARITHMETIC
        if has("why does", "why is", "explain why") and (intent.pcs or intent.policies):
            if has("assembly", "source", "function", "semantic", "code context",
                   "examine the assembly", "program behavior", "program behaviour"):
                return SEMANTIC_ANALYSIS
            if len(intent.policies) >= 2 or has("outperform", "perform worse",
                                                "better than", "worse under"):
                return POLICY_ANALYSIS
            return SEMANTIC_ANALYSIS if intent.pcs and not intent.policies else POLICY_ANALYSIS
        if has("which workload", "across workloads", "workload has the",
               "workload characteristics", "compare the workloads"):
            return WORKLOAD_ANALYSIS
        if has("which policy", "which replacement policy", "lowest miss rate",
               "highest hit rate", "best policy", "rank the policies",
               "compare policies", "compare the policies") and (intent.pcs or intent.workloads):
            return POLICY_COMPARISON
        if has("miss rate", "hit rate") and (intent.pcs or intent.workloads):
            if len(intent.policies) >= 2:
                return POLICY_COMPARISON
            return MISS_RATE
        if has("cache hit or", "hit or miss", "result in a cache hit",
               "result in a hit", "hit or a miss", "does the access",
               "does the memory access"):
            return HIT_MISS
        if intent.pcs and intent.addresses:
            return HIT_MISS
        if has("cache size", "associativity", "number of sets", "number of ways",
               "#sets", "#ways", "what is a", "how does increasing", "explain the",
               "what translates", "offset", "index", "tag"):
            return CONCEPT
        if has("insight", "derive insights", "suggest ideas", "improve performance",
               "bypass", "prefetch"):
            return WORKLOAD_ANALYSIS if intent.workloads else GENERAL
        return GENERAL

    # ------------------------------------------------------------------
    def parse(self, question: str) -> QueryIntent:
        """Parse one question."""
        hex_values = self.extract_hex(question)
        intent = QueryIntent(
            question=question,
            pcs=hex_values["pcs"],
            addresses=hex_values["addresses"],
            workloads=self.extract_workloads(question),
            policies=self.extract_policies(question),
        )
        lowered = question.lower()
        if "standard deviation" in lowered or "variance" in lowered:
            intent.aggregation = "std"
        elif "average" in lowered or "mean" in lowered:
            intent.aggregation = "mean"
        elif "sum of" in lowered:
            intent.aggregation = "sum"
        elif "how many" in lowered or "count" in lowered:
            intent.aggregation = "count"

        if "evicted reuse distance" in lowered or "eviction reuse" in lowered:
            intent.target_field = "evicted_address_reuse_distance_numeric"
        elif "reuse distance" in lowered:
            intent.target_field = "accessed_address_reuse_distance_numeric"
        elif "recency" in lowered:
            intent.target_field = "accessed_address_recency_numeric"

        # Word boundaries keep "almost"/"utmost" from matching, and the
        # quantifier phrases "at least"/"at most" are not superlatives.
        superlatives = lowered.replace("at least", " ").replace("at most", " ")
        if re.search(r"\b(lowest|least|fewest)\b", superlatives):
            intent.comparison = "lowest"
        elif re.search(r"\b(highest|most|largest)\b", superlatives):
            intent.comparison = "highest"
        elif re.search(r"\bbest\b", superlatives):
            intent.comparison = "best"
        elif re.search(r"\bworst\b", superlatives):
            intent.comparison = "worst"

        # "cache set"/"cache sets" or the standalone word "sets"; the word
        # boundary keeps substrings like "offsets" or "onsets" from matching.
        intent.wants_sets = ("cache set" in lowered
                             or re.search(r"\bsets\b", lowered) is not None)
        intent.wants_hit_rate = (("hit rate" in lowered
                                  or re.search(r"\bhits\b", lowered) is not None)
                                 and "miss rate" not in lowered
                                 and re.search(r"\bmisses\b", lowered) is None)
        intent.wants_pc_list = "list" in lowered and "pc" in lowered

        intent.question_type = self.classify(question, intent)
        return intent
