"""CacheMind core: query parsing, answer objects and the session pipeline.

* :mod:`~repro.core.query`    -- the shared NLU layer (:class:`QueryParser`
  and the CacheMindBench question-type taxonomy),
* :mod:`~repro.core.answer`   -- the :class:`Answer` dataclass with
  provenance (evidence, sources, retrieval quality, backend/retriever),
* :mod:`~repro.core.generate` -- the :class:`AnswerGenerator` turning
  retrieved context into answers through the backend's skill checks,
* :mod:`~repro.core.plan`     -- the request/plan/execute serving API
  (:class:`AskRequest`, :class:`QueryPlan`, :class:`QueryPlanner`),
* :mod:`~repro.core.experiment` -- the declarative experiment API
  (:class:`ExperimentSpec` grids compiled to merged job plans, the
  :class:`ExperimentRunner` executor and the columnar
  :class:`ExperimentResult` cell table),
* :mod:`~repro.core.pipeline` -- the :class:`CacheMind` facade and the
  process-wide :class:`SimulationCache`.
"""

from repro.core.answer import Answer, AskResponse
from repro.core.query import (
    ARITHMETIC,
    CODE_GENERATION,
    CONCEPT,
    COUNT,
    GENERAL,
    HIT_MISS,
    MISS_RATE,
    PC_LIST,
    POLICY_ALIASES,
    POLICY_ANALYSIS,
    POLICY_COMPARISON,
    REASONING_TYPES,
    SEMANTIC_ANALYSIS,
    SET_ANALYSIS,
    TRACE_GROUNDED_TYPES,
    TRICK,
    WORKLOAD_ANALYSIS,
    QueryIntent,
    QueryParser,
)
from repro.core.experiment import (
    ExperimentPlan,
    ExperimentResult,
    ExperimentRunner,
    ExperimentSpec,
    as_experiment_spec,
    run_experiment,
)
from repro.core.generate import AnswerGenerator
from repro.core.plan import (
    AskRequest,
    PlannedJob,
    QueryPlan,
    QueryPlanner,
    as_request,
    merge_job_lists,
    merge_jobs,
)
from repro.core.pipeline import (
    RANGER_TYPES,
    SIEVE_TYPES,
    SIMULATION_CACHE,
    CacheMind,
    SimulationCache,
)

__all__ = [
    "Answer",
    "AskRequest",
    "AskResponse",
    "PlannedJob",
    "QueryPlan",
    "QueryPlanner",
    "as_request",
    "merge_jobs",
    "merge_job_lists",
    "ExperimentPlan",
    "ExperimentResult",
    "ExperimentRunner",
    "ExperimentSpec",
    "as_experiment_spec",
    "run_experiment",
    "AnswerGenerator",
    "CacheMind",
    "SimulationCache",
    "SIMULATION_CACHE",
    "RANGER_TYPES",
    "SIEVE_TYPES",
    "QueryIntent",
    "QueryParser",
    "POLICY_ALIASES",
    "TRACE_GROUNDED_TYPES",
    "REASONING_TYPES",
    "HIT_MISS",
    "MISS_RATE",
    "POLICY_COMPARISON",
    "COUNT",
    "ARITHMETIC",
    "TRICK",
    "CONCEPT",
    "CODE_GENERATION",
    "POLICY_ANALYSIS",
    "WORKLOAD_ANALYSIS",
    "SEMANTIC_ANALYSIS",
    "PC_LIST",
    "SET_ANALYSIS",
    "GENERAL",
]
