"""Answer generation: retrieved context + backend -> :class:`Answer`.

The generator is the last stage of the CacheMind pipeline (paper section 3.4).
It renders the full generator prompt with :class:`~repro.llm.prompts.PromptBuilder`,
invokes the backend for the assistant turn, and — because the simulated
backends cannot literally read prose — decides the answer *content* from the
retrieved facts gated by the backend's deterministic skill checks:

* a premise violation surfaced by retrieval becomes a TRICK rejection when
  the backend passes its ``premise_rejection`` check, and a confident
  hallucination when it does not;
* grounded categories (hit/miss, miss rate, comparison, count, arithmetic)
  read the corresponding fact and corrupt it realistically on a failed check;
* reasoning categories (concept, policy/workload/semantic analysis) are
  rubric-style: the answer carries a 0..1 grade from ``backend.graded``;
* missing evidence either becomes an admitted gap or, with the backend's
  hallucination propensity, a fabricated answer marked ``grounded=False``.

Every produced :class:`Answer` carries provenance: the retriever and backend
names, the evidence lines, the trace keys used and the retrieval quality.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.core.answer import Answer
from repro.faults import fault_point
from repro.core.query import (
    ARITHMETIC,
    CODE_GENERATION,
    CONCEPT,
    COUNT,
    GENERAL,
    HIT_MISS,
    MISS_RATE,
    PC_LIST,
    POLICY_ALIASES,
    POLICY_ANALYSIS,
    POLICY_COMPARISON,
    QueryIntent,
    SEMANTIC_ANALYSIS,
    SET_ANALYSIS,
    WORKLOAD_ANALYSIS,
    resolve_comparison,
)
from repro.llm.backend import GenerationRequest, LLMBackend
from repro.llm.prompts import GENERATOR_SYSTEM_PROMPT, PromptBuilder
from repro.retrieval.context import QUALITY_LOW, RetrievedContext

#: question type -> the skill the generator exercises for it.
SKILL_FOR_TYPE = {
    HIT_MISS: "lookup_accuracy",
    MISS_RATE: "lookup_accuracy",
    POLICY_COMPARISON: "comparison_skill",
    COUNT: "counting_discipline",
    ARITHMETIC: "arithmetic_precision",
    CONCEPT: "concept_knowledge",
    CODE_GENERATION: "code_generation",
    POLICY_ANALYSIS: "causal_reasoning",
    WORKLOAD_ANALYSIS: "workload_synthesis",
    SEMANTIC_ANALYSIS: "semantic_linking",
    PC_LIST: "lookup_accuracy",
    SET_ANALYSIS: "comparison_skill",
}


class AnswerGenerator:
    """Produces the final :class:`Answer` for one parsed question."""

    def __init__(self, backend: LLMBackend, prompting: str = "zero_shot"):
        self.backend = backend
        self.prompt_builder = PromptBuilder(prompting)

    # ------------------------------------------------------------------
    def generate(self, intent: QueryIntent, context: RetrievedContext,
                 memory_block: str = "") -> Answer:
        prompt = self.prompt_builder.build(intent.question, context.text,
                                           memory_block=memory_block)
        fault_point("backend.generate")
        self.backend.generate(GenerationRequest(
            prompt=prompt, system_prompt=GENERATOR_SYSTEM_PROMPT))

        answer = Answer(
            question=intent.question,
            text="",
            category=intent.question_type,
            evidence=context.evidence_lines(),
            sources=list(context.sources),
            retrieval_quality=context.quality_label,
            backend=self.backend.name,
            retriever=context.retriever_name,
            generated_code=context.generated_code,
        )
        answer.extra["intent"] = intent.describe()

        key = f"{intent.question_type}|{intent.question}"
        quality = context.quality_score

        violation = context.fact("premise_violation")
        if violation:
            self._premise_violation(answer, key, quality, str(violation))
            return answer

        handler = {
            HIT_MISS: self._hit_miss,
            MISS_RATE: self._miss_rate,
            POLICY_COMPARISON: self._policy_comparison,
            COUNT: self._count,
            ARITHMETIC: self._arithmetic,
            CODE_GENERATION: self._code_generation,
            PC_LIST: self._pc_list,
            SET_ANALYSIS: self._set_analysis,
        }.get(intent.question_type, self._reasoning)
        handler(answer, intent, context, key, quality)
        return answer

    # ------------------------------------------------------------------
    # shared outcomes
    # ------------------------------------------------------------------
    def _premise_violation(self, answer: Answer, key: str, quality: float,
                           violation: str) -> None:
        if self.backend.check("premise_rejection", key, quality):
            answer.rejected_premise = True
            answer.grounded = True
            answer.value = None
            answer.text = f"TRICK: the premise is invalid; {violation}."
        else:
            # The backend missed the trap and answers as if the premise held.
            answer.grounded = False
            answer.text = ("Based on the trace, the access behaves as the "
                           "question assumes.")
            answer.extra["missed_trick"] = True

    # The corruption hooks live on SimulatedLLM only; API-backed backends
    # answer right or wrong on their own, so absent hooks mean "keep correct".
    def _pick_wrong(self, options: List[str], correct: str, key: str) -> str:
        pick = getattr(self.backend, "pick_wrong", None)
        return pick(options, correct, key) if pick is not None else correct

    def _corrupt_number(self, value: float, key: str) -> float:
        corrupt = getattr(self.backend, "corrupt_number", None)
        return corrupt(value, key) if corrupt is not None else value

    def _corrupt_count(self, value: int, key: str) -> int:
        corrupt = getattr(self.backend, "corrupt_count", None)
        return corrupt(value, key) if corrupt is not None else value

    def _missing_evidence(self, answer: Answer, key: str, needed: str) -> None:
        """No grounding fact: admit the gap or hallucinate."""
        hallucinate = getattr(self.backend, "hallucinates", None)
        if hallucinate is not None and hallucinate(key):
            answer.grounded = False
            draw = self.backend.draw("fabricate|" + key)
            if "per-policy" in needed:
                # A which-policy question: a real hallucination names a
                # policy, not a number.
                options = sorted(set(POLICY_ALIASES.values()))
                pick = options[int(draw * len(options)) % len(options)]
                answer.text = f"{pick} performs best here."
            elif "rate" in needed:
                answer.text = f"The {needed} is {draw * 100:.2f}%."
            elif "count" in needed:
                answer.text = (f"There are {1 + int(draw * 500)} matching "
                               f"accesses.")
            elif "value" in needed:
                answer.text = f"The {needed} is {draw * 100:.2f}."
            else:
                answer.text = (f"Based on the trace, the {needed} shows "
                               f"typical behaviour for this workload and "
                               f"policy.")
            answer.extra["hallucinated"] = True
        else:
            answer.admitted_unknown = True
            answer.text = (f"The retrieved context does not contain the "
                           f"{needed} needed to answer this question.")

    # ------------------------------------------------------------------
    # grounded categories
    # ------------------------------------------------------------------
    def _hit_miss(self, answer: Answer, intent: QueryIntent,
                  context: RetrievedContext, key: str, quality: float) -> None:
        outcome = context.fact("outcome")
        if outcome is None:
            self._missing_evidence(answer, key, "hit/miss outcome")
            return
        answer.grounded = True
        if self.backend.check("lookup_accuracy", key, quality):
            answer.value = outcome
        else:
            answer.value = self._pick_wrong(
                ["Cache Hit", "Cache Miss"], outcome, key)
            answer.grounded = answer.value == outcome
        where = self._where(intent, context)
        answer.text = f"{answer.value}{where}."

    def _miss_rate(self, answer: Answer, intent: QueryIntent,
                   context: RetrievedContext, key: str, quality: float) -> None:
        metric = "hit rate" if intent.wants_hit_rate else "miss rate"
        rate = context.fact("miss_rate")
        if rate is None:
            hit = context.fact("hit_rate")
            rate = None if hit is None else 1.0 - float(hit)
        if rate is None:
            self._missing_evidence(answer, key, metric)
            return
        answer.grounded = True
        true_value = (1.0 - float(rate)) if intent.wants_hit_rate else float(rate)
        value = true_value
        if not self.backend.check("lookup_accuracy", key, quality):
            value = min(1.0, max(0.0, self._corrupt_number(value, key)))
            answer.grounded = value == true_value
        answer.value = value
        where = self._where(intent, context)
        answer.text = f"The {metric}{where} is {value * 100:.2f}%."

    def _policy_comparison(self, answer: Answer, intent: QueryIntent,
                           context: RetrievedContext, key: str,
                           quality: float) -> None:
        per_policy = context.fact("per_policy")
        if not per_policy:
            self._missing_evidence(answer, key, "per-policy miss rates")
            return
        answer.grounded = True
        ordered = sorted(per_policy.items(), key=lambda item: item[1])
        # per_policy holds miss rates; resolve_comparison maps the question's
        # superlative/metric onto that ordering (shared with Ranger codegen).
        pick_lowest = resolve_comparison(intent.comparison,
                                         intent.wants_hit_rate)
        correct = (ordered[0] if pick_lowest else ordered[-1])[0]
        if self.backend.check("comparison_skill", key, quality):
            answer.value = correct
        else:
            answer.value = self._pick_wrong(sorted(per_policy), correct, key)
            answer.grounded = answer.value == correct
        metric = "hit rate" if intent.wants_hit_rate else "miss rate"
        listing = ", ".join(
            f"{name}: {(1.0 - rate if intent.wants_hit_rate else rate) * 100:.2f}%"
            for name, rate in ordered)
        superlative = ("highest" if pick_lowest == intent.wants_hit_rate
                       else "lowest")
        answer.text = (f"{answer.value} has the {superlative} {metric}"
                       f"{self._where(intent, context)} ({listing}).")
        answer.extra["per_policy"] = dict(per_policy)

    def _count(self, answer: Answer, intent: QueryIntent,
               context: RetrievedContext, key: str, quality: float) -> None:
        count = context.fact("count")
        if count is None:
            self._missing_evidence(answer, key, "event count")
            return
        answer.grounded = True
        value = int(count)
        if not self.backend.check("counting_discipline", key, quality):
            value = self._corrupt_count(value, key)
            answer.grounded = value == int(count)
        answer.value = value
        answer.text = (f"There are {value} matching accesses"
                       f"{self._where(intent, context)}.")

    def _arithmetic(self, answer: Answer, intent: QueryIntent,
                    context: RetrievedContext, key: str, quality: float) -> None:
        aggregate = context.fact("aggregate_value")
        if aggregate is None:
            self._missing_evidence(answer, key, "aggregate value")
            return
        answer.grounded = True
        value = float(aggregate)
        if not self.backend.check("arithmetic_precision", key, quality):
            value = self._corrupt_number(value, key)
            answer.grounded = value == float(aggregate)
        answer.value = value
        aggregation = context.fact("aggregation") or intent.aggregation or "mean"
        field = intent.target_field or "value"
        answer.text = (f"The {aggregation} {field}{self._where(intent, context)} "
                       f"is {value:.2f}.")

    def _code_generation(self, answer: Answer, intent: QueryIntent,
                         context: RetrievedContext, key: str,
                         quality: float) -> None:
        code = context.generated_code
        if code is None:
            self._missing_evidence(answer, key, "generated analysis code")
            return
        answer.grounded = True
        correct = self.backend.check("code_generation", key, quality)
        answer.value = code
        answer.generated_code = code
        answer.extra["code_correct"] = correct
        preamble = ("Here is Python code that answers the question against "
                    "loaded_data:" if correct else
                    "Here is Python code for the question (it may contain "
                    "errors):")
        answer.text = f"{preamble}\n{code}"

    def _pc_list(self, answer: Answer, intent: QueryIntent,
                 context: RetrievedContext, key: str, quality: float) -> None:
        pcs = context.fact("pc_list")
        if pcs is None:
            self._missing_evidence(answer, key, "list of unique PCs")
            return
        answer.grounded = True
        reported = list(pcs)
        if not self.backend.check("lookup_accuracy", key, quality):
            # Models drop tail items when enumerating long lists.
            keep = max(1, min(len(reported),
                              self._corrupt_count(len(reported), key)))
            reported = reported[:keep]
            answer.grounded = len(reported) == len(pcs)
        answer.value = reported
        preview = ", ".join(reported[:20])
        answer.text = (f"There are {len(reported)} unique PCs"
                       f"{self._where(intent, context)}: {preview}")

    def _set_analysis(self, answer: Answer, intent: QueryIntent,
                      context: RetrievedContext, key: str,
                      quality: float) -> None:
        set_stats = context.fact("set_stats")
        if set_stats is None:
            self._missing_evidence(answer, key, "per-set statistics")
            return
        answer.grounded = True
        hot = list(context.fact("hot_sets") or [])
        cold = list(context.fact("cold_sets") or [])
        if not self.backend.check("comparison_skill", key, quality):
            # The classic failure: ranking direction inverted.
            hot, cold = cold, hot
            answer.grounded = False
        answer.value = {"hot_sets": list(hot), "cold_sets": list(cold)}
        answer.text = (f"{len(set_stats)} cache sets were accessed"
                       f"{self._where(intent, context)}. Hot sets (by hit "
                       f"rate): {list(hot)}. Cold sets: {list(cold)}.")

    # ------------------------------------------------------------------
    # reasoning / rubric-scored categories
    # ------------------------------------------------------------------
    def _reasoning(self, answer: Answer, intent: QueryIntent,
                   context: RetrievedContext, key: str, quality: float) -> None:
        skill = SKILL_FOR_TYPE.get(intent.question_type, "concept_knowledge")
        grade = self.backend.graded(skill, key, quality)
        answer.extra["grade"] = grade
        # Every retriever seeds incidental facts (schema, metadata), so
        # grounding must mean the type's evidence was actually retrieved —
        # the quality grade tracks exactly that.  Concept/general questions
        # are knowledge-based, never trace-grounded.
        knowledge_based = intent.question_type in (CONCEPT, GENERAL)
        evidential = (context.quality_label != QUALITY_LOW
                      and not knowledge_based)
        answer.grounded = evidential
        evidence = "; ".join(answer.evidence[:2])
        if grade >= 0.6:
            body = (f"Grounded in the retrieved trace context"
                    f"{self._where(intent, context)}: {evidence}"
                    if evidential and evidence else
                    "Based on general cache-architecture knowledge.")
            answer.text = (f"[{intent.question_type}] {body} "
                           f"(answer quality {grade:.2f}).")
        elif not evidential and not self.backend.check(
                "premise_rejection", "admit|" + key, quality):
            # Overconfident unsupported claim instead of admitting the gap.
            answer.admitted_unknown = False
            answer.grounded = False
            answer.text = ("The behaviour follows from the replacement "
                           "policy's insertion heuristics. "
                           f"(answer quality {grade:.2f})")
        else:
            # Only blame the context when it actually fell short.
            reason = (f"the context was {context.quality_label} quality"
                      if context.quality_label == QUALITY_LOW
                      else "the analysis is incomplete")
            answer.text = (f"[{intent.question_type}] Partial analysis only; "
                           f"{reason} (answer quality {grade:.2f}).")

    # ------------------------------------------------------------------
    @staticmethod
    def _where(intent: QueryIntent, context: RetrievedContext) -> str:
        """A ' for PC x in workload under policy' provenance suffix."""
        parts: List[str] = []
        if intent.pc:
            parts.append(f"for PC {intent.pc}")
        if intent.address:
            parts.append(f"at address {intent.address}")
        workload = context.fact("workload") or intent.workload
        if workload:
            parts.append(f"in {workload}")
        policy = context.fact("policy") or intent.policy
        if policy and intent.question_type != POLICY_COMPARISON:
            parts.append(f"under {policy}")
        return (" " + " ".join(parts)) if parts else ""
