"""A small columnar table used as the external trace store.

The paper stores each trace as a pandas ``DataFrame``; pandas is not available
in this environment, so :class:`Table` provides the subset of DataFrame
behaviour the retrievers and the Ranger-generated code rely on:

* column access and row access,
* boolean filtering (``where`` / ``filter_rows``),
* group-by with aggregation,
* sorting, head/tail slicing,
* numeric aggregations (mean, sum, min, max, count),
* value counting and unique extraction.

The implementation deliberately keeps data as plain Python lists per column:
trace values are a mix of ints, floats and strings, and the table sizes used
in this reproduction (tens of thousands of rows) do not need vectorisation.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple


class Column:
    """A named, ordered collection of values belonging to a :class:`Table`."""

    def __init__(self, name: str, values: Sequence[Any]):
        self.name = name
        self.values = list(values)

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.values)

    def __getitem__(self, index: int) -> Any:
        return self.values[index]

    def __eq__(self, other: Any) -> Any:
        if isinstance(other, Column):
            return self.values == other.values
        return [value == other for value in self.values]

    def __repr__(self) -> str:
        preview = ", ".join(repr(value) for value in self.values[:5])
        suffix = ", ..." if len(self.values) > 5 else ""
        return f"Column({self.name!r}, [{preview}{suffix}])"

    def unique(self) -> List[Any]:
        """Return unique values preserving first-seen order."""
        seen = set()
        ordered = []
        for value in self.values:
            if value not in seen:
                seen.add(value)
                ordered.append(value)
        return ordered

    def value_counts(self) -> Dict[Any, int]:
        """Return a mapping of value -> number of occurrences."""
        counts: Dict[Any, int] = {}
        for value in self.values:
            counts[value] = counts.get(value, 0) + 1
        return counts

    def _numeric_values(self) -> List[float]:
        numeric = []
        for value in self.values:
            if value is None:
                continue
            if isinstance(value, bool):
                numeric.append(float(value))
            elif isinstance(value, (int, float)):
                if isinstance(value, float) and math.isnan(value):
                    continue
                numeric.append(float(value))
        return numeric

    def mean(self) -> Optional[float]:
        numeric = self._numeric_values()
        if not numeric:
            return None
        return sum(numeric) / len(numeric)

    def sum(self) -> float:
        return sum(self._numeric_values())

    def min(self) -> Optional[float]:
        numeric = self._numeric_values()
        return min(numeric) if numeric else None

    def max(self) -> Optional[float]:
        numeric = self._numeric_values()
        return max(numeric) if numeric else None

    def std(self) -> Optional[float]:
        """Population standard deviation (ddof=0) of the numeric values.

        The divisor is ``n``, not ``n - 1`` — the convention shared with the
        ``std`` aggregate in :mod:`repro.analytics`, so engine results and
        direct ``Column`` calls always agree.  Returns ``None`` when the
        column holds no numeric values.
        """
        numeric = self._numeric_values()
        if len(numeric) < 1:
            return None
        mean = sum(numeric) / len(numeric)
        variance = sum((value - mean) ** 2 for value in numeric) / len(numeric)
        return math.sqrt(variance)

    def percentile(self, q: float) -> Optional[float]:
        """Percentile of the numeric values with linear interpolation.

        ``q`` is a fraction in [0, 1] (``0.5`` is the median).  The value at
        fractional rank ``q * (n - 1)`` is interpolated linearly between the
        neighbouring order statistics, matching ``numpy.percentile``'s
        default method.  Returns ``None`` when the column holds no numeric
        values.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"percentile q must be in [0, 1], got {q!r}")
        numeric = sorted(self._numeric_values())
        if not numeric:
            return None
        position = q * (len(numeric) - 1)
        low = math.floor(position)
        high = math.ceil(position)
        if low == high:
            return numeric[low]
        fraction = position - low
        return numeric[low] * (1.0 - fraction) + numeric[high] * fraction

    def median(self) -> Optional[float]:
        """Median of the numeric values (``percentile(0.5)``)."""
        return self.percentile(0.5)

    def count(self) -> int:
        return len(self.values)

    def tolist(self) -> List[Any]:
        return list(self.values)


class Table:
    """A columnar table with pandas-flavoured filtering and aggregation."""

    def __init__(self, columns: Optional[Mapping[str, Sequence[Any]]] = None):
        self._columns: Dict[str, List[Any]] = {}
        self._length = 0
        if columns:
            lengths = {len(values) for values in columns.values()}
            if len(lengths) > 1:
                raise ValueError(
                    f"all columns must have the same length, got lengths {sorted(lengths)}"
                )
            self._length = lengths.pop() if lengths else 0
            for name, values in columns.items():
                self._columns[name] = list(values)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(cls, rows: Sequence[Mapping[str, Any]],
                  columns: Optional[Sequence[str]] = None) -> "Table":
        """Build a table from a sequence of row dictionaries.

        ``columns`` fixes the column order and fills missing keys with
        ``None``; when omitted, the union of keys in first-seen order is used.
        """
        if columns is None:
            ordered: List[str] = []
            seen = set()
            for row in rows:
                for key in row:
                    if key not in seen:
                        seen.add(key)
                        ordered.append(key)
            columns = ordered
        data = {name: [row.get(name) for row in rows] for name in columns}
        return cls(data)

    @classmethod
    def empty(cls, columns: Sequence[str]) -> "Table":
        """Return a zero-row table with the given column names."""
        return cls({name: [] for name in columns})

    @classmethod
    def from_columns(cls, columns: Mapping[str, List[Any]]) -> "Table":
        """Adopt ready-made column lists without copying them.

        The normal constructor defensively copies every column; this is the
        zero-copy path for producers (the simulation engine's columnar
        access log) that build fresh lists purpose-made for the table and
        hand over ownership.  Each value must be a ``list``; lengths must
        agree.  Column semantics are unchanged — ``table[name]`` wraps the
        same list in a :class:`Column`.
        """
        table = cls()
        lengths = set()
        for name, values in columns.items():
            if not isinstance(values, list):
                raise TypeError(
                    f"from_columns adopts lists; column {name!r} is "
                    f"{type(values).__name__} (use Table(...) to copy)")
            lengths.add(len(values))
        if len(lengths) > 1:
            raise ValueError(
                f"all columns must have the same length, got lengths {sorted(lengths)}"
            )
        table._length = lengths.pop() if lengths else 0
        for name, values in columns.items():
            table._columns[name] = values
        return table

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._length

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __getitem__(self, name: str) -> Column:
        if name not in self._columns:
            raise KeyError(f"unknown column {name!r}; available: {sorted(self._columns)}")
        return Column(name, self._columns[name])

    def __iter__(self) -> Iterator[str]:
        return iter(self._columns)

    def __repr__(self) -> str:
        return f"Table(rows={self._length}, columns={list(self._columns)})"

    @property
    def columns(self) -> List[str]:
        return list(self._columns)

    @property
    def num_rows(self) -> int:
        return self._length

    def column(self, name: str) -> List[Any]:
        """Return the raw list of values for a column."""
        return list(self[name].values)

    def row(self, index: int) -> Dict[str, Any]:
        """Return row ``index`` as a dictionary."""
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise IndexError(f"row index {index} out of range for {self._length} rows")
        return {name: values[index] for name, values in self._columns.items()}

    def rows(self) -> List[Dict[str, Any]]:
        """Return all rows as dictionaries."""
        return [self.row(i) for i in range(self._length)]

    def iter_rows(self) -> Iterator[Dict[str, Any]]:
        for i in range(self._length):
            yield self.row(i)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def append_row(self, row: Mapping[str, Any]) -> None:
        """Append a row; new columns are back-filled with ``None``."""
        for name in row:
            if name not in self._columns:
                self._columns[name] = [None] * self._length
        for name, values in self._columns.items():
            values.append(row.get(name))
        self._length += 1

    def add_column(self, name: str, values: Sequence[Any]) -> None:
        values = list(values)
        if self._columns and len(values) != self._length:
            raise ValueError(
                f"column {name!r} has {len(values)} values, table has {self._length} rows"
            )
        if not self._columns:
            self._length = len(values)
        self._columns[name] = values

    def rename(self, mapping: Mapping[str, str]) -> "Table":
        """Return a copy with columns renamed according to ``mapping``."""
        data = {}
        for name, values in self._columns.items():
            data[mapping.get(name, name)] = list(values)
        return Table(data)

    def copy(self) -> "Table":
        return Table({name: list(values) for name, values in self._columns.items()})

    # ------------------------------------------------------------------
    # selection / filtering
    # ------------------------------------------------------------------
    def select(self, names: Sequence[str]) -> "Table":
        """Return a table restricted to the given columns."""
        missing = [name for name in names if name not in self._columns]
        if missing:
            raise KeyError(f"unknown columns {missing}; available: {sorted(self._columns)}")
        return Table({name: list(self._columns[name]) for name in names})

    def take(self, indices: Sequence[int]) -> "Table":
        """Return a table with the rows at the given positions."""
        data = {
            name: [values[i] for i in indices]
            for name, values in self._columns.items()
        }
        return Table(data)

    def head(self, count: int = 5) -> "Table":
        return self.take(range(min(count, self._length)))

    def tail(self, count: int = 5) -> "Table":
        start = max(0, self._length - count)
        return self.take(range(start, self._length))

    def where(self, **conditions: Any) -> "Table":
        """Filter rows by exact equality on one or more columns.

        Example::

            table.where(program_counter=0x401e31, workload="lbm")
        """
        for name in conditions:
            if name not in self._columns:
                raise KeyError(f"unknown column {name!r}; available: {sorted(self._columns)}")
        indices = []
        for i in range(self._length):
            if all(self._columns[name][i] == expected
                   for name, expected in conditions.items()):
                indices.append(i)
        return self.take(indices)

    def filter_rows(self, predicate: Callable[[Dict[str, Any]], bool]) -> "Table":
        """Filter rows by an arbitrary predicate over row dictionaries."""
        indices = [i for i in range(self._length) if predicate(self.row(i))]
        return self.take(indices)

    def filter_column(self, name: str, predicate: Callable[[Any], bool]) -> "Table":
        """Filter rows by a predicate applied to a single column's values."""
        values = self[name].values
        indices = [i for i, value in enumerate(values) if predicate(value)]
        return self.take(indices)

    # ------------------------------------------------------------------
    # ordering
    # ------------------------------------------------------------------
    def sort_by(self, name: str, descending: bool = False,
                key: Optional[Callable[[Any], Any]] = None) -> "Table":
        """Return a copy sorted by the given column."""
        values = self[name].values

        def sort_key(index: int) -> Any:
            value = values[index]
            if key is not None:
                value = key(value)
            # Sort None values last regardless of direction.
            return (value is None, value)

        order = sorted(range(self._length), key=sort_key, reverse=descending)
        return self.take(order)

    # ------------------------------------------------------------------
    # grouping / aggregation
    # ------------------------------------------------------------------
    def groupby(self, name: str) -> Dict[Any, "Table"]:
        """Group rows by the values of a column, preserving first-seen order."""
        groups: Dict[Any, List[int]] = {}
        for i, value in enumerate(self[name].values):
            groups.setdefault(value, []).append(i)
        return {value: self.take(indices) for value, indices in groups.items()}

    def aggregate(self, group_column: str,
                  aggregations: Mapping[str, Tuple[str, str]]) -> "Table":
        """Group by ``group_column`` and aggregate other columns.

        ``aggregations`` maps output column name to ``(input column, func)``
        where ``func`` is one of ``mean``, ``sum``, ``min``, ``max``,
        ``count``, ``std``, ``median``.  (``std`` is population std, ddof=0;
        for parameterised percentiles use the :mod:`repro.analytics` engine.)
        """
        rows = []
        for value, group in self.groupby(group_column).items():
            row: Dict[str, Any] = {group_column: value}
            for out_name, (in_name, func) in aggregations.items():
                column = group[in_name]
                if func == "count":
                    row[out_name] = column.count()
                elif func == "mean":
                    row[out_name] = column.mean()
                elif func == "sum":
                    row[out_name] = column.sum()
                elif func == "min":
                    row[out_name] = column.min()
                elif func == "max":
                    row[out_name] = column.max()
                elif func == "std":
                    row[out_name] = column.std()
                elif func == "median":
                    row[out_name] = column.median()
                else:
                    raise ValueError(f"unsupported aggregation {func!r}")
            rows.append(row)
        columns = [group_column] + list(aggregations)
        return Table.from_rows(rows, columns=columns)

    # ------------------------------------------------------------------
    # conversions / display
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, List[Any]]:
        return {name: list(values) for name, values in self._columns.items()}

    def to_csv(self, separator: str = ",") -> str:
        """Render the table as CSV text (no quoting; values must be simple)."""
        lines = [separator.join(self._columns)]
        for row in self.iter_rows():
            lines.append(separator.join(str(row[name]) for name in self._columns))
        return "\n".join(lines)

    def format(self, max_rows: int = 10) -> str:
        """Render a human-readable fixed-width preview of the table."""
        names = list(self._columns)
        if not names:
            return "(empty table)"
        shown = list(self.head(max_rows).iter_rows())
        widths = {name: len(name) for name in names}
        for row in shown:
            for name in names:
                widths[name] = max(widths[name], len(str(row[name])))
        header = "  ".join(name.ljust(widths[name]) for name in names)
        divider = "  ".join("-" * widths[name] for name in names)
        body = [
            "  ".join(str(row[name]).ljust(widths[name]) for name in names)
            for row in shown
        ]
        lines = [header, divider] + body
        if self._length > max_rows:
            lines.append(f"... ({self._length - max_rows} more rows)")
        return "\n".join(lines)
