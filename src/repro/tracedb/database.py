"""Trace database builder: the external store CacheMind retrieves from.

The store is organised exactly as in the paper (section 4.3): a dictionary
``loaded_data`` keyed by trace identifiers ``<workload>_evictions_<policy>``
(e.g. ``lbm_evictions_lru``), each mapping to

* ``data_frame``   -- the per-access table (:class:`~repro.tracedb.table.Table`),
* ``metadata``     -- a single whole-trace summary string,
* ``description``  -- a short human-readable workload + policy description.

:func:`build_database` simulates every (workload, policy) pair with the
simulation engine and assembles that dictionary, along with richer
per-entry objects (:class:`TraceEntry`) that keep the simulation statistics
and the synthetic binary image around for insight analyses.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import UnknownNameError
from repro.policies.base import get_policy
from repro.sim.config import HierarchyConfig, SMALL_CONFIG
from repro.sim.batch import BatchSimulator, RolloutSpec
from repro.sim.engine import SimulationEngine, SimulationResult
from repro.sim.parallel import ParallelSimulator, SimulationJob
from repro.tracedb.metadata import build_metadata_string
from repro.tracedb.schema import records_to_table
from repro.tracedb.stats import CacheStatisticalExpert, WorkloadStatistics
from repro.tracedb.store import TraceStore, entry_key, simulation_key
from repro.tracedb.table import Table
from repro.workloads.generator import get_workload
from repro.workloads.trace import MemoryTrace

#: default workloads and policies used in the paper's evaluation.
DEFAULT_WORKLOADS = ("astar", "lbm", "mcf")
DEFAULT_POLICIES = ("belady", "lru", "mlp", "parrot")


def trace_key(workload: str, policy: str) -> str:
    """Build a trace identifier (``lbm_evictions_lru``)."""
    return f"{workload}_evictions_{policy}"


def parse_trace_key(key: str) -> Tuple[str, str]:
    """Split a trace identifier into (workload, policy)."""
    parts = key.split("_evictions_")
    if len(parts) != 2 or not parts[0] or not parts[1]:
        raise ValueError(f"malformed trace key {key!r}")
    return parts[0], parts[1]


class TraceEntry:
    """One (workload, policy) entry of the external store.

    ``data_frame`` is materialised lazily: when the entry crosses a process
    boundary (persistent store record, parallel-worker result), only the
    compact columnar access log inside ``result`` travels, and the table is
    rebuilt — byte-identically — on first access.  That keeps store records
    small and warm session starts buffer-speed instead of re-unpickling
    millions of formatted cells.
    """

    def __init__(self, workload: str, policy: str,
                 data_frame: Optional[Table], metadata: str,
                 description: str, statistics: WorkloadStatistics,
                 result: Optional[SimulationResult] = None):
        self.workload = workload
        self.policy = policy
        self.metadata = metadata
        self.description = description
        self.statistics = statistics
        self.result = result
        self._data_frame = data_frame
        if data_frame is None and (result is None or result.log is None):
            raise ValueError(
                "TraceEntry needs a data_frame or a result with an access "
                "log to rebuild one from")

    @property
    def data_frame(self) -> Table:
        """The per-access table, rebuilt from the access log if needed."""
        if self._data_frame is None:
            self._data_frame = self.result.log.to_table()
        return self._data_frame

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        # The table is pure derived data whenever the log is present; ship
        # the compact log only and rebuild lazily on the other side.
        if self.result is not None and self.result.log is not None:
            state["_data_frame"] = None
        return state

    def __repr__(self) -> str:
        return (f"TraceEntry(workload={self.workload!r}, "
                f"policy={self.policy!r}, "
                f"rows={len(self.data_frame)})")

    @property
    def key(self) -> str:
        return trace_key(self.workload, self.policy)

    @property
    def expert(self) -> CacheStatisticalExpert:
        return CacheStatisticalExpert(self.data_frame)

    def as_loaded_data_value(self) -> Dict[str, object]:
        """The plain dictionary shape documented in the Ranger system prompt."""
        return {
            "data_frame": self.data_frame,
            "metadata": self.metadata,
            "description": self.description,
        }


def make_entry(result: SimulationResult,
               workload_description: str = "") -> TraceEntry:
    """Derive a database entry (table, statistics, metadata) from one
    simulation result.

    The data frame is assembled column-by-column from the result's columnar
    access log (byte-identical to the legacy row-materialised path, without
    building a dict per row)."""
    table = (result.log.to_table() if result.log is not None
             else records_to_table(result.records))
    stats = CacheStatisticalExpert(table).workload_statistics()
    workload_part = workload_description or f"workload {result.workload}"
    description = (f"Replacement Policy: {result.policy_description} "
                   f"Workload: {workload_part}")
    return TraceEntry(
        workload=result.workload,
        policy=result.policy_name,
        data_frame=table,
        metadata=build_metadata_string(stats),
        description=description,
        statistics=stats,
        result=result,
    )


class TraceDatabase:
    """Container of trace entries with the paper's ``loaded_data`` layout."""

    def __init__(self, config: HierarchyConfig = SMALL_CONFIG):
        self.config = config
        self.entries: Dict[str, TraceEntry] = {}
        self.binaries: Dict[str, object] = {}

    # ------------------------------------------------------------------
    def add_entry(self, entry: TraceEntry) -> None:
        self.entries[entry.key] = entry

    def add_result(self, result: SimulationResult,
                   workload_description: str = "") -> TraceEntry:
        """Convert a simulation result into a database entry and store it."""
        entry = make_entry(result, workload_description=workload_description)
        self.install_entry(entry)
        return entry

    def install_entry(self, entry: TraceEntry) -> None:
        """Store a (possibly shared/memoised) entry plus its binary image."""
        self.add_entry(entry)
        if entry.result is not None and entry.result.binary is not None:
            self.binaries[entry.workload] = entry.result.binary

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        return key in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    def get(self, workload: str, policy: str) -> TraceEntry:
        key = trace_key(workload, policy)
        if key not in self.entries:
            raise UnknownNameError(
                f"no trace entry {key!r}; available: {sorted(self.entries)}")
        return self.entries[key]

    def entry(self, key: str) -> TraceEntry:
        if key not in self.entries:
            raise UnknownNameError(
                f"no trace entry {key!r}; available: {sorted(self.entries)}")
        return self.entries[key]

    def keys(self) -> List[str]:
        return sorted(self.entries)

    @property
    def workloads(self) -> List[str]:
        return sorted({entry.workload for entry in self.entries.values()})

    @property
    def policies(self) -> List[str]:
        return sorted({entry.policy for entry in self.entries.values()})

    def entries_for_workload(self, workload: str) -> List[TraceEntry]:
        return [entry for entry in self.entries.values()
                if entry.workload == workload]

    def entries_for_policy(self, policy: str) -> List[TraceEntry]:
        return [entry for entry in self.entries.values() if entry.policy == policy]

    def loaded_data(self) -> Dict[str, Dict[str, object]]:
        """The exact dictionary layout Ranger-generated code queries."""
        return {key: entry.as_loaded_data_value()
                for key, entry in self.entries.items()}

    def binary_for(self, workload: str):
        return self.binaries.get(workload)

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, workloads: Sequence[str] = DEFAULT_WORKLOADS,
              policies: Sequence[str] = DEFAULT_POLICIES,
              num_accesses: int = 20000,
              config: HierarchyConfig = SMALL_CONFIG,
              mode: str = "llc_only",
              seed: int = 0,
              traces: Optional[Dict[str, MemoryTrace]] = None,
              max_records: Optional[int] = None,
              jobs: int = 1,
              executor: str = "auto",
              store: Optional[object] = None) -> "TraceDatabase":
        """Build a database, optionally in parallel (``jobs > 1``).

        Parallel builds fan the (workload, policy) pairs out over a
        :class:`~repro.sim.parallel.ParallelSimulator` and produce entries
        identical to a serial build.  ``store`` (a
        :class:`~repro.tracedb.store.TraceStore` or directory path) makes
        the build persistent: cached entries are loaded instead of
        simulated, and fresh entries are saved for future processes.
        """
        return build_database(workloads=workloads, policies=policies,
                              num_accesses=num_accesses, config=config,
                              mode=mode, seed=seed, traces=traces,
                              max_records=max_records, jobs=jobs,
                              executor=executor, store=store)

    # ------------------------------------------------------------------
    def describe(self) -> str:
        lines = [f"trace database: {len(self.entries)} entries "
                 f"({len(self.workloads)} workloads x {len(self.policies)} policies)"]
        for key in self.keys():
            entry = self.entries[key]
            lines.append(
                f"  {key}: {len(entry.data_frame)} rows, "
                f"{entry.statistics.miss_rate * 100:.2f}% miss rate")
        return "\n".join(lines)


def build_database(workloads: Sequence[str] = DEFAULT_WORKLOADS,
                   policies: Sequence[str] = DEFAULT_POLICIES,
                   num_accesses: int = 20000,
                   config: HierarchyConfig = SMALL_CONFIG,
                   mode: str = "llc_only",
                   seed: int = 0,
                   traces: Optional[Dict[str, MemoryTrace]] = None,
                   max_records: Optional[int] = None,
                   jobs: int = 1,
                   executor: str = "auto",
                   store: Optional[object] = None) -> TraceDatabase:
    """Simulate every (workload, policy) pair and build the database.

    ``traces`` may supply pre-generated traces keyed by workload name (useful
    for the microbenchmark use cases); missing workloads are generated with
    their default generator.  ``jobs > 1`` fans the pairs out over a process
    pool (falling back to threads/serial); because traces and policies are
    deterministic, the parallel build is identical to the serial one.

    ``store`` (a :class:`~repro.tracedb.store.TraceStore` or a directory
    path) adds cross-process persistence: pairs already in the store are
    loaded instead of simulated, and freshly simulated pairs are written
    back, so repeated builds in fresh processes start warm.  Store keys
    include the trace content fingerprint, so a changed generator or a
    hand-supplied trace never matches a stale record.
    """
    if store is not None and not isinstance(store, TraceStore):
        store = TraceStore(os.fspath(store))
    database = TraceDatabase(config=config)
    engine = SimulationEngine(config=config, mode=mode, max_records=max_records)

    # Trace resolution: supplied traces are used as-is; otherwise traces are
    # generated up front when needed in-process (serial run, or store keys
    # that hash trace content).  A store-less parallel build skips parent
    # generation entirely — workers regenerate deterministically.
    need_traces = store is not None or jobs <= 1
    trace_map: Dict[str, MemoryTrace] = {}
    description_map: Dict[str, str] = {}
    for workload_name in workloads:
        if traces is not None and workload_name in traces:
            trace_map[workload_name] = traces[workload_name]
            description_map[workload_name] = traces[workload_name].description
        elif need_traces:
            generator = get_workload(workload_name, seed=seed)
            trace_map[workload_name] = generator.generate(num_accesses)
            description_map[workload_name] = generator.description
        else:
            description_map[workload_name] = ""

    pending: List[Tuple[str, str]] = []
    for workload_name in workloads:
        for policy_name in policies:
            if store is not None:
                key = entry_key(engine, trace_map[workload_name], policy_name,
                                description_map[workload_name])
                entry = store.load_entry(key)
                if entry is not None:
                    database.install_entry(entry)
                    continue
            pending.append((workload_name, policy_name))

    def persist(workload_name: str, policy_name: str, entry) -> None:
        """Write both store records so any later lookup path starts warm."""
        trace = trace_map[workload_name]
        store.save_entry(
            entry_key(engine, trace, policy_name,
                      description_map[workload_name]),
            entry)
        if entry.result is not None:
            store.save_result(simulation_key(engine, trace, policy_name),
                              entry.result)

    if jobs > 1 and pending:
        simulation_jobs = [
            # Traces already generated in the parent (supplied, or needed
            # for store keys) ship with the job — MemoryTrace pickles at
            # buffer speed — so workers never regenerate them.
            SimulationJob(workload=workload_name, policy=policy_name,
                          num_accesses=num_accesses, seed=seed,
                          description=description_map[workload_name],
                          trace=trace_map.get(workload_name))
            for workload_name, policy_name in pending
        ]
        simulator = ParallelSimulator(jobs=jobs, executor=executor,
                                      config=config, mode=mode,
                                      max_records=max_records)
        for (workload_name, policy_name), entry in zip(
                pending, simulator.run_entries(simulation_jobs)):
            if store is not None:
                persist(workload_name, policy_name, entry)
            database.install_entry(entry)
        return database

    # Serial build: policies pending for the same workload replay its trace
    # in one lockstep batch pass (order preserved: pending is workload-major
    # with policies inner, and so is this flush).
    by_workload: Dict[str, List[str]] = {}
    for workload_name, policy_name in pending:
        by_workload.setdefault(workload_name, []).append(policy_name)
    for workload_name, policy_names in by_workload.items():
        trace = trace_map[workload_name]
        if len(policy_names) >= 2:
            rollouts = [RolloutSpec(policy=policy_name, config=config,
                                    mode=mode, detail=engine.detail,
                                    max_records=max_records)
                        for policy_name in policy_names]
            results = BatchSimulator(trace).run(rollouts)
        else:
            results = [engine.run(trace, get_policy(policy_name))
                       for policy_name in policy_names]
        for policy_name, result in zip(policy_names, results):
            entry = database.add_result(
                result, workload_description=description_map[workload_name])
            if store is not None:
                persist(workload_name, policy_name, entry)
    return database
