"""Cache statistical expert: per-PC, per-set and whole-trace statistics.

The paper's Sieve pipeline includes a "Cache Statistical Expert" stage that,
for the PCs present in a retrieved slice, computes "miss rate, access and
eviction reuse distances, and percentage of bad evictions" (section 3.2.3).
:class:`CacheStatisticalExpert` implements exactly those helpers on top of a
trace :class:`~repro.tracedb.table.Table`, plus the per-set hotness and
whole-trace summaries the metadata string and the insight analyses need.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.tracedb.schema import HIT_LABEL, MISS_LABEL, NEVER_REUSED
from repro.tracedb.table import Table


@dataclass
class PCStatistics:
    """Aggregated behaviour of one program counter in a trace."""

    pc: str
    accesses: int
    hits: int
    misses: int
    evictions_caused: int
    mean_accessed_reuse_distance: Optional[float]
    mean_evicted_reuse_distance: Optional[float]
    reuse_distance_std: Optional[float]
    mean_recency: Optional[float]
    bad_eviction_fraction: Optional[float]
    function_name: str = ""

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def summary(self) -> str:
        reuse = (f"{self.mean_accessed_reuse_distance:.1f}"
                 if self.mean_accessed_reuse_distance is not None else "n/a")
        return (f"PC {self.pc}: {self.accesses} accesses, "
                f"{self.miss_rate * 100:.2f}% miss rate, "
                f"mean reuse distance {reuse}"
                + (f", function {self.function_name}" if self.function_name else ""))


@dataclass
class SetStatistics:
    """Aggregated behaviour of one cache set."""

    set_id: int
    accesses: int
    hits: int

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


@dataclass
class WorkloadStatistics:
    """Whole-trace summary used to build the metadata string."""

    total_accesses: int
    total_misses: int
    total_evictions: int
    compulsory_misses: int
    capacity_misses: int
    conflict_misses: int
    wrong_evictions: int
    recency_miss_correlation: Optional[float]
    unique_pcs: int
    unique_addresses: int

    @property
    def miss_rate(self) -> float:
        return self.total_misses / self.total_accesses if self.total_accesses else 0.0

    @property
    def hit_rate(self) -> float:
        return 1.0 - self.miss_rate

    @property
    def wrong_eviction_fraction(self) -> float:
        if not self.total_evictions:
            return 0.0
        return self.wrong_evictions / self.total_evictions


def _pearson(xs: Sequence[float], ys: Sequence[float]) -> Optional[float]:
    """Pearson correlation; None when undefined (fewer than 2 points or a
    zero-variance series)."""
    if len(xs) < 2 or len(xs) != len(ys):
        return None
    mean_x = sum(xs) / len(xs)
    mean_y = sum(ys) / len(ys)
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x <= 0 or var_y <= 0:
        return None
    return cov / math.sqrt(var_x * var_y)


class CacheStatisticalExpert:
    """Computes per-PC / per-set / whole-trace statistics over a trace table.

    Row lookups (PC slices, exact-equality counts, hit/miss outcomes) are
    expressed as declarative :class:`repro.analytics.Query` objects and
    executed through a tabular-store ``backend`` (``"stdlib"`` by default;
    ``"sqlite"`` spills the trace to disk first).  The cross-column row
    logic (bad-eviction classification, recency/miss correlation) stays as
    explicit loops — it is row-wise conditional logic the declarative layer
    deliberately does not model.
    """

    def __init__(self, table: Table, backend: str = "stdlib"):
        self.table = table
        self._backend_name = backend
        self._store = None

    # ------------------------------------------------------------------
    # analytics engine plumbing
    # ------------------------------------------------------------------
    def _engine(self):
        """The lazily-created tabular store with the trace registered."""
        if self._store is None:
            from repro.analytics import create_backend

            self._store = create_backend(self._backend_name)
            self._store.register_table("trace", self.table)
        return self._store

    def _slice_query(self, **conditions) -> Table:
        """Rows matching exact-equality ``conditions``, via the engine."""
        from repro.analytics import Filter, Query

        return self._engine().execute(Query(
            table="trace",
            filters=tuple(Filter(name, "eq", value)
                          for name, value in conditions.items()),
        ))

    # ------------------------------------------------------------------
    # per-PC statistics
    # ------------------------------------------------------------------
    def pcs(self) -> List[str]:
        """Unique program counters in first-seen order."""
        return self.table["program_counter"].unique()

    def pc_slice(self, pc: str) -> Table:
        return self._slice_query(program_counter=pc)

    def pc_statistics(self, pc: str) -> PCStatistics:
        """Full statistics for one program counter."""
        rows = self.pc_slice(pc)
        accesses = len(rows)
        hits = sum(1 for value in rows["evict"].values if value == HIT_LABEL)
        misses = accesses - hits
        evicted = [value for value in rows["evicted_address"].values if value]
        accessed_rd = [value for value in
                       rows["accessed_address_reuse_distance_numeric"].values
                       if value is not None and value != NEVER_REUSED]
        evicted_rd = [value for value in
                      rows["evicted_address_reuse_distance_numeric"].values
                      if value is not None and value != NEVER_REUSED]
        recency = [value for value in
                   rows["accessed_address_recency_numeric"].values
                   if value is not None and value != NEVER_REUSED]
        bad_fraction = self._bad_eviction_fraction(rows)
        function_names = [value for value in rows["function_name"].values if value]
        reuse_std = None
        if accessed_rd:
            mean_rd = sum(accessed_rd) / len(accessed_rd)
            reuse_std = math.sqrt(
                sum((value - mean_rd) ** 2 for value in accessed_rd) / len(accessed_rd))
        return PCStatistics(
            pc=pc,
            accesses=accesses,
            hits=hits,
            misses=misses,
            evictions_caused=len(evicted),
            mean_accessed_reuse_distance=(
                sum(accessed_rd) / len(accessed_rd) if accessed_rd else None),
            mean_evicted_reuse_distance=(
                sum(evicted_rd) / len(evicted_rd) if evicted_rd else None),
            reuse_distance_std=reuse_std,
            mean_recency=sum(recency) / len(recency) if recency else None,
            bad_eviction_fraction=bad_fraction,
            function_name=function_names[0] if function_names else "",
        )

    def all_pc_statistics(self) -> List[PCStatistics]:
        return [self.pc_statistics(pc) for pc in self.pcs()]

    @staticmethod
    def _bad_eviction_fraction(rows: Table) -> Optional[float]:
        """Fraction of evictions where the victim was needed sooner than the
        inserted line ("wrong"/"bad" evictions in the paper)."""
        bad = 0
        total = 0
        for row in rows.iter_rows():
            if not row["evicted_address"]:
                continue
            total += 1
            evicted_rd = row["evicted_address_reuse_distance_numeric"]
            accessed_rd = row["accessed_address_reuse_distance_numeric"]
            if evicted_rd is None or evicted_rd == NEVER_REUSED:
                continue
            if accessed_rd is None or accessed_rd == NEVER_REUSED or evicted_rd < accessed_rd:
                bad += 1
        if total == 0:
            return None
        return bad / total

    # ------------------------------------------------------------------
    # per-set statistics
    # ------------------------------------------------------------------
    def sets(self) -> List[int]:
        return sorted(self.table["cache_set_id"].unique())

    def set_statistics(self, set_id: int) -> SetStatistics:
        rows = self._slice_query(cache_set_id=set_id)
        hits = sum(1 for value in rows["evict"].values if value == HIT_LABEL)
        return SetStatistics(set_id=set_id, accesses=len(rows), hits=hits)

    def all_set_statistics(self) -> List[SetStatistics]:
        return [self.set_statistics(set_id) for set_id in self.sets()]

    def hot_and_cold_sets(self, count: int = 5,
                          by: str = "accesses") -> Tuple[List[int], List[int]]:
        """Return the ``count`` hottest and coldest sets.

        ``by`` selects the hotness metric: ``"accesses"`` (activity) or
        ``"hit_rate"`` (the metric used in the Figure 13 chat session).
        """
        stats = self.all_set_statistics()
        if by == "hit_rate":
            ordered = sorted(stats, key=lambda s: (s.hit_rate, s.accesses), reverse=True)
        else:
            ordered = sorted(stats, key=lambda s: (s.accesses, s.hit_rate), reverse=True)
        hot = [s.set_id for s in ordered[:count]]
        cold = [s.set_id for s in ordered[-count:]] if len(ordered) >= count else []
        return hot, cold

    # ------------------------------------------------------------------
    # whole-trace statistics
    # ------------------------------------------------------------------
    def workload_statistics(self) -> WorkloadStatistics:
        table = self.table
        total = len(table)
        misses = sum(value for value in table["is_miss"].values)
        evictions = sum(1 for value in table["evicted_address"].values if value)
        miss_types = table["miss_type"].value_counts()
        wrong = 0
        recency_values: List[float] = []
        miss_values: List[float] = []
        for row in table.iter_rows():
            if row["evicted_address"]:
                evicted_rd = row["evicted_address_reuse_distance_numeric"]
                accessed_rd = row["accessed_address_reuse_distance_numeric"]
                if evicted_rd is not None and evicted_rd != NEVER_REUSED:
                    if (accessed_rd is None or accessed_rd == NEVER_REUSED
                            or evicted_rd < accessed_rd):
                        wrong += 1
            recency = row["accessed_address_recency_numeric"]
            if recency is not None and recency != NEVER_REUSED:
                recency_values.append(float(recency))
                miss_values.append(float(row["is_miss"]))
        return WorkloadStatistics(
            total_accesses=total,
            total_misses=misses,
            total_evictions=evictions,
            compulsory_misses=miss_types.get("Compulsory", 0),
            capacity_misses=miss_types.get("Capacity", 0),
            conflict_misses=miss_types.get("Conflict", 0),
            wrong_evictions=wrong,
            recency_miss_correlation=_pearson(recency_values, miss_values),
            unique_pcs=len(table["program_counter"].unique()),
            unique_addresses=len(table["memory_address"].unique()),
        )

    # ------------------------------------------------------------------
    # convenience lookups used by retrievers and the bench generator
    # ------------------------------------------------------------------
    def count(self, **conditions) -> int:
        """Number of rows matching exact-equality conditions."""
        from repro.analytics import Aggregate, Filter, Query

        result = self._engine().execute(Query(
            table="trace",
            filters=tuple(Filter(name, "eq", value)
                          for name, value in conditions.items()),
            aggregates=(Aggregate("count", alias="n"),),
        ))
        return result["n"].values[0]

    def hit_or_miss(self, pc: str, address: str) -> Optional[str]:
        """Outcome label of the first access matching (pc, address)."""
        rows = self._slice_query(program_counter=pc, memory_address=address)
        if len(rows) == 0:
            return None
        outcomes = rows["evict"].values
        # The paper's benchmark treats the (pc, address) pair as a single
        # verifiable fact; report the majority outcome for robustness.
        hits = sum(1 for value in outcomes if value == HIT_LABEL)
        return HIT_LABEL if hits * 2 > len(outcomes) else MISS_LABEL

    def miss_rate_for_pc(self, pc: str) -> Optional[float]:
        rows = self.pc_slice(pc)
        if len(rows) == 0:
            return None
        return sum(rows["is_miss"].values) / len(rows)

    def mean_evicted_reuse_distance_for_pc(self, pc: str) -> Optional[float]:
        rows = self.pc_slice(pc)
        values = [value for value in
                  rows["evicted_address_reuse_distance_numeric"].values
                  if value is not None and value != NEVER_REUSED]
        if not values:
            return None
        return sum(values) / len(values)
