"""Per-access record schema for the external trace database.

Section 4.3 of the paper documents one row per LLC access with the columns
listed in :data:`ACCESS_COLUMNS`.  :class:`AccessRecord` is the in-memory
representation produced by the simulation engine; ``records_to_table``
materialises a list of records into a :class:`~repro.tracedb.table.Table`
with exactly that schema, which is what Sieve filters and Ranger-generated
code query.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.tracedb.table import Table

#: Column order of the per-access data frame (paper section 4.3).
ACCESS_COLUMNS: Tuple[str, ...] = (
    "access_index",
    "program_counter",
    "memory_address",
    "cache_set_id",
    "evict",
    "miss_type",
    "evicted_address",
    "accessed_address_recency",
    "accessed_address_reuse_distance",
    "evicted_address_reuse_distance",
    "function_name",
    "function_code",
    "assembly_code",
    "current_cache_lines",
    "recent_access_history",
    "cache_line_eviction_scores",
    "current_cache_line_addresses",
    "evicted_address_reuse_distance_numeric",
    "accessed_address_reuse_distance_numeric",
    "accessed_address_recency_numeric",
    "is_miss",
)

#: Value stored in ``evict`` for a hit / miss (the paper reuses the column
#: name ``evict`` for the access outcome).
HIT_LABEL = "Cache Hit"
MISS_LABEL = "Cache Miss"

#: Miss taxonomy labels.
MISS_TYPE_NONE = ""
MISS_TYPE_COMPULSORY = "Compulsory"
MISS_TYPE_CAPACITY = "Capacity"
MISS_TYPE_CONFLICT = "Conflict"

#: Sentinel reuse distance for "never reused again".
NEVER_REUSED = -1


def format_pc(pc: int) -> str:
    """Render a program counter the way the paper does (``0x401e31``)."""
    return f"0x{pc:x}"


def format_address(address: int) -> str:
    """Render a memory (block) address the way the paper does."""
    return f"0x{address:x}"


def describe_recency(recency: Optional[int]) -> str:
    """Map a numeric recency (intervening accesses) onto the textual
    descriptor stored in ``accessed_address_recency``."""
    if recency is None or recency < 0:
        return "never seen before"
    if recency <= 8:
        return "very recently accessed"
    if recency <= 64:
        return "recently accessed"
    if recency <= 512:
        return "moderately recent"
    return "not recently accessed"


def describe_reuse_distance(distance: Optional[int]) -> str:
    """Map a numeric forward reuse distance onto a textual descriptor."""
    if distance is None or distance < 0:
        return "never reused"
    if distance <= 16:
        return f"reused almost immediately (in {distance} accesses)"
    if distance <= 256:
        return f"reused soon (in {distance} accesses)"
    if distance <= 4096:
        return f"reused after a while (in {distance} accesses)"
    return f"reused far in the future (in {distance} accesses)"


@dataclass
class AccessRecord:
    """One LLC access with its eviction / reuse / source-context annotations."""

    access_index: int
    program_counter: int
    memory_address: int
    cache_set_id: int
    is_hit: bool
    miss_type: str = MISS_TYPE_NONE
    evicted_address: Optional[int] = None
    accessed_reuse_distance: Optional[int] = None
    evicted_reuse_distance: Optional[int] = None
    accessed_recency: Optional[int] = None
    function_name: str = ""
    function_code: str = ""
    assembly_code: str = ""
    current_cache_lines: List[Tuple[str, str]] = field(default_factory=list)
    recent_access_history: List[Tuple[str, str]] = field(default_factory=list)
    cache_line_eviction_scores: List[Tuple[int, float]] = field(default_factory=list)

    @property
    def is_miss(self) -> bool:
        return not self.is_hit

    @property
    def outcome_label(self) -> str:
        return HIT_LABEL if self.is_hit else MISS_LABEL

    def to_row(self) -> Dict[str, Any]:
        """Convert this record to a row matching :data:`ACCESS_COLUMNS`."""
        accessed_rd = (
            self.accessed_reuse_distance
            if self.accessed_reuse_distance is not None
            else NEVER_REUSED
        )
        evicted_rd = (
            self.evicted_reuse_distance
            if self.evicted_reuse_distance is not None
            else NEVER_REUSED
        )
        recency = (
            self.accessed_recency if self.accessed_recency is not None else NEVER_REUSED
        )
        current_lines = [
            (format_address(addr) if isinstance(addr, int) else str(addr),
             format_pc(pc) if isinstance(pc, int) else str(pc))
            for addr, pc in self.current_cache_lines
        ]
        history = [
            (format_address(addr) if isinstance(addr, int) else str(addr),
             format_pc(pc) if isinstance(pc, int) else str(pc))
            for addr, pc in self.recent_access_history
        ]
        return {
            "access_index": self.access_index,
            "program_counter": format_pc(self.program_counter),
            "memory_address": format_address(self.memory_address),
            "cache_set_id": self.cache_set_id,
            "evict": self.outcome_label,
            "miss_type": self.miss_type,
            "evicted_address": (
                format_address(self.evicted_address)
                if self.evicted_address is not None
                else ""
            ),
            "accessed_address_recency": describe_recency(self.accessed_recency),
            "accessed_address_reuse_distance": describe_reuse_distance(
                self.accessed_reuse_distance
            ),
            "evicted_address_reuse_distance": describe_reuse_distance(
                self.evicted_reuse_distance
            ),
            "function_name": self.function_name,
            "function_code": self.function_code,
            "assembly_code": self.assembly_code,
            "current_cache_lines": current_lines,
            "recent_access_history": history,
            "cache_line_eviction_scores": list(self.cache_line_eviction_scores),
            "current_cache_line_addresses": [addr for addr, _pc in current_lines],
            "evicted_address_reuse_distance_numeric": evicted_rd,
            "accessed_address_reuse_distance_numeric": accessed_rd,
            "accessed_address_recency_numeric": recency,
            "is_miss": 0 if self.is_hit else 1,
        }


def records_to_table(records: Sequence[AccessRecord]) -> Table:
    """Materialise access records into the canonical data-frame layout."""
    return Table.from_rows([record.to_row() for record in records],
                           columns=ACCESS_COLUMNS)


def table_to_records(table: Table) -> List[AccessRecord]:
    """Best-effort inverse of :func:`records_to_table` (used in tests)."""
    records = []
    for row in table.iter_rows():
        accessed_rd = row.get("accessed_address_reuse_distance_numeric", NEVER_REUSED)
        evicted_rd = row.get("evicted_address_reuse_distance_numeric", NEVER_REUSED)
        recency = row.get("accessed_address_recency_numeric", NEVER_REUSED)
        evicted_address = row.get("evicted_address") or None
        records.append(
            AccessRecord(
                access_index=row.get("access_index", 0),
                program_counter=int(row["program_counter"], 16),
                memory_address=int(row["memory_address"], 16),
                cache_set_id=row["cache_set_id"],
                is_hit=row["evict"] == HIT_LABEL,
                miss_type=row.get("miss_type", MISS_TYPE_NONE),
                evicted_address=(
                    int(evicted_address, 16) if evicted_address else None
                ),
                accessed_reuse_distance=(
                    None if accessed_rd == NEVER_REUSED else accessed_rd
                ),
                evicted_reuse_distance=(
                    None if evicted_rd == NEVER_REUSED else evicted_rd
                ),
                accessed_recency=None if recency == NEVER_REUSED else recency,
                function_name=row.get("function_name", ""),
                function_code=row.get("function_code", ""),
                assembly_code=row.get("assembly_code", ""),
            )
        )
    return records


def record_field_names() -> List[str]:
    """Field names of :class:`AccessRecord` (useful for tests/docs)."""
    return [f.name for f in fields(AccessRecord)]
