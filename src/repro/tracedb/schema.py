"""Per-access record schema for the external trace database.

Section 4.3 of the paper documents one row per LLC access with the columns
listed in :data:`ACCESS_COLUMNS`.  :class:`AccessLog` is the columnar
in-memory representation the simulation engine appends into (typed arrays
plus ragged object columns); :meth:`AccessLog.to_table` builds the canonical
:class:`~repro.tracedb.table.Table` column-by-column, which is what Sieve
filters and Ranger-generated code query.  :class:`AccessRecord` remains the
per-access *row view* — ``AccessLog.to_records`` materialises it on demand,
and ``records_to_table`` still converts row lists for hand-built inputs; both
paths produce byte-identical tables.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.tracedb.table import Table

#: Column order of the per-access data frame (paper section 4.3).
ACCESS_COLUMNS: Tuple[str, ...] = (
    "access_index",
    "program_counter",
    "memory_address",
    "cache_set_id",
    "evict",
    "miss_type",
    "evicted_address",
    "accessed_address_recency",
    "accessed_address_reuse_distance",
    "evicted_address_reuse_distance",
    "function_name",
    "function_code",
    "assembly_code",
    "current_cache_lines",
    "recent_access_history",
    "cache_line_eviction_scores",
    "current_cache_line_addresses",
    "evicted_address_reuse_distance_numeric",
    "accessed_address_reuse_distance_numeric",
    "accessed_address_recency_numeric",
    "is_miss",
)

#: Value stored in ``evict`` for a hit / miss (the paper reuses the column
#: name ``evict`` for the access outcome).
HIT_LABEL = "Cache Hit"
MISS_LABEL = "Cache Miss"

#: Miss taxonomy labels.
MISS_TYPE_NONE = ""
MISS_TYPE_COMPULSORY = "Compulsory"
MISS_TYPE_CAPACITY = "Capacity"
MISS_TYPE_CONFLICT = "Conflict"

#: Sentinel reuse distance for "never reused again".
NEVER_REUSED = -1

#: Miss-type labels indexed by the byte code stored in ``AccessLog``.
MISS_TYPE_LABELS = (MISS_TYPE_NONE, MISS_TYPE_COMPULSORY, MISS_TYPE_CAPACITY,
                    MISS_TYPE_CONFLICT)
#: Inverse mapping (label -> byte code) used by producers.
MISS_TYPE_CODES = {label: code for code, label in enumerate(MISS_TYPE_LABELS)}


def format_pc(pc: int) -> str:
    """Render a program counter the way the paper does (``0x401e31``)."""
    return f"0x{pc:x}"


def format_address(address: int) -> str:
    """Render a memory (block) address the way the paper does."""
    return f"0x{address:x}"


def describe_recency(recency: Optional[int]) -> str:
    """Map a numeric recency (intervening accesses) onto the textual
    descriptor stored in ``accessed_address_recency``."""
    if recency is None or recency < 0:
        return "never seen before"
    if recency <= 8:
        return "very recently accessed"
    if recency <= 64:
        return "recently accessed"
    if recency <= 512:
        return "moderately recent"
    return "not recently accessed"


def describe_reuse_distance(distance: Optional[int]) -> str:
    """Map a numeric forward reuse distance onto a textual descriptor."""
    if distance is None or distance < 0:
        return "never reused"
    if distance <= 16:
        return f"reused almost immediately (in {distance} accesses)"
    if distance <= 256:
        return f"reused soon (in {distance} accesses)"
    if distance <= 4096:
        return f"reused after a while (in {distance} accesses)"
    return f"reused far in the future (in {distance} accesses)"


@dataclass
class AccessRecord:
    """One LLC access with its eviction / reuse / source-context annotations."""

    access_index: int
    program_counter: int
    memory_address: int
    cache_set_id: int
    is_hit: bool
    miss_type: str = MISS_TYPE_NONE
    evicted_address: Optional[int] = None
    accessed_reuse_distance: Optional[int] = None
    evicted_reuse_distance: Optional[int] = None
    accessed_recency: Optional[int] = None
    function_name: str = ""
    function_code: str = ""
    assembly_code: str = ""
    current_cache_lines: List[Tuple[str, str]] = field(default_factory=list)
    recent_access_history: List[Tuple[str, str]] = field(default_factory=list)
    cache_line_eviction_scores: List[Tuple[int, float]] = field(default_factory=list)

    @property
    def is_miss(self) -> bool:
        return not self.is_hit

    @property
    def outcome_label(self) -> str:
        return HIT_LABEL if self.is_hit else MISS_LABEL

    def to_row(self) -> Dict[str, Any]:
        """Convert this record to a row matching :data:`ACCESS_COLUMNS`."""
        accessed_rd = (
            self.accessed_reuse_distance
            if self.accessed_reuse_distance is not None
            else NEVER_REUSED
        )
        evicted_rd = (
            self.evicted_reuse_distance
            if self.evicted_reuse_distance is not None
            else NEVER_REUSED
        )
        recency = (
            self.accessed_recency if self.accessed_recency is not None else NEVER_REUSED
        )
        current_lines = [
            (format_address(addr) if isinstance(addr, int) else str(addr),
             format_pc(pc) if isinstance(pc, int) else str(pc))
            for addr, pc in self.current_cache_lines
        ]
        history = [
            (format_address(addr) if isinstance(addr, int) else str(addr),
             format_pc(pc) if isinstance(pc, int) else str(pc))
            for addr, pc in self.recent_access_history
        ]
        return {
            "access_index": self.access_index,
            "program_counter": format_pc(self.program_counter),
            "memory_address": format_address(self.memory_address),
            "cache_set_id": self.cache_set_id,
            "evict": self.outcome_label,
            "miss_type": self.miss_type,
            "evicted_address": (
                format_address(self.evicted_address)
                if self.evicted_address is not None
                else ""
            ),
            "accessed_address_recency": describe_recency(self.accessed_recency),
            "accessed_address_reuse_distance": describe_reuse_distance(
                self.accessed_reuse_distance
            ),
            "evicted_address_reuse_distance": describe_reuse_distance(
                self.evicted_reuse_distance
            ),
            "function_name": self.function_name,
            "function_code": self.function_code,
            "assembly_code": self.assembly_code,
            "current_cache_lines": current_lines,
            "recent_access_history": history,
            "cache_line_eviction_scores": list(self.cache_line_eviction_scores),
            "current_cache_line_addresses": [addr for addr, _pc in current_lines],
            "evicted_address_reuse_distance_numeric": evicted_rd,
            "accessed_address_reuse_distance_numeric": accessed_rd,
            "accessed_address_recency_numeric": recency,
            "is_miss": 0 if self.is_hit else 1,
        }


class AccessLog:
    """Columnar accumulator of per-access annotations (the engine's output).

    Scalar columns live in typed arrays (``-1`` encodes "absent" for the
    optional reuse/recency/eviction values, matching :data:`NEVER_REUSED`).
    The ragged snapshot columns — resident lines, recent history, eviction
    scores — are packed into *flat* typed arrays plus prefix-offset arrays
    (row ``i`` owns the flat span ``offsets[i]:offsets[i+1]``), so the whole
    log pickles/unpickles at buffer speed: no per-tuple object cost, which
    is what makes the persistent store's warm starts fast.  Per-PC source
    context stays as string lists (pickle deduplicates the shared per-PC
    string objects).  ``to_table`` builds the canonical data frame directly
    from these columns — no intermediate row dictionaries — and is
    byte-identical to ``records_to_table(log.to_records())``.
    """

    __slots__ = ("access_indices", "pcs", "block_addresses", "set_ids",
                 "hit_flags", "miss_type_codes", "evicted_blocks",
                 "accessed_reuse", "evicted_reuse", "recencies",
                 "function_names", "function_codes", "assembly_codes",
                 "line_pairs", "line_offsets", "history_pairs",
                 "history_offsets", "score_blocks", "score_values",
                 "score_offsets")

    def __init__(self) -> None:
        self.access_indices = array("Q")
        self.pcs = array("Q")
        self.block_addresses = array("Q")
        self.set_ids = array("Q")
        self.hit_flags = array("B")
        self.miss_type_codes = array("B")
        self.evicted_blocks = array("q")      # -1 = no eviction
        self.accessed_reuse = array("q")      # NEVER_REUSED = never reused
        self.evicted_reuse = array("q")
        self.recencies = array("q")           # NEVER_REUSED = never seen
        self.function_names: List[str] = []
        self.function_codes: List[str] = []
        self.assembly_codes: List[str] = []
        # Ragged columns: interleaved (block, pc) pairs / parallel
        # (block, score) flats, with per-row prefix offsets into them.
        self.line_pairs = array("Q")
        self.line_offsets = array("Q", [0])
        self.history_pairs = array("Q")
        self.history_offsets = array("Q", [0])
        self.score_blocks = array("Q")
        self.score_values = array("d")
        self.score_offsets = array("Q", [0])

    def __len__(self) -> int:
        return len(self.access_indices)

    # Pickle support: __slots__ classes have no __dict__, and the arrays
    # themselves serialise as raw buffers.
    def __getstate__(self) -> tuple:
        return tuple(getattr(self, name) for name in self.__slots__)

    def __setstate__(self, state: tuple) -> None:
        for name, value in zip(self.__slots__, state):
            setattr(self, name, value)

    def append(self, access_index: int, pc: int, block_address: int,
               set_id: int, is_hit: bool, miss_type_code: int,
               evicted_block: int, accessed_reuse: int, evicted_reuse: int,
               recency: int, function_name: str, function_code: str,
               assembly_code: str, resident: List[Tuple[int, int]],
               history: List[Tuple[int, int]],
               scores: List[Tuple[int, float]]) -> None:
        """Append one access (optional ints already encoded as ``-1``)."""
        self.access_indices.append(access_index)
        self.pcs.append(pc)
        self.block_addresses.append(block_address)
        self.set_ids.append(set_id)
        self.hit_flags.append(1 if is_hit else 0)
        self.miss_type_codes.append(miss_type_code)
        self.evicted_blocks.append(evicted_block)
        self.accessed_reuse.append(accessed_reuse)
        self.evicted_reuse.append(evicted_reuse)
        self.recencies.append(recency)
        self.function_names.append(function_name)
        self.function_codes.append(function_code)
        self.assembly_codes.append(assembly_code)
        line_pairs = self.line_pairs
        for block, line_pc in resident:
            line_pairs.append(block)
            line_pairs.append(line_pc)
        self.line_offsets.append(len(line_pairs))
        history_pairs = self.history_pairs
        for block, history_pc in history:
            history_pairs.append(block)
            history_pairs.append(history_pc)
        self.history_offsets.append(len(history_pairs))
        score_blocks = self.score_blocks
        score_values = self.score_values
        for block, score in scores:
            score_blocks.append(block)
            score_values.append(score)
        self.score_offsets.append(len(score_blocks))

    # ------------------------------------------------------------------
    # ragged-row decoding
    # ------------------------------------------------------------------
    def row_lines(self, i: int) -> List[Tuple[int, int]]:
        """Resident ``(block, pc)`` pairs of row ``i``."""
        flat = self.line_pairs
        start, stop = self.line_offsets[i], self.line_offsets[i + 1]
        return [(flat[j], flat[j + 1]) for j in range(start, stop, 2)]

    def row_history(self, i: int) -> List[Tuple[int, int]]:
        """Recent-access ``(block, pc)`` pairs of row ``i``."""
        flat = self.history_pairs
        start, stop = self.history_offsets[i], self.history_offsets[i + 1]
        return [(flat[j], flat[j + 1]) for j in range(start, stop, 2)]

    def row_scores(self, i: int) -> List[Tuple[int, float]]:
        """Eviction-score ``(block, score)`` pairs of row ``i``."""
        start, stop = self.score_offsets[i], self.score_offsets[i + 1]
        blocks = self.score_blocks
        values = self.score_values
        return [(blocks[j], values[j]) for j in range(start, stop)]

    # ------------------------------------------------------------------
    def to_table(self) -> Table:
        """Build the canonical data frame column-by-column (no row dicts).

        Every formatted value matches :meth:`AccessRecord.to_row` exactly,
        so tables from this path are byte-identical to the row-materialised
        ``records_to_table`` output.
        """
        size = len(self)
        formatted_lines = [
            [(format_address(addr), format_pc(pc)) for addr, pc in self.row_lines(i)]
            for i in range(size)
        ]
        columns: Dict[str, List[Any]] = {
            "access_index": list(self.access_indices),
            "program_counter": [format_pc(pc) for pc in self.pcs],
            "memory_address": [format_address(addr)
                               for addr in self.block_addresses],
            "cache_set_id": list(self.set_ids),
            "evict": [HIT_LABEL if hit else MISS_LABEL
                      for hit in self.hit_flags],
            "miss_type": [MISS_TYPE_LABELS[code]
                          for code in self.miss_type_codes],
            "evicted_address": [format_address(block) if block >= 0 else ""
                                for block in self.evicted_blocks],
            # describe_recency / describe_reuse_distance already treat a
            # negative value exactly like None, so the -1 encoding feeds them
            # directly.
            "accessed_address_recency": [describe_recency(value)
                                         for value in self.recencies],
            "accessed_address_reuse_distance": [
                describe_reuse_distance(value) for value in self.accessed_reuse],
            "evicted_address_reuse_distance": [
                describe_reuse_distance(value) for value in self.evicted_reuse],
            "function_name": list(self.function_names),
            "function_code": list(self.function_codes),
            "assembly_code": list(self.assembly_codes),
            "current_cache_lines": formatted_lines,
            "recent_access_history": [
                [(format_address(addr), format_pc(pc))
                 for addr, pc in self.row_history(i)]
                for i in range(size)],
            "cache_line_eviction_scores": [self.row_scores(i)
                                           for i in range(size)],
            "current_cache_line_addresses": [
                [addr for addr, _pc in lines] for lines in formatted_lines],
            "evicted_address_reuse_distance_numeric": list(self.evicted_reuse),
            "accessed_address_reuse_distance_numeric": list(self.accessed_reuse),
            "accessed_address_recency_numeric": list(self.recencies),
            "is_miss": [0 if hit else 1 for hit in self.hit_flags],
        }
        return Table.from_columns({name: columns[name]
                                   for name in ACCESS_COLUMNS})

    def to_records(self) -> List[AccessRecord]:
        """Materialise the row view (compatibility / inspection path)."""
        records = []
        for i in range(len(self)):
            evicted = self.evicted_blocks[i]
            accessed_rd = self.accessed_reuse[i]
            evicted_rd = self.evicted_reuse[i]
            recency = self.recencies[i]
            records.append(AccessRecord(
                access_index=self.access_indices[i],
                program_counter=self.pcs[i],
                memory_address=self.block_addresses[i],
                cache_set_id=self.set_ids[i],
                is_hit=bool(self.hit_flags[i]),
                miss_type=MISS_TYPE_LABELS[self.miss_type_codes[i]],
                evicted_address=None if evicted < 0 else evicted,
                accessed_reuse_distance=(None if accessed_rd == NEVER_REUSED
                                         else accessed_rd),
                evicted_reuse_distance=(None if evicted_rd == NEVER_REUSED
                                        else evicted_rd),
                accessed_recency=None if recency == NEVER_REUSED else recency,
                function_name=self.function_names[i],
                function_code=self.function_codes[i],
                assembly_code=self.assembly_codes[i],
                current_cache_lines=self.row_lines(i),
                recent_access_history=self.row_history(i),
                cache_line_eviction_scores=self.row_scores(i),
            ))
        return records


def records_to_table(records: Sequence[AccessRecord]) -> Table:
    """Materialise access records into the canonical data-frame layout."""
    return Table.from_rows([record.to_row() for record in records],
                           columns=ACCESS_COLUMNS)


def table_to_records(table: Table) -> List[AccessRecord]:
    """Best-effort inverse of :func:`records_to_table` (used in tests)."""
    records = []
    for row in table.iter_rows():
        accessed_rd = row.get("accessed_address_reuse_distance_numeric", NEVER_REUSED)
        evicted_rd = row.get("evicted_address_reuse_distance_numeric", NEVER_REUSED)
        recency = row.get("accessed_address_recency_numeric", NEVER_REUSED)
        evicted_address = row.get("evicted_address") or None
        records.append(
            AccessRecord(
                access_index=row.get("access_index", 0),
                program_counter=int(row["program_counter"], 16),
                memory_address=int(row["memory_address"], 16),
                cache_set_id=row["cache_set_id"],
                is_hit=row["evict"] == HIT_LABEL,
                miss_type=row.get("miss_type", MISS_TYPE_NONE),
                evicted_address=(
                    int(evicted_address, 16) if evicted_address else None
                ),
                accessed_reuse_distance=(
                    None if accessed_rd == NEVER_REUSED else accessed_rd
                ),
                evicted_reuse_distance=(
                    None if evicted_rd == NEVER_REUSED else evicted_rd
                ),
                accessed_recency=None if recency == NEVER_REUSED else recency,
                function_name=row.get("function_name", ""),
                function_code=row.get("function_code", ""),
                assembly_code=row.get("assembly_code", ""),
            )
        )
    return records


def record_field_names() -> List[str]:
    """Field names of :class:`AccessRecord` (useful for tests/docs)."""
    return [f.name for f in fields(AccessRecord)]
