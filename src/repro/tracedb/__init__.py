"""Trace database substrate.

This package provides the external store that CacheMind retrievers query:

* :class:`~repro.tracedb.table.Table` -- a small columnar, pandas-like table
  used instead of a pandas ``DataFrame`` (filtering, group-by, aggregation,
  sorting).
* :mod:`~repro.tracedb.schema` -- the per-access record schema documented in
  section 4.3 of the paper (program counter, memory address, reuse distances,
  eviction metadata, source/assembly context, ...).
* :mod:`~repro.tracedb.database` -- the builder that simulates every
  workload under every policy and assembles the ``loaded_data`` dictionary
  keyed by ``<workload>_evictions_<policy>``.
* :mod:`~repro.tracedb.metadata` -- the whole-trace metadata summary string.
* :mod:`~repro.tracedb.stats` -- the "cache statistical expert": per-PC and
  per-set statistics (miss rates, reuse distances, wrong-eviction ratios).
* :mod:`~repro.tracedb.store` -- the versioned persistent on-disk store
  (:class:`~repro.tracedb.store.TraceStore`) that lets fresh processes load
  entries/results instead of re-simulating.
* :mod:`~repro.tracedb.objstore` -- the storage substrate under the store:
  content-addressed sharded immutable objects plus the append-only,
  byte-identically rebuildable index log.
"""

from repro.tracedb.table import Table, Column
from repro.tracedb.schema import (
    ACCESS_COLUMNS,
    AccessLog,
    AccessRecord,
    records_to_table,
    table_to_records,
)
from repro.tracedb.store import (
    STORE_SCHEMA_VERSION,
    TraceStore,
    entry_key,
    simulation_key,
)
from repro.tracedb.metadata import TraceMetadata, build_metadata_string
from repro.tracedb.stats import (
    CacheStatisticalExpert,
    PCStatistics,
    SetStatistics,
    WorkloadStatistics,
)
from repro.tracedb.database import (
    TraceDatabase,
    TraceEntry,
    build_database,
    make_entry,
    trace_key,
    parse_trace_key,
)

__all__ = [
    "Table",
    "Column",
    "ACCESS_COLUMNS",
    "AccessLog",
    "AccessRecord",
    "records_to_table",
    "table_to_records",
    "STORE_SCHEMA_VERSION",
    "TraceStore",
    "entry_key",
    "simulation_key",
    "TraceMetadata",
    "build_metadata_string",
    "CacheStatisticalExpert",
    "PCStatistics",
    "SetStatistics",
    "WorkloadStatistics",
    "TraceDatabase",
    "TraceEntry",
    "build_database",
    "make_entry",
    "trace_key",
    "parse_trace_key",
]
