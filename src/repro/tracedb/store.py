"""Persistent on-disk store for simulation results and database entries.

The in-process :class:`~repro.core.pipeline.SimulationCache` memoises within
one interpreter; :class:`TraceStore` extends that across processes: every
computed :class:`~repro.tracedb.database.TraceEntry` (and bare
:class:`~repro.sim.engine.SimulationResult`) can be written to a store
directory and re-loaded by later sessions or parallel workers, so a warm
start runs **zero** simulations.

Layout — one directory per store:

* ``manifest.json`` — ``{"schema": N, "created_at": ...}``.  Opening a store
  whose manifest declares a different :data:`STORE_SCHEMA_VERSION` raises
  :class:`~repro.errors.StoreVersionError` (never silently mixes layouts);
  ``python -m repro store gc`` opens non-strictly, drops the foreign
  records and re-stamps the manifest.
* ``entry-<digest>.pkl`` / ``result-<digest>.pkl`` — one record per cached
  object: a small uncompressed header block (``{"schema", "kind",
  "key_repr"}``) followed by the zlib-compressed pickled payload, so
  maintenance commands (``info``/``gc``) read a few hundred bytes per
  record instead of decompressing whole simulation logs.  ``digest`` is a
  SHA-256 prefix of the key's canonical ``repr``; the stored ``key_repr``
  is verified on load, so a (vanishingly unlikely) digest collision
  degrades to a miss, never a wrong answer.

Keys cover everything that determines a simulation's output — the trace
content fingerprint, hierarchy config, policy, engine mode/detail and the
record cap (see :func:`simulation_key`) — mirroring the in-memory memoiser,
so the two layers always agree on identity.

Robustness: the store self-heals.  A corrupt or truncated record file of any
kind is **quarantined** (renamed into ``quarantine/`` so it is never
re-read-crashed) and treated as a cache miss — the caller rebuilds and
overwrites — with a :class:`StoreCorruptionWarning` so the degradation is
visible.  A corrupt manifest is quarantined and rebuilt from the surviving
record headers (a *readable* manifest declaring a foreign schema still
raises :class:`~repro.errors.StoreVersionError` — that is a real version
mismatch, not damage).  :meth:`TraceStore.verify` deep-checks every record
(magic, header, payload decompression, filename↔key digest) and with
``repair=True`` quarantines what is broken — exposed as ``python -m repro
store verify [--repair]``.  Writes are atomic (temp file + ``os.replace``)
so concurrent sessions sharing a store directory never observe half-written
records.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import struct
import tempfile
import time
import warnings
import zlib
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.errors import StoreVersionError
from repro.faults import fault_point

#: Bump when the on-disk record layout changes incompatibly.
STORE_SCHEMA_VERSION = 1

#: Subdirectory corrupt files are renamed into instead of deleted, so a
#: damaged record can never crash a reader twice and forensics stay
#: possible.  Its contents are invisible to every read path.
QUARANTINE_DIR = "quarantine"

#: Magic prefix of every record file (schema v1: pickled header block +
#: zlib-compressed pickled payload).
RECORD_MAGIC = b"CMST1\n"

#: Header-length prefix layout (little-endian uint32 after the magic).
_HEADER_LEN = struct.Struct("<I")

#: Name of the per-store metadata file.
MANIFEST_NAME = "manifest.json"

#: Record kinds persisted by the store.
KIND_ENTRY = "entry"
KIND_RESULT = "result"
KIND_EXPERIMENT = "experiment"
KIND_TRACE = "trace"
KINDS = (KIND_ENTRY, KIND_RESULT, KIND_EXPERIMENT, KIND_TRACE)


class StoreCorruptionWarning(UserWarning):
    """A store record could not be read and will be rebuilt."""


def simulation_key(engine, trace, policy_name: str) -> tuple:
    """Canonical identity of one simulation run.

    ``trace.fingerprint()`` keys by content, so a hand-built trace sharing
    (workload, length, seed) metadata with a generated one cannot collide.
    The same tuple keys the in-memory
    :class:`~repro.core.pipeline.SimulationCache` and the on-disk store.
    """
    return (trace.workload, policy_name, engine.config, engine.mode,
            engine.detail, len(trace), trace.seed, trace.fingerprint(),
            engine.max_records, engine.history_window,
            engine.annotate_context)


def entry_key(engine, trace, policy_name: str, description: str = "") -> tuple:
    """Identity of one derived database entry (simulation key + description)."""
    return simulation_key(engine, trace, policy_name) + (description,)


def key_digest(key: tuple) -> str:
    """Stable filename-safe digest of a cache key.

    Keys contain only strings, ints, ``None`` and frozen config dataclasses,
    all of which ``repr`` deterministically.
    """
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()[:32]


def _experiment_key_from_repr(key_repr: str) -> tuple:
    """Recover an experiment record's ``(fingerprint,)`` key from the header.

    Experiment keys are one-string tuples whose fingerprint is a hex digest,
    so ``ast.literal_eval`` on the stored canonical repr is safe and exact.
    """
    import ast

    key = ast.literal_eval(key_repr)
    if (not isinstance(key, tuple) or len(key) != 1
            or not isinstance(key[0], str)):
        raise ValueError(f"malformed experiment key repr {key_repr!r}")
    return key


class TraceStore:
    """Versioned on-disk cache of trace-database entries and results.

    ``strict=False`` skips the manifest schema check instead of raising
    :class:`StoreVersionError` — used by maintenance commands (``gc``) that
    must be able to open a foreign-version store to clean it up.
    """

    def __init__(self, root: str, schema_version: int = STORE_SCHEMA_VERSION,
                 strict: bool = True):
        self.root = os.fspath(root)
        self.schema_version = schema_version
        self.saves = 0
        self.loads = 0
        self.load_misses = 0
        os.makedirs(self.root, exist_ok=True)
        self._check_or_write_manifest(strict)

    # ------------------------------------------------------------------
    # manifest
    # ------------------------------------------------------------------
    def _manifest_path(self) -> str:
        return os.path.join(self.root, MANIFEST_NAME)

    def _write_manifest(self) -> None:
        self._atomic_write_bytes(self._manifest_path(), json.dumps({
            "schema": self.schema_version,
            "created_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        }, indent=2).encode("utf-8"))

    def _read_manifest_schema(self) -> Tuple[str, Any]:
        """Classify the manifest: ``("ok", schema)``, ``("corrupt", error)``
        or ``("missing", None)``."""
        path = self._manifest_path()
        try:
            with open(path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except FileNotFoundError:
            return ("missing", None)
        except (OSError, ValueError) as error:
            return ("corrupt", error)
        if not isinstance(manifest, dict):
            return ("corrupt",
                    ValueError(f"manifest is {type(manifest).__name__}, "
                               f"not an object"))
        return ("ok", manifest.get("schema"))

    def _check_or_write_manifest(self, strict: bool) -> None:
        state, detail = self._read_manifest_schema()
        if state == "missing":
            self._write_manifest()
            return
        if not strict:
            return
        if state == "corrupt":
            self._rebuild_manifest(detail)
            return
        if detail != self.schema_version:
            raise StoreVersionError(
                f"trace store at {self.root!r} was written with schema "
                f"version {detail!r}; this build reads version "
                f"{self.schema_version}. Run `python -m repro store gc "
                f"--dir {self.root}` (or delete the directory) to "
                f"rebuild.")

    def _rebuild_manifest(self, error: Any) -> None:
        """Self-heal an unreadable/corrupt manifest from the record headers.

        Safe only when every readable record declares the current schema (an
        empty store trivially qualifies); a store full of foreign records is
        a genuine version mismatch and still refuses to open.
        """
        survivors = 0
        foreign = set()
        for _name, header in self.iter_records():
            survivors += 1
            if header.get("schema") != self.schema_version:
                foreign.add(header.get("schema"))
        if foreign:
            raise StoreVersionError(
                f"trace store manifest {self._manifest_path()!r} is corrupt "
                f"({error}) and surviving records declare schema version(s) "
                f"{sorted(map(repr, foreign))}; run `python -m repro store "
                f"gc --dir {self.root}` (or delete the directory) to "
                f"rebuild.")
        self._quarantine(MANIFEST_NAME)
        self._write_manifest()
        warnings.warn(
            f"trace store manifest at {self.root!r} was corrupt ({error!r}); "
            f"quarantined it and rebuilt from {survivors} surviving record "
            f"header(s)",
            StoreCorruptionWarning, stacklevel=3)

    def _atomic_write_bytes(self, path: str, data: bytes) -> None:
        handle, temp_path = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(handle, "wb") as temp:
                temp.write(data)
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    # record IO
    # ------------------------------------------------------------------
    def _record_path(self, kind: str, key: tuple) -> str:
        return os.path.join(self.root, f"{kind}-{key_digest(key)}.pkl")

    #: Failures decoding a record's *content*: the file on disk is damaged
    #: (torn write, bit rot), so the reader quarantines it.  Transient I/O
    #: failures (``OSError``) are deliberately excluded — a healthy file
    #: must never be quarantined because one read syscall failed.
    _CONTENT_ERRORS = (pickle.UnpicklingError, EOFError, AttributeError,
                       ImportError, IndexError, KeyError, ValueError,
                       struct.error, zlib.error)

    #: Exceptions that mean "this record is unreadable" rather than a bug.
    _DECODE_ERRORS = (OSError,) + _CONTENT_ERRORS

    @staticmethod
    def _encode_record(header: Dict[str, Any], payload: Any) -> bytes:
        header_bytes = pickle.dumps(header, protocol=4)
        return (RECORD_MAGIC + _HEADER_LEN.pack(len(header_bytes))
                + header_bytes
                + zlib.compress(pickle.dumps(payload, protocol=4), 1))

    @staticmethod
    def _decode_header(handle) -> Dict[str, Any]:
        """Read just the small header block from an open record file."""
        magic = handle.read(len(RECORD_MAGIC))
        if magic != RECORD_MAGIC:
            raise ValueError("missing record magic")
        (header_len,) = _HEADER_LEN.unpack(handle.read(_HEADER_LEN.size))
        header = pickle.loads(handle.read(header_len))
        if not isinstance(header, dict):
            raise ValueError("malformed record header")
        return header

    def save(self, kind: str, key: tuple, payload: Any,
             extra_header: Optional[Dict[str, Any]] = None) -> str:
        """Persist one record atomically; returns the path written.

        Payloads are zlib-compressed pickles (the columnar logs are highly
        repetitive, so this shrinks the store several-fold at negligible
        load cost) preceded by a small uncompressed header block, so
        ``info``/``gc`` never decompress payloads.  ``extra_header`` keys
        ride in that block — used by trace records to expose their manifest
        metadata without decompressing the trace itself.
        """
        if kind not in KINDS:
            raise ValueError(f"kind must be one of {KINDS}")
        header = {
            "schema": self.schema_version,
            "kind": kind,
            "key_repr": repr(key),
        }
        if extra_header:
            for reserved in ("schema", "kind", "key_repr"):
                if reserved in extra_header:
                    raise ValueError(
                        f"extra_header may not override {reserved!r}")
            header.update(extra_header)
        path = self._record_path(kind, key)
        # The fault point sits here (not in _atomic_write_bytes) so chaos
        # plans count record writes, not manifest re-stamps, and a
        # "truncate" rule models a torn write of this record's bytes.
        data = fault_point("store.write", self._encode_record(header, payload))
        self._atomic_write_bytes(path, data)
        self.saves += 1
        return path

    def load(self, kind: str, key: tuple) -> Optional[Any]:
        """Load one record, or ``None`` (with a warning if it was corrupt).

        Any failure mode — missing file, truncated pickle, foreign schema,
        digest collision — degrades to a miss so callers simply rebuild.
        Damaged files are quarantined so they can never crash a second
        read; transient I/O failures leave the file in place.
        """
        path = self._record_path(kind, key)
        try:
            fault_point("store.read")
            with open(path, "rb") as handle:
                header = self._decode_header(handle)
                mismatched = (header.get("schema") != self.schema_version
                              or header.get("kind") != kind
                              or header.get("key_repr") != repr(key))
                payload = (None if mismatched else
                           pickle.loads(zlib.decompress(handle.read())))
        except FileNotFoundError:
            self.load_misses += 1
            return None
        except self._CONTENT_ERRORS as error:
            quarantined = self._quarantine(os.path.basename(path))
            warnings.warn(
                f"trace store record {path!r} is corrupt ({error!r}); "
                + (f"quarantined at {quarantined!r} and "
                   if quarantined else "")
                + "treating as a miss and rebuilding",
                StoreCorruptionWarning, stacklevel=2)
            self.load_misses += 1
            return None
        except OSError as error:
            warnings.warn(
                f"trace store record {path!r} is unreadable ({error!r}); "
                f"treating as a miss and rebuilding",
                StoreCorruptionWarning, stacklevel=2)
            self.load_misses += 1
            return None
        if mismatched:
            warnings.warn(
                f"trace store record {path!r} does not match its key/schema; "
                f"treating as a miss and rebuilding",
                StoreCorruptionWarning, stacklevel=2)
            self.load_misses += 1
            return None
        self.loads += 1
        return payload

    # ------------------------------------------------------------------
    # typed wrappers
    # ------------------------------------------------------------------
    def save_entry(self, key: tuple, entry) -> str:
        return self.save(KIND_ENTRY, key, entry)

    def load_entry(self, key: tuple):
        return self.load(KIND_ENTRY, key)

    def save_result(self, key: tuple, result) -> str:
        return self.save(KIND_RESULT, key, result)

    def load_result(self, key: tuple):
        return self.load(KIND_RESULT, key)

    # Trace records are keyed by the content fingerprint alone (the
    # fingerprint hashes the workload name plus all four columns, so one
    # trace maps to exactly one record).  The manifest metadata rides in
    # the uncompressed header block so ``trace list``/``trace info`` never
    # decompress multi-megabyte column payloads.
    def save_trace(self, trace, source: str = "", fmt: str = "") -> str:
        """Persist one ingested :class:`~repro.workloads.trace.MemoryTrace`
        keyed by its content fingerprint."""
        fingerprint_hex = f"{trace.fingerprint():08x}"
        return self.save(KIND_TRACE, (fingerprint_hex,), trace,
                         extra_header={"trace": {
                             "name": trace.workload,
                             "accesses": len(trace),
                             "fingerprint": fingerprint_hex,
                             "source": source,
                             "format": fmt,
                         }})

    def load_trace(self, fingerprint_hex: str):
        return self.load(KIND_TRACE, (fingerprint_hex,))

    def trace_manifest(self) -> List[Dict[str, Any]]:
        """Metadata of every stored trace, name-sorted.

        Header-only (payloads stay compressed on disk): each row is the
        ``{"name", "accesses", "fingerprint", "source", "format"}`` dict
        written at import time.  Rows missing that metadata (foreign or
        damaged headers) are skipped rather than guessed at.
        """
        rows = []
        for _name, header in self.iter_records():
            if header.get("kind") != KIND_TRACE:
                continue
            meta = header.get("trace")
            if (not isinstance(meta, dict) or not meta.get("name")
                    or not meta.get("fingerprint")):
                continue
            rows.append(dict(meta))
        return sorted(rows, key=lambda row: (row["name"],
                                             row["fingerprint"]))

    # Experiment records are keyed by the spec fingerprint alone: the
    # fingerprint already hashes every axis of the grid, so one spec maps to
    # exactly one stored result (re-running overwrites with fresher data).
    def save_experiment(self, fingerprint: str, payload: Dict[str, Any]) -> str:
        """Persist one :class:`ExperimentResult` dictionary under its spec
        fingerprint (``payload`` is the lossless ``to_dict`` form)."""
        return self.save(KIND_EXPERIMENT, (fingerprint,), payload)

    def load_experiment(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        return self.load(KIND_EXPERIMENT, (fingerprint,))

    def experiment_fingerprints(self) -> List[str]:
        """Fingerprints of every stored experiment, sorted.

        Reads only the small uncompressed record headers (the fingerprint
        is the whole key), so prefix resolution never decompresses
        payloads — use :meth:`list_experiments` when the spec summaries
        are actually needed.
        """
        fingerprints = []
        for _name, header in self.iter_records():
            if header.get("kind") != KIND_EXPERIMENT:
                continue
            try:
                key = _experiment_key_from_repr(header.get("key_repr") or "")
            except (ValueError, SyntaxError):
                continue
            fingerprints.append(key[0])
        return sorted(fingerprints)

    def list_experiments(self) -> List[Dict[str, Any]]:
        """Summaries of every stored experiment result, fingerprint-sorted.

        Payloads are loaded (they are small: a spec plus one float row per
        grid cell) so the summary can name the grid shape without callers
        re-deriving it from the fingerprint.
        """
        summaries = []
        for _name, header in self.iter_records():
            if header.get("kind") != KIND_EXPERIMENT:
                continue
            try:
                key = _experiment_key_from_repr(header.get("key_repr") or "")
            except (ValueError, SyntaxError):
                continue
            payload = self.load(KIND_EXPERIMENT, key)
            if payload is None:
                continue
            summaries.append({
                # key[0] IS the fingerprint (the whole record key).
                "fingerprint": payload.get("fingerprint", key[0]),
                "spec": payload.get("spec", {}),
                "cells": len((payload.get("columns") or {}).get("workload",
                                                               ())),
            })
        return sorted(summaries, key=lambda item: item["fingerprint"])

    # ------------------------------------------------------------------
    # inspection / maintenance
    # ------------------------------------------------------------------
    def _record_files(self) -> List[str]:
        names = [name for name in os.listdir(self.root)
                 if name.endswith(".pkl")]
        return sorted(names)

    def _temp_files(self) -> List[str]:
        """Leftover ``.tmp`` files from interrupted atomic writes.

        ``os.replace`` means a live record never has this suffix, so they
        are always safe to delete."""
        return sorted(name for name in os.listdir(self.root)
                      if name.endswith(".tmp"))

    def _unlink_quietly(self, name: str) -> bool:
        """Remove a store file, tolerating a concurrent session racing us."""
        try:
            os.unlink(os.path.join(self.root, name))
            return True
        except OSError:
            return False

    def _quarantine(self, name: str) -> Optional[str]:
        """Rename a damaged store file into ``quarantine/``.

        Returns the new path, or ``None`` if the move failed (e.g. a
        concurrent session already quarantined or rebuilt it) — callers
        degrade to a miss either way.  ``os.replace`` keeps this atomic;
        re-quarantining an identically-named file overwrites the old copy,
        which is fine because equal names mean equal keys.
        """
        source = os.path.join(self.root, name)
        target_dir = os.path.join(self.root, QUARANTINE_DIR)
        try:
            os.makedirs(target_dir, exist_ok=True)
            target = os.path.join(target_dir, name)
            os.replace(source, target)
            return target
        except OSError:
            return None

    def quarantined_files(self) -> List[str]:
        """Names of files previously quarantined (empty if none)."""
        try:
            return sorted(os.listdir(os.path.join(self.root, QUARANTINE_DIR)))
        except OSError:
            return []

    def __len__(self) -> int:
        return len(self._record_files())

    def iter_records(self) -> Iterator[Tuple[str, Dict[str, Any]]]:
        """Yield ``(filename, header)`` for every readable record.

        Only the small header block (``kind``/``schema``/``key_repr``) is
        read per record — payloads are never decompressed — so maintenance
        stays cheap however large the store grows.  Records that vanish
        mid-iteration (a concurrent ``gc``/``clear``) are skipped.
        """
        for name in self._record_files():
            path = os.path.join(self.root, name)
            try:
                with open(path, "rb") as handle:
                    header = self._decode_header(handle)
            except Exception:
                continue
            summary = {"kind": header.get("kind"),
                       "schema": header.get("schema"),
                       "key_repr": header.get("key_repr")}
            if "trace" in header:
                summary["trace"] = header["trace"]
            yield name, summary

    def info(self) -> Dict[str, Any]:
        """Summary of the store: schema, per-kind counts, total bytes."""
        counts = {kind: 0 for kind in KINDS}
        unreadable = 0
        total_bytes = 0
        readable_names = set()
        for name, header in self.iter_records():
            readable_names.add(name)
            kind = header.get("kind")
            if kind in counts:
                counts[kind] += 1
        names = self._record_files()
        for name in names:
            try:
                total_bytes += os.path.getsize(os.path.join(self.root, name))
            except OSError:
                continue  # removed by a concurrent session
            if name not in readable_names:
                unreadable += 1
        return {
            "root": self.root,
            "schema": self.schema_version,
            "records": len(names),
            "entries": counts[KIND_ENTRY],
            "results": counts[KIND_RESULT],
            "experiments": counts[KIND_EXPERIMENT],
            "traces": counts[KIND_TRACE],
            "unreadable": unreadable,
            "quarantined": len(self.quarantined_files()),
            "total_bytes": total_bytes,
            "saves": self.saves,
            "loads": self.loads,
            "load_misses": self.load_misses,
        }

    def verify(self, repair: bool = False) -> Dict[str, Any]:
        """Deep-check every record; optionally quarantine what is broken.

        Unlike :meth:`iter_records` (header-only), this decompresses and
        unpickles every payload and checks that each filename's digest
        matches the key stored in its header, so silent bit rot anywhere in
        a record is caught.  With ``repair=True``: corrupt and misplaced
        records are quarantined, orphaned ``.tmp`` files are deleted, and a
        corrupt manifest is quarantined and re-stamped.  Foreign-schema
        records (and a readable foreign manifest) are *reported* but left
        for ``gc`` — verify never destroys data that another build could
        still read.
        """
        report: Dict[str, Any] = {
            "root": self.root,
            "schema": self.schema_version,
            "checked": 0,
            "ok": 0,
            "by_kind": {kind: 0 for kind in KINDS},
            "corrupt": [],
            "misplaced": [],
            "foreign": [],
            "temp": self._temp_files(),
            "quarantined": [],
            "removed_temp": [],
            "repaired": False,
        }
        manifest_state, manifest_detail = self._read_manifest_schema()
        if manifest_state == "ok" and manifest_detail != self.schema_version:
            manifest_state = "foreign"
        report["manifest"] = manifest_state
        for name in self._record_files():
            report["checked"] += 1
            path = os.path.join(self.root, name)
            try:
                with open(path, "rb") as handle:
                    header = self._decode_header(handle)
                    payload_ok = pickle.loads(zlib.decompress(handle.read()))
                del payload_ok
                key_repr = header.get("key_repr")
                kind = header.get("kind")
                if (not isinstance(key_repr, str)
                        or kind not in KINDS):
                    raise ValueError("malformed header fields")
                if header.get("schema") != self.schema_version:
                    report["foreign"].append(name)
                    continue
                digest = hashlib.sha256(
                    key_repr.encode("utf-8")).hexdigest()[:32]
                if name != f"{kind}-{digest}.pkl":
                    # Valid record content under the wrong filename: it can
                    # never be loaded (lookups go by digest), so it is dead
                    # weight and quarantined on repair.
                    report["misplaced"].append(name)
                    continue
            except self._DECODE_ERRORS as error:
                report["corrupt"].append(name)
                report.setdefault("errors", {})[name] = repr(error)
                continue
            report["ok"] += 1
            report["by_kind"][kind] += 1
        if repair:
            for name in report["corrupt"] + report["misplaced"]:
                target = self._quarantine(name)
                if target is not None:
                    report["quarantined"].append(name)
            for name in report["temp"]:
                if self._unlink_quietly(name):
                    report["removed_temp"].append(name)
            if manifest_state == "corrupt":
                self._quarantine(MANIFEST_NAME)
                self._write_manifest()
                report["manifest"] = "ok"
            report["repaired"] = True
            # "clean" reflects the post-repair state: everything broken
            # either quarantined/removed, or still outstanding.
            leftover = [name for name in report["corrupt"]
                        + report["misplaced"]
                        if name not in report["quarantined"]]
            leftover += [name for name in report["temp"]
                         if name not in report["removed_temp"]]
            report["clean"] = (not leftover and not report["foreign"]
                               and report["manifest"] == "ok")
        else:
            report["clean"] = (not report["corrupt"]
                               and not report["misplaced"]
                               and not report["foreign"]
                               and not report["temp"]
                               and report["manifest"] == "ok")
        return report

    def gc(self, max_records: Optional[int] = None) -> Dict[str, List[str]]:
        """Remove unreadable/foreign records; optionally prune to a budget.

        Unreadable (corrupt/truncated) files, records written with a
        different schema version, and orphaned ``.tmp`` files from
        interrupted writes are always removed.  With ``max_records``, the
        oldest surviving records (by modification time) are pruned until at
        most that many remain.  The manifest is re-stamped with the current
        schema afterwards, so ``gc`` is the supported recovery path for a
        store left behind by a different build (open with ``strict=False``).
        Returns the removed filenames per reason.
        """
        removed = {"corrupt": [], "schema": [], "pruned": [], "temp": []}
        survivors: List[str] = []
        readable: Dict[str, Dict[str, Any]] = dict(self.iter_records())
        for name in self._temp_files():
            if self._unlink_quietly(name):
                removed["temp"].append(name)
        for name in self._record_files():
            header = readable.get(name)
            if header is None:
                if self._unlink_quietly(name):
                    removed["corrupt"].append(name)
            elif header.get("schema") != self.schema_version:
                if self._unlink_quietly(name):
                    removed["schema"].append(name)
            else:
                survivors.append(name)
        if max_records is not None and len(survivors) > max_records:
            def age(name: str) -> float:
                try:
                    return os.path.getmtime(os.path.join(self.root, name))
                except OSError:
                    return 0.0

            by_age = sorted(survivors, key=age)
            for name in by_age[:len(survivors) - max_records]:
                if self._unlink_quietly(name):
                    removed["pruned"].append(name)
        self._write_manifest()
        return removed

    def clear(self) -> int:
        """Delete every record and orphaned temp file (keeps the manifest);
        returns the number of records removed."""
        names = self._record_files()
        count = sum(1 for name in names if self._unlink_quietly(name))
        for name in self._temp_files():
            self._unlink_quietly(name)
        return count

    def __repr__(self) -> str:
        return (f"TraceStore(root={self.root!r}, "
                f"schema={self.schema_version}, records={len(self)})")
