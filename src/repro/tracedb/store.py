"""Persistent on-disk store for simulation results and database entries.

The in-process :class:`~repro.core.pipeline.SimulationCache` memoises within
one interpreter; :class:`TraceStore` extends that across processes: every
computed :class:`~repro.tracedb.database.TraceEntry` (and bare
:class:`~repro.sim.engine.SimulationResult`) can be written to a store
directory and re-loaded by later sessions or parallel workers, so a warm
start runs **zero** simulations.

Layout (sharded, schema v1) — one directory per store:

* ``manifest.json`` — ``{"schema": N, "layout": "sharded", ...}``.  Opening
  a store whose manifest declares a different :data:`STORE_SCHEMA_VERSION`
  raises :class:`~repro.errors.StoreVersionError` (never silently mixes
  layouts); ``python -m repro store gc`` opens non-strictly, drops the
  foreign records and re-stamps the manifest.
* ``objects/<ab>/<kind>-<digest>.pkl`` — one immutable content-addressed
  record per cached object, sharded by the digest's hex prefix: a small
  uncompressed header block (``{"schema", "kind", "key_repr"}``) followed
  by the zlib-compressed pickled payload.  ``digest`` is a SHA-256 prefix
  of the key's canonical ``repr``; the stored ``key_repr`` is verified on
  load, so a (vanishingly unlikely) digest collision degrades to a miss,
  never a wrong answer.  Objects are written atomically (temp file +
  ``os.replace`` inside the shard) and never modified, so concurrent
  writer processes can share a store without locks.
* ``index/log.jsonl`` — the append-only object index: one fsync'd JSON
  line per committed object (see :mod:`repro.tracedb.objstore`).  The
  index is an *accelerator only*: ``info``/``gc``/``trace list``/
  ``experiment_fingerprints`` answer from it without opening a single
  record file, but a missing or torn index never blocks anything —
  readers fall back to the object headers, and :meth:`TraceStore.reindex`
  rebuilds the log **byte-identically** from the headers alone.

The pre-sharding *flat* layout (records at the top level, no index) is
migrated transparently: opening a flat store re-shards it in place
(record bytes untouched, so warm reads stay byte-identical), and
``python -m repro store migrate`` does the same explicitly.

Read-only mounts: ``TraceStore(root, read_only=True)`` refuses every
mutation with :class:`~repro.errors.StoreReadOnlyError` (and never
creates directories, stamps manifests or quarantines files), which is how
the serve layer fronts one shared warm corpus from many replicas while a
single writer keeps appending — atomic object writes and torn-line-
tolerant index replay make concurrent reads race-safe.

Keys cover everything that determines a simulation's output — the trace
content fingerprint, hierarchy config, policy, engine mode/detail and the
record cap (see :func:`simulation_key`) — mirroring the in-memory memoiser,
so the two layers always agree on identity.

Robustness: the store self-heals.  A corrupt or truncated record file of any
kind is **quarantined** (renamed into ``quarantine/`` so it is never
re-read-crashed) and treated as a cache miss — the caller rebuilds and
overwrites — with a :class:`StoreCorruptionWarning` so the degradation is
visible.  A corrupt manifest is quarantined and rebuilt from the surviving
record headers (a *readable* manifest declaring a foreign schema still
raises :class:`~repro.errors.StoreVersionError` — that is a real version
mismatch, not damage).  :meth:`TraceStore.verify` deep-checks every record
(magic+header+zlib+pickle+filename digest+shard placement) and the index
(torn lines, stale entries, unindexed objects); ``repair=True`` quarantines
what is broken, sweeps *stale* temp files (age-gated: a concurrent
writer's fresh ``.tmp`` is never touched) and re-writes the canonical
index — exposed as ``python -m repro store verify [--repair]``.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import struct
import time
import warnings
import zlib
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import StoreReadOnlyError, StoreVersionError
from repro.faults import InjectedFault, fault_point
from repro.tracedb.objstore import (
    INDEX_DIR,
    INDEX_NAME,
    OBJECTS_DIR,
    RECORD_MAGIC,
    TEMP_MAX_AGE_SECONDS,
    AppendOnlyIndex,
    ObjectStore,
    decode_header,
    detect_layout,
    encode_record,
    flat_object_names,
    index_entry_for,
    migrate_flat_objects,
    parse_object_name,
    shard_of,
)

#: Bump when the on-disk record layout changes incompatibly.  The sharded
#: re-layout kept record bytes identical, so it did not bump this.
STORE_SCHEMA_VERSION = 1

#: Subdirectory corrupt files are renamed into instead of deleted, so a
#: damaged record can never crash a reader twice and forensics stay
#: possible.  Its contents are invisible to every read path.
QUARANTINE_DIR = "quarantine"

#: Name of the per-store metadata file.
MANIFEST_NAME = "manifest.json"

#: Record kinds persisted by the store.
KIND_ENTRY = "entry"
KIND_RESULT = "result"
KIND_EXPERIMENT = "experiment"
KIND_TRACE = "trace"
KINDS = (KIND_ENTRY, KIND_RESULT, KIND_EXPERIMENT, KIND_TRACE)


class StoreCorruptionWarning(UserWarning):
    """A store record could not be read and will be rebuilt."""


def simulation_key(engine, trace, policy_name: str) -> tuple:
    """Canonical identity of one simulation run.

    ``trace.fingerprint()`` keys by content, so a hand-built trace sharing
    (workload, length, seed) metadata with a generated one cannot collide.
    The same tuple keys the in-memory
    :class:`~repro.core.pipeline.SimulationCache` and the on-disk store.
    """
    return (trace.workload, policy_name, engine.config, engine.mode,
            engine.detail, len(trace), trace.seed, trace.fingerprint(),
            engine.max_records, engine.history_window,
            engine.annotate_context)


def entry_key(engine, trace, policy_name: str, description: str = "") -> tuple:
    """Identity of one derived database entry (simulation key + description)."""
    return simulation_key(engine, trace, policy_name) + (description,)


def key_digest(key: tuple) -> str:
    """Stable filename-safe digest of a cache key.

    Keys contain only strings, ints, ``None`` and frozen config dataclasses,
    all of which ``repr`` deterministically.
    """
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()[:32]


def _experiment_key_from_repr(key_repr: str) -> tuple:
    """Recover an experiment record's ``(fingerprint,)`` key from the header.

    Experiment keys are one-string tuples whose fingerprint is a hex digest,
    so ``ast.literal_eval`` on the stored canonical repr is safe and exact.
    """
    import ast

    key = ast.literal_eval(key_repr)
    if (not isinstance(key, tuple) or len(key) != 1
            or not isinstance(key[0], str)):
        raise ValueError(f"malformed experiment key repr {key_repr!r}")
    return key


class TraceStore:
    """Versioned on-disk cache of trace-database entries and results.

    ``strict=False`` skips the manifest schema check instead of raising
    :class:`StoreVersionError` — used by maintenance commands (``gc``) that
    must be able to open a foreign-version store to clean it up.
    ``read_only=True`` mounts the store without write access: every
    mutating method raises :class:`~repro.errors.StoreReadOnlyError`,
    nothing on disk is created, stamped or quarantined, and reads stay
    race-safe against a concurrent writer process.
    """

    def __init__(self, root: str, schema_version: int = STORE_SCHEMA_VERSION,
                 strict: bool = True, read_only: bool = False):
        self.root = os.fspath(root)
        self.schema_version = schema_version
        self.read_only = read_only
        self.saves = 0
        self.loads = 0
        self.load_misses = 0
        #: Migration stats when opening re-sharded a flat store, else None.
        self.migration: Optional[Dict[str, Any]] = None
        if read_only:
            if not os.path.isdir(self.root):
                raise FileNotFoundError(
                    f"no trace store at {self.root!r} (read-only mounts "
                    f"never create directories)")
        else:
            os.makedirs(self.root, exist_ok=True)
        self._objects = ObjectStore(self.root, read_only=read_only)
        self._open_layout(strict)

    # ------------------------------------------------------------------
    # counters
    # ------------------------------------------------------------------
    @property
    def record_opens(self) -> int:
        """Record files opened so far (header or payload) by this handle.

        Index-served maintenance (``info``/``gc``/listings on a store with
        a complete index) must leave this untouched — tests assert on it.
        """
        return self._objects.record_opens

    @property
    def index_appends(self) -> int:
        return self._objects.index.appends

    # ------------------------------------------------------------------
    # manifest + layout
    # ------------------------------------------------------------------
    def _manifest_path(self) -> str:
        return os.path.join(self.root, MANIFEST_NAME)

    def _write_manifest(self) -> None:
        if self.read_only:
            raise StoreReadOnlyError(
                f"store at {self.root!r} is mounted read-only")
        self._atomic_write_bytes(self._manifest_path(), json.dumps({
            "schema": self.schema_version,
            "layout": "sharded",
            "created_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        }, indent=2).encode("utf-8"))

    def _read_manifest(self) -> Tuple[str, Any, Optional[str]]:
        """Classify the manifest: ``(state, schema_or_error, layout)`` with
        state one of ``"ok"``/``"corrupt"``/``"missing"``."""
        path = self._manifest_path()
        try:
            with open(path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except FileNotFoundError:
            return ("missing", None, None)
        except (OSError, ValueError) as error:
            return ("corrupt", error, None)
        if not isinstance(manifest, dict):
            return ("corrupt",
                    ValueError(f"manifest is {type(manifest).__name__}, "
                               f"not an object"), None)
        layout = manifest.get("layout")
        return ("ok", manifest.get("schema"),
                layout if isinstance(layout, str) else None)

    def _open_layout(self, strict: bool) -> None:
        state, detail, manifest_layout = self._read_manifest()
        if state == "ok" and strict and detail != self.schema_version:
            raise StoreVersionError(
                f"trace store at {self.root!r} was written with schema "
                f"version {detail!r}; this build reads version "
                f"{self.schema_version}. Run `python -m repro store gc "
                f"--dir {self.root}` (or delete the directory) to "
                f"rebuild.")
        layout = detect_layout(
            self.root, manifest_layout if state == "ok" else None)
        if layout == "flat":
            # Transparent migration: re-shard in place.  Record bytes are
            # untouched, so a migrated store hands back byte-identical
            # payloads with zero re-simulations.
            if self.read_only:
                raise StoreVersionError(
                    f"trace store at {self.root!r} uses the flat layout; "
                    f"run `python -m repro store migrate --dir {self.root}` "
                    f"(read-only mounts cannot migrate in place)")
            self.migration = self.migrate()
            return
        if state == "missing":
            if not self.read_only:
                self._write_manifest()
            return
        if state == "corrupt":
            if self.read_only:
                warnings.warn(
                    f"trace store manifest at {self.root!r} is corrupt "
                    f"({detail!r}); read-only mount cannot heal it — "
                    f"continuing with schema {self.schema_version}",
                    StoreCorruptionWarning, stacklevel=3)
            elif strict:
                self._rebuild_manifest(detail)

    def _rebuild_manifest(self, error: Any) -> None:
        """Self-heal an unreadable/corrupt manifest from the record headers.

        Safe only when every readable record declares the current schema (an
        empty store trivially qualifies); a store full of foreign records is
        a genuine version mismatch and still refuses to open.  Both the
        sharded tree and any not-yet-migrated top-level records are
        scanned, so a flat store's foreign records cannot be adopted.
        """
        survivors = 0
        foreign = set()
        for header in self._survivor_headers():
            survivors += 1
            if header.get("schema") != self.schema_version:
                foreign.add(header.get("schema"))
        if foreign:
            raise StoreVersionError(
                f"trace store manifest {self._manifest_path()!r} is corrupt "
                f"({error}) and surviving records declare schema version(s) "
                f"{sorted(map(repr, foreign))}; run `python -m repro store "
                f"gc --dir {self.root}` (or delete the directory) to "
                f"rebuild.")
        self._quarantine(MANIFEST_NAME)
        self._write_manifest()
        warnings.warn(
            f"trace store manifest at {self.root!r} was corrupt ({error!r}); "
            f"quarantined it and rebuilt from {survivors} surviving record "
            f"header(s)",
            StoreCorruptionWarning, stacklevel=3)

    def _survivor_headers(self) -> Iterator[Dict[str, Any]]:
        for name in self._objects.list_object_names():
            header = self._read_header_quietly(name)
            if header is not None:
                yield header
        for name in flat_object_names(self.root):
            try:
                with open(os.path.join(self.root, name), "rb") as handle:
                    yield decode_header(handle)
            except Exception:
                continue

    def _atomic_write_bytes(self, path: str, data: bytes) -> None:
        import tempfile

        handle, temp_path = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(handle, "wb") as temp:
                temp.write(data)
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise

    @staticmethod
    def detect_layout(root: str) -> str:
        """Classify a store directory without opening it:
        ``"sharded"``/``"flat"``/``"empty"``."""
        manifest_layout = None
        try:
            with open(os.path.join(root, MANIFEST_NAME), "r",
                      encoding="utf-8") as handle:
                manifest = json.load(handle)
            if isinstance(manifest, dict):
                value = manifest.get("layout")
                manifest_layout = value if isinstance(value, str) else None
        except (OSError, ValueError):
            pass
        return detect_layout(root, manifest_layout)

    # ------------------------------------------------------------------
    # record IO
    # ------------------------------------------------------------------
    def _record_name(self, kind: str, key: tuple) -> str:
        return f"{kind}-{key_digest(key)}.pkl"

    def _record_path(self, kind: str, key: tuple) -> str:
        return self._objects.object_path(self._record_name(kind, key))

    #: Failures decoding a record's *content*: the file on disk is damaged
    #: (torn write, bit rot), so the reader quarantines it.  Transient I/O
    #: failures (``OSError``) are deliberately excluded — a healthy file
    #: must never be quarantined because one read syscall failed.
    _CONTENT_ERRORS = (pickle.UnpicklingError, EOFError, AttributeError,
                       ImportError, IndexError, KeyError, ValueError,
                       struct.error, zlib.error)

    #: Exceptions that mean "this record is unreadable" rather than a bug.
    _DECODE_ERRORS = (OSError,) + _CONTENT_ERRORS

    _encode_record = staticmethod(encode_record)
    _decode_header = staticmethod(decode_header)

    def save(self, kind: str, key: tuple, payload: Any,
             extra_header: Optional[Dict[str, Any]] = None) -> str:
        """Persist one record atomically; returns the path written.

        Payloads are zlib-compressed pickles (the columnar logs are highly
        repetitive, so this shrinks the store several-fold at negligible
        load cost) preceded by a small uncompressed header block, so
        ``info``/``gc`` never decompress payloads.  ``extra_header`` keys
        ride in that block — used by trace records to expose their manifest
        metadata without decompressing the trace itself.

        The committed object is then announced in the append-only index
        (one fsync'd line).  A failed index append degrades to compaction
        lag — the record itself is durable and loadable; ``reindex``/
        ``verify --repair``/``gc`` all heal the gap.
        """
        if self.read_only:
            raise StoreReadOnlyError(
                f"store at {self.root!r} is mounted read-only; "
                f"refusing to write {kind} record")
        if kind not in KINDS:
            raise ValueError(f"kind must be one of {KINDS}")
        header = {
            "schema": self.schema_version,
            "kind": kind,
            "key_repr": repr(key),
        }
        if extra_header:
            for reserved in ("schema", "kind", "key_repr"):
                if reserved in extra_header:
                    raise ValueError(
                        f"extra_header may not override {reserved!r}")
            header.update(extra_header)
        name = self._record_name(kind, key)
        # The fault point sits here (not in write_object) so chaos plans
        # count record writes, not manifest re-stamps, and a "truncate"
        # rule models a torn write of this record's bytes.
        data = fault_point("store.write", encode_record(header, payload))
        path = self._objects.write_object(name, data)
        try:
            self._objects.index.append(
                index_entry_for(name, header, len(data)))
        except (OSError, InjectedFault) as error:
            warnings.warn(
                f"trace store index append failed for {name!r} ({error!r}); "
                f"the record is durable and readable — `store reindex` (or "
                f"verify --repair / gc) will re-announce it",
                StoreCorruptionWarning, stacklevel=2)
        self.saves += 1
        return path

    def load(self, kind: str, key: tuple) -> Optional[Any]:
        """Load one record, or ``None`` (with a warning if it was corrupt).

        Any failure mode — missing file, truncated pickle, foreign schema,
        digest collision, torn index — degrades to a miss so callers simply
        rebuild.  Loads never consult the index (object paths are pure
        functions of the key), which is what makes a missing index unable
        to block reads.  Damaged files are quarantined so they can never
        crash a second read (except on read-only mounts, which may not
        mutate anything); transient I/O failures leave the file in place.
        """
        name = self._record_name(kind, key)
        path = self._objects.object_path(name)
        try:
            fault_point("store.read")
            with self._objects.open_object(name) as handle:
                header = decode_header(handle)
                mismatched = (header.get("schema") != self.schema_version
                              or header.get("kind") != kind
                              or header.get("key_repr") != repr(key))
                payload = (None if mismatched else
                           pickle.loads(zlib.decompress(handle.read())))
        except FileNotFoundError:
            self.load_misses += 1
            return None
        except self._CONTENT_ERRORS as error:
            quarantined = (None if self.read_only
                           else self._quarantine(name))
            warnings.warn(
                f"trace store record {path!r} is corrupt ({error!r}); "
                + (f"quarantined at {quarantined!r} and "
                   if quarantined else "")
                + "treating as a miss and rebuilding",
                StoreCorruptionWarning, stacklevel=2)
            self.load_misses += 1
            return None
        except OSError as error:
            warnings.warn(
                f"trace store record {path!r} is unreadable ({error!r}); "
                f"treating as a miss and rebuilding",
                StoreCorruptionWarning, stacklevel=2)
            self.load_misses += 1
            return None
        if mismatched:
            warnings.warn(
                f"trace store record {path!r} does not match its key/schema; "
                f"treating as a miss and rebuilding",
                StoreCorruptionWarning, stacklevel=2)
            self.load_misses += 1
            return None
        self.loads += 1
        return payload

    # ------------------------------------------------------------------
    # typed wrappers
    # ------------------------------------------------------------------
    def save_entry(self, key: tuple, entry) -> str:
        return self.save(KIND_ENTRY, key, entry)

    def load_entry(self, key: tuple):
        return self.load(KIND_ENTRY, key)

    def save_result(self, key: tuple, result) -> str:
        return self.save(KIND_RESULT, key, result)

    def load_result(self, key: tuple):
        return self.load(KIND_RESULT, key)

    # Trace records are keyed by the content fingerprint alone (the
    # fingerprint hashes the workload name plus all four columns, so one
    # trace maps to exactly one record).  The manifest metadata rides in
    # the uncompressed header block *and* the index line, so ``trace
    # list``/``trace info`` decompress nothing and (with a live index)
    # open no record files at all.
    def save_trace(self, trace, source: str = "", fmt: str = "") -> str:
        """Persist one ingested :class:`~repro.workloads.trace.MemoryTrace`
        keyed by its content fingerprint."""
        fingerprint_hex = f"{trace.fingerprint():08x}"
        return self.save(KIND_TRACE, (fingerprint_hex,), trace,
                         extra_header={"trace": {
                             "name": trace.workload,
                             "accesses": len(trace),
                             "fingerprint": fingerprint_hex,
                             "source": source,
                             "format": fmt,
                         }})

    def load_trace(self, fingerprint_hex: str):
        return self.load(KIND_TRACE, (fingerprint_hex,))

    def trace_manifest(self) -> List[Dict[str, Any]]:
        """Metadata of every stored trace, name-sorted.

        Index-served (payloads stay compressed on disk, and with a
        complete index no record file is even opened): each row is the
        ``{"name", "accesses", "fingerprint", "source", "format"}`` dict
        written at import time.  Rows missing that metadata (foreign or
        damaged headers) are skipped rather than guessed at.
        """
        rows = []
        for _name, header in self.iter_records():
            if header.get("kind") != KIND_TRACE:
                continue
            meta = header.get("trace")
            if (not isinstance(meta, dict) or not meta.get("name")
                    or not meta.get("fingerprint")):
                continue
            rows.append(dict(meta))
        return sorted(rows, key=lambda row: (row["name"],
                                             row["fingerprint"]))

    # Experiment records are keyed by the spec fingerprint alone: the
    # fingerprint already hashes every axis of the grid, so one spec maps to
    # exactly one stored result (re-running overwrites with fresher data).
    def save_experiment(self, fingerprint: str, payload: Dict[str, Any]) -> str:
        """Persist one :class:`ExperimentResult` dictionary under its spec
        fingerprint (``payload`` is the lossless ``to_dict`` form)."""
        return self.save(KIND_EXPERIMENT, (fingerprint,), payload)

    def load_experiment(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        return self.load(KIND_EXPERIMENT, (fingerprint,))

    def experiment_fingerprints(self) -> List[str]:
        """Fingerprints of every stored experiment, sorted.

        Index-served (the fingerprint is the whole key, recovered from the
        indexed ``key_repr``): with a complete index this opens zero
        record files — use :meth:`list_experiments` when the spec
        summaries are actually needed.
        """
        fingerprints = []
        for _name, header in self.iter_records():
            if header.get("kind") != KIND_EXPERIMENT:
                continue
            try:
                key = _experiment_key_from_repr(header.get("key_repr") or "")
            except (ValueError, SyntaxError):
                continue
            fingerprints.append(key[0])
        return sorted(fingerprints)

    def list_experiments(self) -> List[Dict[str, Any]]:
        """Summaries of every stored experiment result, fingerprint-sorted.

        Payloads are loaded (they are small: a spec plus one float row per
        grid cell) so the summary can name the grid shape without callers
        re-deriving it from the fingerprint.
        """
        summaries = []
        for fingerprint in self.experiment_fingerprints():
            payload = self.load(KIND_EXPERIMENT, (fingerprint,))
            if payload is None:
                continue
            summaries.append({
                "fingerprint": payload.get("fingerprint", fingerprint),
                "spec": payload.get("spec", {}),
                "cells": len((payload.get("columns") or {}).get("workload",
                                                               ())),
            })
        return sorted(summaries, key=lambda item: item["fingerprint"])

    # ------------------------------------------------------------------
    # index-served view
    # ------------------------------------------------------------------
    def _read_header_quietly(self, name: str) -> Optional[Dict[str, Any]]:
        try:
            return self._objects.read_object_header(name)
        except Exception:
            return None

    def _entry_from_disk(self, name: str) -> Optional[Dict[str, Any]]:
        """Rebuild one object's index entry from the file itself (one
        header read + one stat), or ``None`` if it is unreadable."""
        header = self._read_header_quietly(name)
        if header is None:
            return None
        try:
            size = os.path.getsize(self._objects.object_path(name))
        except OSError:
            return None
        return index_entry_for(name, header, size)

    def _records_view(self) -> Tuple[Dict[str, Optional[Dict[str, Any]]],
                                     Dict[str, Any]]:
        """One coherent picture of the live objects, index-accelerated.

        Returns ``(view, index_health)`` where ``view`` maps every object
        filename on disk to its index entry (``None`` for unreadable
        files).  Objects covered by the index cost **zero** record opens;
        only the delta — objects the index has not seen — pays a header
        read, which is what makes maintenance O(changed) instead of
        O(records).  Stale index entries (object deleted since) are
        excluded from the view and reported in the health block.
        """
        disk = self._objects.list_object_names()
        entries, health = self._objects.index.read()
        view: Dict[str, Optional[Dict[str, Any]]] = {}
        unindexed: List[str] = []
        for name in disk:
            entry = entries.get(name)
            if entry is not None:
                view[name] = entry
            else:
                unindexed.append(name)
        for name in unindexed:
            view[name] = self._entry_from_disk(name)
        disk_set = set(disk)
        stale = sorted(name for name in entries if name not in disk_set)
        covered = len(disk) - len(unindexed)
        health.update({
            "entries": len(entries),
            "live_objects": len(disk),
            "stale_entries": len(stale),
            "unindexed_objects": len(unindexed),
            # Lines a compaction would drop: duplicates, stale, torn.
            "compaction_lag": (health["lines"] + health["invalid_lines"]
                               - covered),
        })
        return view, health

    def __len__(self) -> int:
        return len(self._objects.list_object_names())

    def iter_records(self) -> Iterator[Tuple[str, Dict[str, Any]]]:
        """Yield ``(filename, header_summary)`` for every readable record.

        Served from the append-only index: with a complete index not a
        single record file is opened; unindexed objects (a writer that
        crashed between commit and index append, or a deleted index) fall
        back to a per-object header read.  Records that vanish
        mid-iteration (a concurrent ``gc``/``clear``) are skipped.
        """
        view, _health = self._records_view()
        for name in sorted(view):
            entry = view[name]
            if entry is None:
                continue
            summary = {"kind": entry.get("kind"),
                       "schema": entry.get("schema"),
                       "key_repr": entry.get("key_repr")}
            if "trace" in entry:
                summary["trace"] = entry["trace"]
            yield name, summary

    # ------------------------------------------------------------------
    # inspection / maintenance
    # ------------------------------------------------------------------
    def _quarantine(self, name: str,
                    relpath: Optional[str] = None) -> Optional[str]:
        """Rename a damaged store file into ``quarantine/``.

        ``relpath`` overrides the source location for files found outside
        their canonical shard (verify's "misplaced" case).  Returns the
        new path, or ``None`` if the move failed (e.g. a concurrent
        session already quarantined or rebuilt it) — callers degrade to a
        miss either way.  ``os.replace`` keeps this atomic;
        re-quarantining an identically-named file overwrites the old copy,
        which is fine because equal names mean equal keys.
        """
        if self.read_only:
            return None
        if relpath is None:
            parsed = parse_object_name(name)
            relpath = (os.path.join(OBJECTS_DIR, shard_of(parsed[1]), name)
                       if parsed else name)
        source = os.path.join(self.root, relpath)
        target_dir = os.path.join(self.root, QUARANTINE_DIR)
        try:
            os.makedirs(target_dir, exist_ok=True)
            target = os.path.join(target_dir, name)
            os.replace(source, target)
            return target
        except OSError:
            return None

    def quarantined_files(self) -> List[str]:
        """Names of files previously quarantined (empty if none)."""
        try:
            return sorted(os.listdir(os.path.join(self.root, QUARANTINE_DIR)))
        except OSError:
            return []

    def info(self) -> Dict[str, Any]:
        """Summary of the store: schema, per-kind and per-shard counts,
        index health, total bytes.

        Index-served: with a complete index this opens zero record files
        (``record_opens`` stays flat) — shard listings and size stats are
        directory metadata only.
        """
        view, index_health = self._records_view()
        counts = {kind: 0 for kind in KINDS}
        shards: Dict[str, int] = {}
        by_kind_shard: Dict[str, Dict[str, int]] = {kind: {} for kind in KINDS}
        unreadable = 0
        total_bytes = 0
        for name, entry in view.items():
            parsed = parse_object_name(name)
            shard = shard_of(parsed[1]) if parsed else "??"
            shards[shard] = shards.get(shard, 0) + 1
            try:
                total_bytes += os.path.getsize(self._objects.object_path(name))
            except OSError:
                pass  # removed by a concurrent session
            if entry is None:
                unreadable += 1
                continue
            kind = entry.get("kind")
            if kind in counts:
                counts[kind] += 1
                by_kind_shard[kind][shard] = \
                    by_kind_shard[kind].get(shard, 0) + 1
        return {
            "root": self.root,
            "schema": self.schema_version,
            "layout": "sharded",
            "read_only": self.read_only,
            "records": len(view),
            "entries": counts[KIND_ENTRY],
            "results": counts[KIND_RESULT],
            "experiments": counts[KIND_EXPERIMENT],
            "traces": counts[KIND_TRACE],
            "unreadable": unreadable,
            "quarantined": len(self.quarantined_files()),
            "total_bytes": total_bytes,
            "shards": dict(sorted(shards.items())),
            "by_kind_shard": {kind: dict(sorted(per_shard.items()))
                              for kind, per_shard in by_kind_shard.items()},
            "index": index_health,
            "saves": self.saves,
            "loads": self.loads,
            "load_misses": self.load_misses,
            "record_opens": self.record_opens,
        }

    # ------------------------------------------------------------------
    # index maintenance
    # ------------------------------------------------------------------
    def reindex(self) -> Dict[str, int]:
        """Rebuild the index from the object headers alone.

        The full-scan recovery path (O(records)): every object's header is
        read and the canonical index — one sorted line per readable object
        — atomically replaces the log.  Because index entries are pure
        functions of the headers, a reindex of an uncorrupted store
        reproduces a freshly-compacted index **byte-identically**.
        Unreadable objects are skipped (they are ``gc``'s problem), so a
        torn or deleted index never costs data.
        """
        if self.read_only:
            raise StoreReadOnlyError(
                f"store at {self.root!r} is mounted read-only")
        entries: Dict[str, Dict[str, Any]] = {}
        unreadable = 0
        for name in self._objects.list_object_names():
            entry = self._entry_from_disk(name)
            if entry is None:
                unreadable += 1
                continue
            entries[name] = entry
        self._objects.index.write_canonical(entries)
        return {"indexed": len(entries), "unreadable": unreadable}

    def compact_index(self) -> Dict[str, int]:
        """Rewrite the index in canonical form from the live log.

        O(index): drops duplicate, torn and stale lines without opening a
        single record file.  Does *not* discover unindexed objects — that
        is :meth:`reindex` (full scan) or ``verify --repair``.
        """
        if self.read_only:
            raise StoreReadOnlyError(
                f"store at {self.root!r} is mounted read-only")
        entries, health = self._objects.index.read()
        disk = set(self._objects.list_object_names())
        live = {name: entry for name, entry in entries.items()
                if name in disk}
        self._objects.index.write_canonical(live)
        return {"entries": len(live),
                "dropped_stale": len(entries) - len(live),
                "dropped_duplicates": health["duplicate_lines"],
                "dropped_invalid": health["invalid_lines"]}

    def index_bytes(self) -> bytes:
        """Raw bytes of the index log (empty if missing) — the probe the
        byte-identical-reindex tests compare."""
        try:
            with open(self._objects.index.path, "rb") as handle:
                return handle.read()
        except OSError:
            return b""

    def migrate(self) -> Dict[str, Any]:
        """Re-shard a flat-layout store in place and build its index.

        Idempotent: on an already-sharded store this just reindexes and
        re-stamps the manifest.  Returns
        ``{"moved", "skipped", "indexed", "unreadable"}``.
        """
        if self.read_only:
            raise StoreReadOnlyError(
                f"store at {self.root!r} is mounted read-only")
        stats = migrate_flat_objects(self._objects)
        reindexed = self.reindex()
        self._write_manifest()
        return {"moved": len(stats["moved"]),
                "skipped": len(stats["skipped"]), **reindexed}

    # ------------------------------------------------------------------
    # verify / gc / clear
    # ------------------------------------------------------------------
    def verify(self, repair: bool = False,
               shards: Optional[Sequence[str]] = None,
               temp_max_age: float = TEMP_MAX_AGE_SECONDS) -> Dict[str, Any]:
        """Deep-check every record and the index; optionally heal.

        Unlike the index-served listings, this decompresses and unpickles
        every payload and checks that each filename's digest matches the
        key stored in its header *and* that the file sits in its digest's
        shard, so silent bit rot anywhere in a record is caught.
        ``shards`` restricts the deep check to those shard prefixes (the
        index audit runs only on full verifies).  With ``repair=True``:
        corrupt and misplaced records are quarantined, *stale* ``.tmp``
        files (older than ``temp_max_age`` — a concurrent writer's fresh
        temp is never touched) are deleted, a corrupt manifest is
        quarantined and re-stamped, and the canonical index is rebuilt
        from the verified headers (dropping entries for missing objects,
        announcing unindexed ones).  Foreign-schema records (and a
        readable foreign manifest) are *reported* but left for ``gc`` —
        verify never destroys data that another build could still read.
        """
        report: Dict[str, Any] = {
            "root": self.root,
            "schema": self.schema_version,
            "shards": sorted(shards) if shards else None,
            "checked": 0,
            "ok": 0,
            "by_kind": {kind: 0 for kind in KINDS},
            "corrupt": [],
            "misplaced": [],
            "foreign": [],
            "temp": [],
            "fresh_temp": 0,
            "quarantined": [],
            "removed_temp": [],
            "repaired": False,
        }
        shard_filter = set(shards) if shards else None
        for relpath, age in self._objects.temp_files():
            if age >= temp_max_age:
                report["temp"].append(relpath)
            else:
                report["fresh_temp"] += 1
        manifest_state, manifest_detail, _layout = self._read_manifest()
        if manifest_state == "ok" and manifest_detail != self.schema_version:
            manifest_state = "foreign"
        report["manifest"] = manifest_state
        locations: Dict[str, str] = {}
        ok_entries: Dict[str, Dict[str, Any]] = {}
        for shard, name in self._objects.walk_objects():
            if shard_filter is not None and shard not in shard_filter:
                continue
            report["checked"] += 1
            relpath = os.path.join(OBJECTS_DIR, shard, name)
            locations[name] = relpath
            path = os.path.join(self.root, relpath)
            try:
                size = os.path.getsize(path)
                with self._objects.open_for_verify(path) as handle:
                    header = decode_header(handle)
                    payload_ok = pickle.loads(zlib.decompress(handle.read()))
                del payload_ok
                key_repr = header.get("key_repr")
                kind = header.get("kind")
                if (not isinstance(key_repr, str)
                        or kind not in KINDS):
                    raise ValueError("malformed header fields")
                digest = hashlib.sha256(
                    key_repr.encode("utf-8")).hexdigest()[:32]
                if (name != f"{kind}-{digest}.pkl"
                        or shard != shard_of(digest)):
                    # Valid record content under the wrong filename/shard:
                    # it can never be loaded (lookups go by digest), so it
                    # is dead weight and quarantined on repair.
                    report["misplaced"].append(name)
                    continue
                if header.get("schema") != self.schema_version:
                    # Reported but left for gc; still indexed (the entry
                    # carries its schema) so the heal matches a reindex.
                    report["foreign"].append(name)
                    ok_entries[name] = index_entry_for(name, header, size)
                    continue
            except self._DECODE_ERRORS as error:
                report["corrupt"].append(name)
                report.setdefault("errors", {})[name] = repr(error)
                continue
            report["ok"] += 1
            report["by_kind"][kind] += 1
            ok_entries[name] = index_entry_for(name, header, size)
        if shard_filter is None:
            entries, index_health = self._objects.index.read()
            disk = set(locations)
            report["index"] = {
                "present": index_health["present"],
                "invalid_lines": index_health["invalid_lines"],
                "duplicate_lines": index_health["duplicate_lines"],
                "stale": sorted(name for name in entries
                                if name not in disk),
                "unindexed": sorted(name for name in ok_entries
                                    if name not in entries),
                "healed": False,
            }
        else:
            report["index"] = None
        if repair:
            for name in report["corrupt"] + report["misplaced"]:
                target = self._quarantine(name, relpath=locations.get(name))
                if target is not None:
                    report["quarantined"].append(name)
            for relpath in report["temp"]:
                if self._objects.remove_temp(relpath):
                    report["removed_temp"].append(relpath)
            if manifest_state == "corrupt":
                self._quarantine(MANIFEST_NAME)
                self._write_manifest()
                report["manifest"] = "ok"
            if report["index"] is not None:
                # The canonical index from exactly the records that
                # survived the deep check: stale entries dropped,
                # unindexed objects announced, torn lines gone.
                self._objects.index.write_canonical(ok_entries)
                report["index"]["healed"] = True
            report["repaired"] = True
            # "clean" reflects the post-repair state: everything broken
            # either quarantined/removed, or still outstanding.
            leftover = [name for name in report["corrupt"]
                        + report["misplaced"]
                        if name not in report["quarantined"]]
            leftover += [relpath for relpath in report["temp"]
                         if relpath not in report["removed_temp"]]
            report["clean"] = (not leftover and not report["foreign"]
                               and report["manifest"] == "ok")
        else:
            index_dirty = (report["index"] is not None
                           and (report["index"]["invalid_lines"]
                                or report["index"]["stale"]
                                or report["index"]["unindexed"]))
            report["clean"] = (not report["corrupt"]
                               and not report["misplaced"]
                               and not report["foreign"]
                               and not report["temp"]
                               and not index_dirty
                               and report["manifest"] == "ok")
        return report

    def gc(self, max_records: Optional[int] = None,
           temp_max_age: float = TEMP_MAX_AGE_SECONDS) -> Dict[str, List[str]]:
        """Remove unreadable/foreign records; optionally prune to a budget.

        Index-served: objects the index covers are judged from their index
        entries plus one ``stat`` (zero record opens on a warm store) —
        a file whose size drifted from its indexed entry is re-examined
        from its header; only that changed delta and unindexed objects pay
        header reads, so gc scales with what changed, not with the corpus.
        Unreadable (corrupt/truncated) files and records written with a
        different schema version are always removed (silent *same-size*
        bit rot is ``verify``'s deep-check job).
        Stranded ``.tmp`` files are swept **age-gated** (older than
        ``temp_max_age`` seconds): a concurrent writer's in-progress
        atomic write is never deleted out from under it.  With
        ``max_records``, the oldest surviving records (by modification
        time) are pruned until at most that many remain.  The index is
        compacted to exactly the survivors and the manifest re-stamped
        with the current schema, so ``gc`` is the supported recovery path
        for a store left behind by a different build (open with
        ``strict=False``).  Returns the removed filenames per reason.
        """
        if self.read_only:
            raise StoreReadOnlyError(
                f"store at {self.root!r} is mounted read-only")
        removed = {"corrupt": [], "schema": [], "pruned": [], "temp": []}
        view, _health = self._records_view()
        for relpath, age in self._objects.temp_files():
            if age >= temp_max_age and self._objects.remove_temp(relpath):
                removed["temp"].append(relpath)
        survivors: List[str] = []
        for name in sorted(view):
            entry = view[name]
            if entry is not None:
                # One stat against the indexed size catches objects that
                # changed since they were indexed (truncated, overwritten,
                # re-saved) without opening them; only those drifters pay
                # the header re-read below.
                try:
                    size = os.path.getsize(self._objects.object_path(name))
                except OSError:
                    size = None
                if size != entry.get("size"):
                    entry = self._entry_from_disk(name)
                    view[name] = entry
            if entry is None:
                if self._objects.remove_object(name):
                    removed["corrupt"].append(name)
            elif entry.get("schema") != self.schema_version:
                if self._objects.remove_object(name):
                    removed["schema"].append(name)
            else:
                survivors.append(name)
        if max_records is not None and len(survivors) > max_records:
            def age_of(name: str) -> float:
                try:
                    return os.path.getmtime(self._objects.object_path(name))
                except OSError:
                    return 0.0

            by_age = sorted(survivors, key=age_of)
            for name in by_age[:len(survivors) - max_records]:
                if self._objects.remove_object(name):
                    removed["pruned"].append(name)
                    survivors.remove(name)
        self._objects.index.write_canonical(
            {name: view[name] for name in survivors
             if view[name] is not None})
        self._write_manifest()
        return removed

    def clear(self) -> int:
        """Delete every record, truncate the index and sweep temp files
        regardless of age (keeps the manifest); returns the number of
        records removed."""
        if self.read_only:
            raise StoreReadOnlyError(
                f"store at {self.root!r} is mounted read-only")
        names = self._objects.list_object_names()
        count = sum(1 for name in names if self._objects.remove_object(name))
        for relpath, _age in self._objects.temp_files():
            self._objects.remove_temp(relpath)
        self._objects.index.write_canonical({})
        return count

    def __repr__(self) -> str:
        return (f"TraceStore(root={self.root!r}, "
                f"schema={self.schema_version}, records={len(self)}, "
                f"read_only={self.read_only})")
