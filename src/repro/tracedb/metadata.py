"""Whole-trace metadata summary string.

Each trace-database entry stores a free-form ``metadata`` string summarising
the entire trace (totals, miss rate, miss-type breakdown, wrong-eviction
ratio, recency/miss correlation).  Retrievers fall back to this string when a
query has no PC/address filter, and Ranger-generated code parses numbers out
of it with regular expressions, so the wording follows the example given in
section 4.3 of the paper.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from repro.tracedb.stats import WorkloadStatistics


@dataclass
class TraceMetadata:
    """Parsed view of a metadata string (used by tests and analyses)."""

    total_accesses: int
    total_misses: int
    miss_rate_percent: float
    capacity_miss_percent: float
    conflict_miss_percent: float
    total_evictions: int
    wrong_evictions: int
    wrong_eviction_percent: float
    recency_correlation: Optional[float]


def build_metadata_string(stats: WorkloadStatistics) -> str:
    """Render the whole-trace summary string for one (workload, policy)."""
    total_misses = stats.total_misses
    miss_rate = stats.miss_rate * 100
    capacity_pct = (stats.capacity_misses / total_misses * 100) if total_misses else 0.0
    conflict_pct = (stats.conflict_misses / total_misses * 100) if total_misses else 0.0
    compulsory_pct = (stats.compulsory_misses / total_misses * 100) if total_misses else 0.0
    wrong_pct = stats.wrong_eviction_fraction * 100
    correlation = stats.recency_miss_correlation
    correlation_text = (
        f"{correlation:.2f}" if correlation is not None else "undefined"
    )
    return (
        f"Cache Performance Summary: {stats.total_accesses} total accesses, "
        f"{stats.total_misses} total misses, {miss_rate:.2f}% miss rate, "
        f"{compulsory_pct:.2f}% compulsory misses, "
        f"{capacity_pct:.2f}% capacity misses, "
        f"{conflict_pct:.2f}% conflict misses, "
        f"{stats.total_evictions} total evictions, "
        f"{stats.wrong_evictions} ({wrong_pct:.2f}%) wrong evictions where "
        f"evicted line has lower reuse distance. "
        f"The trace touches {stats.unique_pcs} unique PCs and "
        f"{stats.unique_addresses} unique addresses. "
        f"The correlation between accessed address recency and cache misses "
        f"is {correlation_text}."
    )


_METADATA_PATTERNS = {
    "total_accesses": r"([\d,]+) total accesses",
    "total_misses": r"([\d,]+) total misses",
    "miss_rate_percent": r"([\d.]+)% miss rate",
    "capacity_miss_percent": r"([\d.]+)% capacity misses",
    "conflict_miss_percent": r"([\d.]+)% conflict misses",
    "total_evictions": r"([\d,]+) total evictions",
    "wrong_evictions": r"([\d,]+) \(([\d.]+)%\) wrong evictions",
    # The number must not swallow the sentence-final period ("... is 0.86.").
    "recency_correlation":
        r"recency and cache misses\s+is (-?\d+(?:\.\d+)?|undefined)",
}


def parse_metadata_string(metadata: str) -> TraceMetadata:
    """Parse a metadata string back into structured numbers."""

    def find(pattern: str, group: int = 1) -> Optional[str]:
        match = re.search(pattern, metadata)
        return match.group(group) if match else None

    def as_int(text: Optional[str]) -> int:
        return int(text.replace(",", "")) if text else 0

    def as_float(text: Optional[str]) -> float:
        return float(text) if text else 0.0

    correlation_text = find(_METADATA_PATTERNS["recency_correlation"])
    correlation = (
        None if correlation_text in (None, "undefined") else float(correlation_text)
    )
    return TraceMetadata(
        total_accesses=as_int(find(_METADATA_PATTERNS["total_accesses"])),
        total_misses=as_int(find(_METADATA_PATTERNS["total_misses"])),
        miss_rate_percent=as_float(find(_METADATA_PATTERNS["miss_rate_percent"])),
        capacity_miss_percent=as_float(find(_METADATA_PATTERNS["capacity_miss_percent"])),
        conflict_miss_percent=as_float(find(_METADATA_PATTERNS["conflict_miss_percent"])),
        total_evictions=as_int(find(_METADATA_PATTERNS["total_evictions"])),
        wrong_evictions=as_int(find(_METADATA_PATTERNS["wrong_evictions"], group=1)),
        wrong_eviction_percent=as_float(find(_METADATA_PATTERNS["wrong_evictions"], group=2)),
        recency_correlation=correlation,
    )
