"""Content-addressed sharded object layout with an append-only index.

This module is the storage substrate under
:class:`~repro.tracedb.store.TraceStore`.  It knows nothing about cache
keys or simulation payloads — only about three things:

* **Immutable content-addressed objects.**  Every record is a file named
  ``<kind>-<digest>.pkl`` living in a shard directory derived from its
  digest prefix (``objects/ab/entry-abcdef….pkl``), written atomically
  (temp file + ``os.replace``) and never modified afterwards.  Sharding
  keeps directory fan-out bounded however large the corpus grows, and
  lets maintenance (verify, backup, rsync) operate per-shard.
* **An append-only index log** (``index/log.jsonl``): one fsync'd JSON
  line per committed object, holding exactly the fields recoverable from
  the object's own uncompressed header.  The index is *purely an
  accelerator*: ``info``/``gc``/manifest listings answer from it without
  opening record files, but a missing, torn or stale index never blocks
  reads — readers fall back to the object headers, and
  :meth:`~repro.tracedb.store.TraceStore.reindex` rebuilds the log
  byte-identically from the headers alone.  Appends use ``O_APPEND`` so
  many writer processes can commit concurrently without locks; replay
  ignores torn lines and duplicate entries, so a crash mid-append (or
  two writers racing on the same record) degrades to compaction lag,
  never corruption.
* **The record container codec**: magic + length-prefixed pickled header
  + zlib-compressed pickled payload.  The header block is small and
  uncompressed so header-only scans never decompress payloads.

Canonical form: an index *entry* is the JSON object
``{"kind", "key_repr", "name", "schema", "size"[, "trace"]}`` serialised
with sorted keys and compact separators; the *canonical index* is one
entry line per live object, sorted by object name.  Both compaction (from
the live log) and reindexing (from the object headers + sizes) emit this
exact form, which is what makes ``store reindex`` reproducible
byte-for-byte.
"""

from __future__ import annotations

import json
import os
import pickle
import re
import struct
import tempfile
import time
import zlib
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.errors import StoreReadOnlyError
from repro.faults import fault_point

#: Subdirectory holding the sharded immutable objects.
OBJECTS_DIR = "objects"

#: Subdirectory holding the append-only index log.
INDEX_DIR = "index"

#: Name of the index log file inside :data:`INDEX_DIR`.
INDEX_NAME = "log.jsonl"

#: Magic prefix of every record file (schema v1: pickled header block +
#: zlib-compressed pickled payload).
RECORD_MAGIC = b"CMST1\n"

#: Header-length prefix layout (little-endian uint32 after the magic).
_HEADER_LEN = struct.Struct("<I")

#: ``<kind>-<digest>.pkl`` — kinds are lowercase words, digests 32 hex
#: chars (a SHA-256 prefix of the key's canonical repr).
OBJECT_NAME_RE = re.compile(r"^([a-z]+)-([0-9a-f]{32})\.pkl$")

#: How many leading digest hex chars name the shard directory (256 shards).
SHARD_PREFIX_LEN = 2

#: Age (seconds) below which ``.tmp`` files are presumed to belong to a
#: concurrent writer's in-progress atomic write and must not be swept.
TEMP_MAX_AGE_SECONDS = 600.0

#: Index entry fields recoverable from an object file without touching the
#: payload (header fields plus the file size, which lets maintenance spot a
#: changed or corrupted object with one ``stat``, no open).  ``trace`` is
#: the optional metadata block trace records expose for header-only
#: listings.
_ENTRY_REQUIRED = ("kind", "key_repr", "name", "schema", "size")
_ENTRY_OPTIONAL = ("trace",)


def parse_object_name(name: str) -> Optional[Tuple[str, str]]:
    """``(kind, digest)`` for a well-formed object filename, else ``None``."""
    match = OBJECT_NAME_RE.match(name)
    if match is None:
        return None
    return match.group(1), match.group(2)


def shard_of(digest: str) -> str:
    """Shard directory name for a content digest (its hex prefix)."""
    return digest[:SHARD_PREFIX_LEN]


def object_relpath(name: str) -> Optional[str]:
    """``objects/<shard>/<name>`` for a well-formed object name."""
    parsed = parse_object_name(name)
    if parsed is None:
        return None
    return os.path.join(OBJECTS_DIR, shard_of(parsed[1]), name)


# ----------------------------------------------------------------------
# record container codec
# ----------------------------------------------------------------------
def encode_record(header: Dict[str, Any], payload: Any) -> bytes:
    """Serialise one record: magic, length-prefixed header, zlib payload."""
    header_bytes = pickle.dumps(header, protocol=4)
    return (RECORD_MAGIC + _HEADER_LEN.pack(len(header_bytes))
            + header_bytes
            + zlib.compress(pickle.dumps(payload, protocol=4), 1))


def decode_header(handle) -> Dict[str, Any]:
    """Read just the small header block from an open record file."""
    magic = handle.read(len(RECORD_MAGIC))
    if magic != RECORD_MAGIC:
        raise ValueError("missing record magic")
    (header_len,) = _HEADER_LEN.unpack(handle.read(_HEADER_LEN.size))
    header = pickle.loads(handle.read(header_len))
    if not isinstance(header, dict):
        raise ValueError("malformed record header")
    return header


def index_entry_for(name: str, header: Dict[str, Any],
                    size: int) -> Dict[str, Any]:
    """The canonical index entry for one object, derived from its header
    and byte size.

    A pure function of ``(filename, header, size)`` — the invariant behind
    byte-identical reindexing: appending at commit time (size = the bytes
    just written) and rebuilding from the file later (size = ``stat``)
    must produce the same entry.
    """
    entry: Dict[str, Any] = {
        "kind": header.get("kind"),
        "key_repr": header.get("key_repr"),
        "name": name,
        "schema": header.get("schema"),
        "size": size,
    }
    trace_meta = header.get("trace")
    if isinstance(trace_meta, dict):
        entry["trace"] = trace_meta
    return entry


def _valid_entry(entry: Any) -> bool:
    if not isinstance(entry, dict):
        return False
    if set(entry) - set(_ENTRY_REQUIRED) - set(_ENTRY_OPTIONAL):
        return False
    if any(field not in entry for field in _ENTRY_REQUIRED):
        return False
    name, kind = entry["name"], entry["kind"]
    if not isinstance(name, str) or not isinstance(kind, str):
        return False
    parsed = parse_object_name(name)
    if parsed is None or parsed[0] != kind:
        return False
    if not isinstance(entry["key_repr"], str):
        return False
    if not isinstance(entry["schema"], int):
        return False
    if not isinstance(entry["size"], int) or entry["size"] < 0:
        return False
    if "trace" in entry and not isinstance(entry["trace"], dict):
        return False
    return True


def entry_line(entry: Dict[str, Any]) -> bytes:
    """One canonical index line (compact sorted-key JSON + newline)."""
    return (json.dumps(entry, sort_keys=True,
                       separators=(",", ":")).encode("utf-8") + b"\n")


class AppendOnlyIndex:
    """The ``index/log.jsonl`` append-only object index.

    Appends are a single ``O_APPEND`` write of one complete line followed
    by ``fsync`` — concurrent writer processes interleave whole lines
    without locks.  Reads tolerate everything a crash or a race can leave
    behind: a torn trailing line, corrupt bytes mid-file, duplicate
    entries from two writers committing the same object.  All of that is
    *reported* (so ``info`` can surface index health) but never fatal.
    """

    def __init__(self, root: str, read_only: bool = False) -> None:
        self.root = root
        self.read_only = read_only
        self.path = os.path.join(root, INDEX_DIR, INDEX_NAME)
        self.appends = 0

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def append(self, entry: Dict[str, Any]) -> None:
        """Commit one entry: a single appended, fsync'd line.

        The ``index.append`` fault point mangles the line bytes under
        chaos plans (a ``truncate`` rule models a torn append) — exactly
        the damage :meth:`read` must shrug off.
        """
        if self.read_only:
            raise StoreReadOnlyError(
                f"store at {self.root!r} is mounted read-only")
        line = fault_point("index.append", entry_line(entry))
        os.makedirs(os.path.dirname(self.path), exist_ok=True)
        descriptor = os.open(self.path,
                             os.O_APPEND | os.O_CREAT | os.O_WRONLY, 0o644)
        try:
            os.write(descriptor, line)
            os.fsync(descriptor)
        finally:
            os.close(descriptor)
        self.appends += 1

    def read(self) -> Tuple[Dict[str, Dict[str, Any]], Dict[str, Any]]:
        """Replay the log: ``(entries_by_name, health)``.

        Duplicate names keep the *last* occurrence — a re-save of the same
        key appends a fresh line (possibly a new size), and the newest one
        describes the file actually on disk, so compaction stays
        byte-identical with a reindex.  Invalid or torn lines are skipped
        and counted.  A missing log reads as empty with ``present=False``
        so callers can fall back to header scans.
        """
        health: Dict[str, Any] = {"present": False, "lines": 0,
                                  "invalid_lines": 0, "duplicate_lines": 0}
        try:
            with open(self.path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            return {}, health
        except OSError:
            return {}, health
        health["present"] = True
        entries: Dict[str, Dict[str, Any]] = {}
        segments = data.split(b"\n")
        # A file not ending in a newline has a torn final append; the
        # trailing segment is part of no committed line.
        torn_tail = segments.pop() if segments else b""
        if torn_tail:
            health["invalid_lines"] += 1
        for segment in segments:
            if not segment:
                continue
            health["lines"] += 1
            try:
                entry = json.loads(segment.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                health["invalid_lines"] += 1
                continue
            if not _valid_entry(entry):
                health["invalid_lines"] += 1
                continue
            if entry["name"] in entries:
                health["duplicate_lines"] += 1
            entries[entry["name"]] = entry
        return entries, health

    @staticmethod
    def canonical_bytes(entries: Dict[str, Dict[str, Any]]) -> bytes:
        """The canonical index: one line per entry, sorted by object name."""
        return b"".join(entry_line(entries[name])
                        for name in sorted(entries))

    def write_canonical(self, entries: Dict[str, Dict[str, Any]]) -> None:
        """Atomically replace the log with its canonical form."""
        if self.read_only:
            raise StoreReadOnlyError(
                f"store at {self.root!r} is mounted read-only")
        directory = os.path.dirname(self.path)
        os.makedirs(directory, exist_ok=True)
        handle, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(handle, "wb") as temp:
                temp.write(self.canonical_bytes(entries))
                temp.flush()
                os.fsync(temp.fileno())
            os.replace(temp_path, self.path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise


class ObjectStore:
    """Sharded immutable objects under one root directory.

    ``record_opens`` counts every record file opened (for a header or a
    payload) — the probe tests use to assert that index-served paths
    (``info``/``gc``/listings on a warm store) touch **zero** record
    files.
    """

    def __init__(self, root: str, read_only: bool = False) -> None:
        self.root = os.fspath(root)
        self.read_only = read_only
        self.objects_root = os.path.join(self.root, OBJECTS_DIR)
        self.index = AppendOnlyIndex(self.root, read_only=read_only)
        self.record_opens = 0

    # ------------------------------------------------------------------
    # paths and listing
    # ------------------------------------------------------------------
    def object_path(self, name: str) -> str:
        relpath = object_relpath(name)
        if relpath is None:
            raise ValueError(f"malformed object name {name!r}")
        return os.path.join(self.root, relpath)

    def shard_dirs(self) -> List[str]:
        """Existing shard directory names, sorted."""
        try:
            names = os.listdir(self.objects_root)
        except OSError:
            return []
        return sorted(name for name in names
                      if os.path.isdir(os.path.join(self.objects_root, name)))

    def list_object_names(self) -> List[str]:
        """Every well-formed object filename on disk, sorted.

        One ``listdir`` per shard — no record file is opened, so listing
        stays cheap (and ``record_opens``-invisible) at any corpus size.
        """
        names: List[str] = []
        for shard in self.shard_dirs():
            shard_path = os.path.join(self.objects_root, shard)
            try:
                for name in os.listdir(shard_path):
                    if parse_object_name(name) is not None:
                        names.append(name)
            except OSError:
                continue
        return sorted(names)

    def walk_objects(self) -> Iterable[Tuple[str, str]]:
        """Yield ``(shard, filename)`` for every ``.pkl`` actually on disk.

        Unlike :meth:`list_object_names` this reports files *where they
        sit*, including malformed names and records dropped into the wrong
        shard — which is exactly what ``verify`` must see to flag them as
        misplaced.  No record file is opened.
        """
        for shard in self.shard_dirs():
            shard_path = os.path.join(self.objects_root, shard)
            try:
                names = os.listdir(shard_path)
            except OSError:
                continue
            for name in sorted(names):
                if name.endswith(".pkl"):
                    yield shard, name

    # ------------------------------------------------------------------
    # object IO
    # ------------------------------------------------------------------
    def write_object(self, name: str, data: bytes) -> str:
        """Atomically write one immutable object; returns its path.

        The temp file lives in the destination shard directory so
        ``os.replace`` stays a same-filesystem atomic rename, and an
        interrupted write strands an (age-gated, gc-swept) ``.tmp``
        there, never a half-written object.
        """
        if self.read_only:
            raise StoreReadOnlyError(
                f"store at {self.root!r} is mounted read-only")
        path = self.object_path(name)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        handle, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(handle, "wb") as temp:
                temp.write(data)
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
        return path

    def open_object(self, name: str):
        """Open one record file for reading (counted in ``record_opens``)."""
        self.record_opens += 1
        return open(self.object_path(name), "rb")

    def open_for_verify(self, path: str):
        """Open a record file at its *actual* path (counted in
        ``record_opens``) — verify's deep check must read misplaced files
        where they really sit, not where their name says they belong."""
        self.record_opens += 1
        return open(path, "rb")

    def read_object_header(self, name: str) -> Dict[str, Any]:
        """Decode one object's header block (counted in ``record_opens``)."""
        with self.open_object(name) as handle:
            return decode_header(handle)

    def remove_object(self, name: str) -> bool:
        """Delete one object, tolerating a concurrent session racing us."""
        if self.read_only:
            raise StoreReadOnlyError(
                f"store at {self.root!r} is mounted read-only")
        try:
            os.unlink(self.object_path(name))
            return True
        except OSError:
            return False

    # ------------------------------------------------------------------
    # temp-file hygiene
    # ------------------------------------------------------------------
    def _temp_dirs(self) -> Iterable[str]:
        yield self.root
        yield os.path.join(self.root, INDEX_DIR)
        for shard in self.shard_dirs():
            yield os.path.join(self.objects_root, shard)

    def temp_files(self) -> List[Tuple[str, float]]:
        """``(relative_path, age_seconds)`` of every stranded ``.tmp`` file.

        Ages let callers distinguish an interrupted write's orphan (old)
        from a concurrent writer's in-progress file (fresh) — only the
        former may be swept (see :data:`TEMP_MAX_AGE_SECONDS`).
        """
        now = time.time()
        found: List[Tuple[str, float]] = []
        for directory in self._temp_dirs():
            try:
                names = os.listdir(directory)
            except OSError:
                continue
            for name in names:
                if not name.endswith(".tmp"):
                    continue
                path = os.path.join(directory, name)
                try:
                    age = now - os.path.getmtime(path)
                except OSError:
                    continue  # removed by a concurrent sweep
                found.append((os.path.relpath(path, self.root), age))
        return sorted(found)

    def remove_temp(self, relpath: str) -> bool:
        if self.read_only:
            raise StoreReadOnlyError(
                f"store at {self.root!r} is mounted read-only")
        try:
            os.unlink(os.path.join(self.root, relpath))
            return True
        except OSError:
            return False


# ----------------------------------------------------------------------
# layout detection and migration
# ----------------------------------------------------------------------
def flat_object_names(root: str) -> List[str]:
    """Well-formed record filenames sitting at the top level of ``root``
    (the pre-sharding flat layout), sorted."""
    try:
        names = os.listdir(root)
    except OSError:
        return []
    return sorted(name for name in names
                  if parse_object_name(name) is not None)


def detect_layout(root: str, manifest_layout: Optional[str] = None) -> str:
    """Classify a store directory: ``"sharded"``, ``"flat"`` or ``"empty"``.

    The manifest's ``layout`` field wins when present; otherwise the
    directory shape decides (an ``objects/``/``index/`` tree is sharded,
    top-level ``*.pkl`` records are flat, anything else is an empty/new
    store, which is born sharded).
    """
    if manifest_layout in ("sharded", "flat"):
        return manifest_layout
    if (os.path.isdir(os.path.join(root, OBJECTS_DIR))
            or os.path.isdir(os.path.join(root, INDEX_DIR))):
        return "sharded"
    if flat_object_names(root):
        return "flat"
    return "empty"


def migrate_flat_objects(objects: ObjectStore) -> Dict[str, Any]:
    """Move top-level flat-layout records into their shard directories.

    Record bytes are untouched (`os.replace` of the same file), so a
    migrated store hands back byte-identical payloads.  Unparseable
    ``.pkl`` names are left in place and reported.  Races with a
    concurrent migrator are tolerated — whoever replaces first wins, the
    loser's rename fails quietly.  The caller rebuilds the index
    afterwards (the flat layout never had one).
    """
    moved: List[str] = []
    skipped: List[str] = []
    for name in sorted(os.listdir(objects.root)):
        if not name.endswith(".pkl"):
            continue
        source = os.path.join(objects.root, name)
        if not os.path.isfile(source):
            continue
        if parse_object_name(name) is None:
            skipped.append(name)
            continue
        target = objects.object_path(name)
        try:
            os.makedirs(os.path.dirname(target), exist_ok=True)
            os.replace(source, target)
            moved.append(name)
        except OSError:
            skipped.append(name)
    return {"moved": moved, "skipped": skipped}
