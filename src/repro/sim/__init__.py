"""Trace-driven cache simulator substrate (ChampSim/gem5 stand-in).

The simulator replays a :class:`~repro.workloads.trace.MemoryTrace` through a
configurable cache hierarchy and produces:

* eviction-annotated per-access records for the LLC (the rows of the trace
  database, see :mod:`repro.tracedb.schema`),
* per-level hit/miss statistics,
* an analytic cycle count / IPC estimate used by the actionable-insight use
  cases (bypass, Mockingjay, software prefetching).
"""

from repro.sim.config import (
    CacheConfig,
    CoreConfig,
    DRAMConfig,
    HierarchyConfig,
    PAPER_CONFIG,
    SMALL_CONFIG,
    TINY_CONFIG,
)
from repro.sim.cache import (
    AccessOutcome,
    Cache,
    CacheLine,
    CacheStats,
    DETAIL_FULL,
    DETAIL_LEVELS,
    DETAIL_STATS,
)
from repro.sim.cpu import CPUModel, TimingResult
from repro.sim.hierarchy import CacheHierarchy, HierarchyResult
from repro.sim.engine import (
    PreparedReplay,
    SimulationEngine,
    SimulationResult,
    TraceReuse,
    simulate,
)
from repro.sim.batch import (
    BatchSimulator,
    NATIVE_POLICIES,
    RolloutSpec,
    rollout_strategy,
    run_batch,
)
from repro.sim.parallel import (
    ParallelSimulator,
    SimulationJob,
    default_jobs,
    planned_strategy,
)
from repro.sim.prefetch import NextLinePrefetcher, StridePrefetcher

__all__ = [
    "CacheConfig",
    "CoreConfig",
    "DRAMConfig",
    "HierarchyConfig",
    "PAPER_CONFIG",
    "SMALL_CONFIG",
    "TINY_CONFIG",
    "AccessOutcome",
    "Cache",
    "CacheLine",
    "CacheStats",
    "DETAIL_FULL",
    "DETAIL_LEVELS",
    "DETAIL_STATS",
    "CPUModel",
    "TimingResult",
    "CacheHierarchy",
    "HierarchyResult",
    "SimulationEngine",
    "SimulationResult",
    "PreparedReplay",
    "TraceReuse",
    "simulate",
    "BatchSimulator",
    "NATIVE_POLICIES",
    "RolloutSpec",
    "rollout_strategy",
    "run_batch",
    "ParallelSimulator",
    "SimulationJob",
    "default_jobs",
    "planned_strategy",
    "NextLinePrefetcher",
    "StridePrefetcher",
]
