"""Hardware prefetchers.

The paper's policy-prefetch discussion and the software-prefetch use case
only need simple prefetch machinery:

* :class:`NextLinePrefetcher` issues a prefetch of block ``B + 1`` whenever a
  demand access touches block ``B`` (classic next-line prefetching).
* :class:`StridePrefetcher` tracks per-PC strides and prefetches ``degree``
  blocks ahead once a stride is confirmed twice.

Both produce a list of prefetch block addresses for the hierarchy to install
at the LLC; they are optional and disabled by default so that the baseline
database matches the paper's no-prefetcher setup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


class NextLinePrefetcher:
    """Prefetch the next sequential block on every demand access."""

    name = "next_line"

    def __init__(self, degree: int = 1):
        if degree < 1:
            raise ValueError("degree must be >= 1")
        self.degree = degree
        self.issued = 0

    def on_access(self, pc: int, block_address: int) -> List[int]:
        prefetches = [block_address + offset for offset in range(1, self.degree + 1)]
        self.issued += len(prefetches)
        return prefetches


@dataclass
class _StrideEntry:
    last_block: int
    stride: int = 0
    confidence: int = 0


class StridePrefetcher:
    """Per-PC stride detection with a small confidence counter."""

    name = "stride"

    def __init__(self, degree: int = 2, table_size: int = 256,
                 confidence_threshold: int = 2):
        if degree < 1:
            raise ValueError("degree must be >= 1")
        self.degree = degree
        self.table_size = table_size
        self.confidence_threshold = confidence_threshold
        self._table: Dict[int, _StrideEntry] = {}
        self.issued = 0

    def _index(self, pc: int) -> int:
        return pc % self.table_size

    def on_access(self, pc: int, block_address: int) -> List[int]:
        index = self._index(pc)
        entry = self._table.get(index)
        prefetches: List[int] = []
        if entry is None:
            self._table[index] = _StrideEntry(last_block=block_address)
            return prefetches
        stride = block_address - entry.last_block
        if stride != 0 and stride == entry.stride:
            entry.confidence = min(entry.confidence + 1, 4)
        else:
            entry.confidence = 0
            entry.stride = stride
        entry.last_block = block_address
        if stride != 0 and entry.confidence >= self.confidence_threshold:
            prefetches = [block_address + stride * step
                          for step in range(1, self.degree + 1)]
            self.issued += len(prefetches)
        return prefetches
