"""Simulator configuration (Table 2 of the paper plus scaled-down variants).

``PAPER_CONFIG`` mirrors the processor and memory hierarchy in Table 2 of the
paper.  Because the synthetic traces used by default are much shorter than
the 1-billion-instruction SPEC runs, two scaled-down configurations are also
provided so working sets still exceed the LLC and the policies differentiate:

* ``SMALL_CONFIG`` -- the default for trace-database construction,
* ``TINY_CONFIG``  -- used by fast unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, List, Optional, Union

from repro.errors import UnknownNameError


def _component_to_dict(component) -> Dict[str, Any]:
    """Flat field dictionary of one frozen config dataclass."""
    return {f.name: getattr(component, f.name) for f in fields(component)}


def _component_from_dict(cls, payload: Dict[str, Any]):
    """Rebuild a config dataclass, ignoring unknown keys (forward
    compatibility with payloads written by newer builds)."""
    known = {f.name for f in fields(cls)}
    return cls(**{key: value for key, value in payload.items()
                  if key in known})


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level."""

    name: str
    size_bytes: int
    num_ways: int
    block_bytes: int = 64
    latency_cycles: int = 4
    mshr_entries: int = 16

    @property
    def num_sets(self) -> int:
        sets = self.size_bytes // (self.num_ways * self.block_bytes)
        if sets <= 0:
            raise ValueError(f"{self.name}: size too small for geometry")
        return sets

    @property
    def num_blocks(self) -> int:
        return self.size_bytes // self.block_bytes

    def describe(self) -> str:
        kib = self.size_bytes / 1024
        return (f"{self.name}: {kib:g} KB, {self.num_sets} sets, "
                f"{self.num_ways} ways; {self.latency_cycles}-cycle latency; "
                f"{self.mshr_entries}-entry MSHR")


@dataclass(frozen=True)
class CoreConfig:
    """Out-of-order core parameters used by the analytic timing model."""

    frequency_ghz: float = 4.0
    fetch_width: int = 6
    retire_width: int = 4
    rob_entries: int = 352
    load_queue_entries: int = 128
    store_queue_entries: int = 72
    branch_predictor: str = "bimodal"
    #: fraction of a miss latency that overlaps with other work (memory-level
    #: parallelism / out-of-order tolerance).
    overlap_factor: float = 0.35

    def describe(self) -> str:
        return (f"1 core; {self.frequency_ghz:g} GHz; {self.fetch_width}-wide "
                f"fetch/decode/execute; {self.retire_width}-wide retire; "
                f"{self.rob_entries}-entry ROB; {self.load_queue_entries}-entry LQ; "
                f"{self.store_queue_entries}-entry SQ; {self.branch_predictor} "
                f"branch predictor")


@dataclass(frozen=True)
class DRAMConfig:
    """Main-memory parameters."""

    size_gb: int = 4
    data_rate: str = "DDR4-3200MT/s"
    channels: int = 1
    ranks_per_channel: int = 1
    banks_per_rank: int = 8
    access_latency_cycles: int = 200

    def describe(self) -> str:
        return (f"{self.size_gb} GB; {self.data_rate}; {self.channels} channel; "
                f"{self.ranks_per_channel} rank/channel; {self.banks_per_rank} "
                f"banks/rank; ~{self.access_latency_cycles}-cycle access latency")


@dataclass(frozen=True)
class HierarchyConfig:
    """Full processor + memory hierarchy configuration."""

    name: str
    core: CoreConfig
    l1d: CacheConfig
    l2: CacheConfig
    llc: CacheConfig
    l1i: Optional[CacheConfig] = None
    dram: DRAMConfig = field(default_factory=DRAMConfig)

    def describe(self) -> str:
        lines = [f"configuration '{self.name}':",
                 "  Processor  " + self.core.describe()]
        if self.l1i is not None:
            lines.append("  L1 I-Cache " + self.l1i.describe())
        lines.append("  L1 D-Cache " + self.l1d.describe())
        lines.append("  L2 Cache   " + self.l2.describe())
        lines.append("  LLC        " + self.llc.describe())
        lines.append("  DRAM       " + self.dram.describe())
        return "\n".join(lines)

    def as_table_rows(self) -> Dict[str, str]:
        """Component -> configuration string, mirroring Table 2."""
        rows = {"Processor": self.core.describe()}
        if self.l1i is not None:
            rows["L1 I-Cache"] = self.l1i.describe()
        rows["L1 D-Cache"] = self.l1d.describe()
        rows["L2 Cache"] = self.l2.describe()
        rows["LLC"] = self.llc.describe()
        rows["DRAM"] = self.dram.describe()
        return rows

    def scaled_llc(self, size_bytes: int, num_ways: Optional[int] = None,
                   name: Optional[str] = None) -> "HierarchyConfig":
        """Return a copy with a different LLC capacity (for sweeps).

        ``name`` renames the copy; experiment grids require distinct names
        per distinct configuration, so sweeps should pass one (e.g.
        ``config.scaled_llc(2 * config.llc.size_bytes, name="small-llc2x")``).
        """
        llc = replace(self.llc, size_bytes=size_bytes,
                      num_ways=num_ways if num_ways is not None else self.llc.num_ways)
        return replace(self, llc=llc,
                       name=name if name is not None else self.name)

    # ------------------------------------------------------------------
    # wire format (experiment specs carry whole configs across the wire)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable dictionary with every nested component."""
        return {
            "name": self.name,
            "core": _component_to_dict(self.core),
            "l1i": (_component_to_dict(self.l1i)
                    if self.l1i is not None else None),
            "l1d": _component_to_dict(self.l1d),
            "l2": _component_to_dict(self.l2),
            "llc": _component_to_dict(self.llc),
            "dram": _component_to_dict(self.dram),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "HierarchyConfig":
        """Rebuild a configuration from :meth:`to_dict` output."""
        l1i = payload.get("l1i")
        return cls(
            name=payload["name"],
            core=_component_from_dict(CoreConfig, payload.get("core") or {}),
            l1i=(_component_from_dict(CacheConfig, l1i)
                 if l1i is not None else None),
            l1d=_component_from_dict(CacheConfig, payload["l1d"]),
            l2=_component_from_dict(CacheConfig, payload["l2"]),
            llc=_component_from_dict(CacheConfig, payload["llc"]),
            dram=_component_from_dict(DRAMConfig, payload.get("dram") or {}),
        )


#: Table 2 of the paper.
PAPER_CONFIG = HierarchyConfig(
    name="paper",
    core=CoreConfig(),
    l1i=CacheConfig(name="L1I", size_bytes=32 * 1024, num_ways=8,
                    latency_cycles=4, mshr_entries=8),
    l1d=CacheConfig(name="L1D", size_bytes=32 * 1024, num_ways=8,
                    latency_cycles=4, mshr_entries=16),
    l2=CacheConfig(name="L2", size_bytes=512 * 1024, num_ways=8,
                   latency_cycles=12, mshr_entries=32),
    llc=CacheConfig(name="LLC", size_bytes=2 * 1024 * 1024, num_ways=16,
                    latency_cycles=26, mshr_entries=64),
    dram=DRAMConfig(),
)

#: Scaled-down hierarchy used for the default (short) synthetic traces so
#: that workloads still exceed LLC capacity and policies differentiate.
SMALL_CONFIG = HierarchyConfig(
    name="small",
    core=CoreConfig(),
    l1d=CacheConfig(name="L1D", size_bytes=4 * 1024, num_ways=4,
                    latency_cycles=4, mshr_entries=8),
    l2=CacheConfig(name="L2", size_bytes=16 * 1024, num_ways=8,
                   latency_cycles=12, mshr_entries=16),
    llc=CacheConfig(name="LLC", size_bytes=64 * 1024, num_ways=16,
                    latency_cycles=26, mshr_entries=32),
    dram=DRAMConfig(),
)

#: Miniature hierarchy for fast unit tests.
TINY_CONFIG = HierarchyConfig(
    name="tiny",
    core=CoreConfig(),
    l1d=CacheConfig(name="L1D", size_bytes=1 * 1024, num_ways=2,
                    latency_cycles=2, mshr_entries=4),
    l2=CacheConfig(name="L2", size_bytes=2 * 1024, num_ways=4,
                   latency_cycles=8, mshr_entries=4),
    llc=CacheConfig(name="LLC", size_bytes=4 * 1024, num_ways=4,
                    latency_cycles=20, mshr_entries=8),
    dram=DRAMConfig(access_latency_cycles=150),
)


#: Named configurations resolvable by string (the CLI and experiment specs
#: accept these names anywhere a :class:`HierarchyConfig` is expected).
NAMED_CONFIGS: Dict[str, HierarchyConfig] = {
    "paper": PAPER_CONFIG,
    "small": SMALL_CONFIG,
    "tiny": TINY_CONFIG,
}


def available_configs() -> List[str]:
    """Names of the registered hierarchy configurations, sorted."""
    return sorted(NAMED_CONFIGS)


def register_config(config: HierarchyConfig) -> HierarchyConfig:
    """Register a configuration under its own name (mirrors the policy /
    retriever / backend registries); returns it so the call chains."""
    NAMED_CONFIGS[config.name] = config
    return config


def get_config(name: str) -> HierarchyConfig:
    """The registered configuration for ``name``."""
    if name not in NAMED_CONFIGS:
        raise UnknownNameError(
            f"unknown configuration {name!r}; available: "
            f"{', '.join(available_configs())}")
    return NAMED_CONFIGS[name]


def resolve_config(
        value: Union[str, HierarchyConfig, Dict[str, Any]]) -> HierarchyConfig:
    """Coerce a name, a :meth:`HierarchyConfig.to_dict` payload or a ready
    instance into a :class:`HierarchyConfig` (the experiment-spec input
    contract: names stay convenient, full dictionaries cross the wire)."""
    if isinstance(value, HierarchyConfig):
        return value
    if isinstance(value, str):
        return get_config(value)
    if isinstance(value, dict):
        return HierarchyConfig.from_dict(value)
    raise TypeError(f"cannot resolve {type(value).__name__!r} into a "
                    f"HierarchyConfig (expected name, dict or instance)")
