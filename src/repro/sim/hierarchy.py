"""Multi-level cache hierarchy (L1D -> L2 -> LLC).

The hierarchy is non-inclusive and write-allocate.  L1D and L2 always use
LRU (as in Table 2 of the paper); the LLC uses whatever policy is under
study.  Because the upper levels do not depend on the LLC policy, the stream
of accesses reaching the LLC is identical for every LLC policy, which is what
lets the engine precompute oracle (next-use) information for Belady.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.policies.base import NEVER, ReplacementPolicy
from repro.policies.basic import LRUPolicy
from repro.sim.cache import AccessOutcome, Cache, CacheStats
from repro.sim.config import HierarchyConfig
from repro.sim.cpu import LEVEL_DRAM, LEVEL_L1, LEVEL_L2, LEVEL_LLC
from repro.sim.prefetch import NextLinePrefetcher, StridePrefetcher


@dataclass
class HierarchyResult:
    """Outcome of one access through the full hierarchy."""

    service_level: str
    llc_outcome: Optional[AccessOutcome] = None
    reached_llc: bool = False


class CacheHierarchy:
    """L1D + L2 + LLC with per-level statistics."""

    def __init__(self, config: HierarchyConfig,
                 llc_policy: Optional[ReplacementPolicy] = None,
                 prefetcher: Optional[object] = None):
        self.config = config
        self.l1d = Cache(config.l1d, LRUPolicy())
        self.l2 = Cache(config.l2, LRUPolicy())
        self.llc = Cache(config.llc,
                         llc_policy if llc_policy is not None else LRUPolicy(),
                         classify_misses=True)
        self.prefetcher = prefetcher
        self._access_counter = 0

    # ------------------------------------------------------------------
    def access(self, pc: int, byte_address: int, is_write: bool = False,
               llc_next_use: int = NEVER,
               is_prefetch: bool = False) -> HierarchyResult:
        """Send one access down the hierarchy."""
        self._access_counter += 1
        index = self._access_counter

        l1_outcome = self.l1d.access(pc, byte_address, is_write, index,
                                     is_prefetch=is_prefetch)
        if l1_outcome.hit:
            return HierarchyResult(service_level=LEVEL_L1)

        l2_outcome = self.l2.access(pc, byte_address, is_write, index,
                                    is_prefetch=is_prefetch)
        if l2_outcome.hit:
            return HierarchyResult(service_level=LEVEL_L2)

        llc_outcome = self.llc.access(pc, byte_address, is_write, index,
                                      next_use=llc_next_use,
                                      is_prefetch=is_prefetch)
        self._issue_hardware_prefetches(pc, byte_address)
        level = LEVEL_LLC if llc_outcome.hit else LEVEL_DRAM
        return HierarchyResult(service_level=level, llc_outcome=llc_outcome,
                               reached_llc=True)

    def _issue_hardware_prefetches(self, pc: int, byte_address: int) -> None:
        if self.prefetcher is None:
            return
        block = self.llc.block_address(byte_address)
        for prefetch_block in self.prefetcher.on_access(pc, block):
            self._access_counter += 1
            self.llc.access(pc, prefetch_block * self.llc.block_bytes,
                            is_write=False, access_index=self._access_counter,
                            is_prefetch=True)

    # ------------------------------------------------------------------
    def level_stats(self) -> Dict[str, CacheStats]:
        return {"l1d": self.l1d.stats, "l2": self.l2.stats, "llc": self.llc.stats}

    def describe(self) -> str:
        return self.config.describe()
