"""Analytic CPU timing model.

The actionable-insight use cases in the paper report IPC/speedup numbers from
ChampSim.  A full out-of-order core model is out of scope, so this module
provides a deliberately simple but well-defined analytic model:

* every retired instruction costs ``1 / retire_width`` cycles of base work;
* a demand load that is serviced by level ``L`` adds a stall of
  ``latency(L) * (1 - overlap_factor)`` cycles — the overlap factor stands in
  for memory-level parallelism and out-of-order latency tolerance;
* store and software-prefetch accesses never stall the pipeline (they retire
  through the store queue / are purely speculative warm-ups);
* L1 hits are assumed fully pipelined (no stall).

This is enough for the reproduction's purposes: IPC improves when the miss
profile improves, and the *relative* changes (bypass, prefetching, Mockingjay
training) follow the same direction as the paper's ChampSim experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.sim.config import HierarchyConfig

#: Service levels an access can be satisfied from.
LEVEL_L1 = "l1"
LEVEL_L2 = "l2"
LEVEL_LLC = "llc"
LEVEL_DRAM = "dram"


@dataclass
class TimingResult:
    """Cycle/instruction accounting for one simulation."""

    instructions: int = 0
    base_cycles: float = 0.0
    stall_cycles: float = 0.0
    stalls_by_level: Dict[str, float] = field(default_factory=dict)
    accesses_by_level: Dict[str, int] = field(default_factory=dict)

    @property
    def cycles(self) -> float:
        return self.base_cycles + self.stall_cycles

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles > 0 else 0.0

    def speedup_over(self, baseline: "TimingResult") -> float:
        """Relative IPC improvement over a baseline run (1.0 = no change)."""
        if baseline.ipc == 0:
            return 0.0
        return self.ipc / baseline.ipc


class CPUModel:
    """Accumulates the analytic cycle count for a trace replay."""

    def __init__(self, config: HierarchyConfig):
        self.config = config
        self.result = TimingResult()
        self._latencies = {
            LEVEL_L1: float(config.l1d.latency_cycles),
            LEVEL_L2: float(config.l1d.latency_cycles + config.l2.latency_cycles),
            LEVEL_LLC: float(config.l1d.latency_cycles + config.l2.latency_cycles
                             + config.llc.latency_cycles),
            LEVEL_DRAM: float(config.l1d.latency_cycles + config.l2.latency_cycles
                              + config.llc.latency_cycles
                              + config.dram.access_latency_cycles),
        }

    def service_latency(self, level: str) -> float:
        """Total load-to-use latency when serviced by ``level``."""
        if level not in self._latencies:
            raise ValueError(f"unknown service level {level!r}")
        return self._latencies[level]

    def retire(self, instructions: int) -> None:
        """Account for ``instructions`` retired instructions of base work."""
        self.result.instructions += instructions
        self.result.base_cycles += instructions / self.config.core.retire_width

    def memory_access(self, level: str, is_write: bool = False,
                      is_prefetch: bool = False) -> None:
        """Account for one memory access serviced by ``level``."""
        self.result.accesses_by_level[level] = (
            self.result.accesses_by_level.get(level, 0) + 1)
        if is_write or is_prefetch:
            return
        if level == LEVEL_L1:
            return  # fully pipelined
        stall = self.service_latency(level) * (1.0 - self.config.core.overlap_factor)
        self.result.stall_cycles += stall
        self.result.stalls_by_level[level] = (
            self.result.stalls_by_level.get(level, 0.0) + stall)

    def finish(self) -> TimingResult:
        return self.result
