"""Set-associative cache model with pluggable replacement policies.

Two access paths are provided:

* :meth:`Cache.access` — the full-detail path.  It snapshots resident lines
  and per-line eviction scores into an :class:`AccessOutcome` so the trace
  database can store the paper's ``current_cache_lines`` /
  ``cache_line_eviction_scores`` columns.
* :meth:`Cache.access_fast` — the stats-only path used when the caller only
  needs aggregate counters (``detail="stats"``).  It skips outcome objects,
  line-view snapshots and the per-access ``eviction_scores`` callback (every
  built-in policy's ``eviction_scores`` is a pure read, so skipping it cannot
  change behaviour), and when the policy is plain LRU it bypasses the policy
  callback machinery entirely, driving recency through the per-set tag dict.

Both paths share one tag dictionary per set (block address -> way), so
residency lookups are O(1) instead of a linear way scan, and both produce
identical hit/miss/eviction/bypass statistics for every policy.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.policies.base import (
    BYPASS,
    CacheLineView,
    NEVER,
    PolicyAccess,
    ReplacementPolicy,
)
from repro.policies.basic import LRUPolicy
from repro.sim.config import CacheConfig

#: Detail levels accepted by :class:`Cache` and the simulation engine.
DETAIL_FULL = "full"
DETAIL_STATS = "stats"
DETAIL_LEVELS = (DETAIL_FULL, DETAIL_STATS)


@dataclass
class CacheLine:
    """One resident cache line.

    ``way`` is fixed for the line's whole residency, which lets the
    stats-only path hand lines directly to policies as views (duck-typed
    :class:`CacheLineView`: same attributes, no per-access copying).
    """

    block_address: int
    pc: int
    inserted_at: int
    last_access: int
    next_use: int = NEVER
    dirty: bool = False
    way: int = -1
    valid: bool = True

    def view(self, way: int) -> CacheLineView:
        return CacheLineView(
            way=way,
            block_address=self.block_address,
            pc=self.pc,
            inserted_at=self.inserted_at,
            last_access=self.last_access,
            next_use=self.next_use,
            dirty=self.dirty,
        )


@dataclass
class CacheStats:
    """Aggregate and per-set counters for one cache.

    ``per_set_accesses``/``per_set_hits`` are lists indexed by set (one
    preallocated slot per set, see :meth:`for_sets`), so the hot path pays a
    list index instead of two dict lookups per access.
    """

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    bypasses: int = 0
    compulsory_misses: int = 0
    capacity_misses: int = 0
    conflict_misses: int = 0
    per_set_accesses: List[int] = field(default_factory=list)
    per_set_hits: List[int] = field(default_factory=list)

    @classmethod
    def for_sets(cls, num_sets: int) -> "CacheStats":
        """Stats object with per-set counters preallocated for ``num_sets``."""
        return cls(per_set_accesses=[0] * num_sets, per_set_hits=[0] * num_sets)

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def set_hit_rates(self) -> Dict[int, float]:
        """Per-set hit rate, only for sets that were accessed."""
        return {
            set_index: self.per_set_hits[set_index] / accesses
            for set_index, accesses in enumerate(self.per_set_accesses)
            if accesses
        }

    def as_tuple(self) -> Tuple:
        """Every counter (aggregate and per-set) as one comparable tuple.

        The canonical form for byte-identity assertions across replay paths
        and store round-trips.
        """
        return (self.accesses, self.hits, self.misses, self.evictions,
                self.bypasses, self.compulsory_misses, self.capacity_misses,
                self.conflict_misses, tuple(self.per_set_accesses),
                tuple(self.per_set_hits))


@dataclass
class AccessOutcome:
    """Result of one cache access."""

    hit: bool
    set_index: int
    way: Optional[int]
    bypassed: bool = False
    miss_type: str = ""
    evicted_block: Optional[int] = None
    evicted_pc: Optional[int] = None
    eviction_scores: List[Tuple[int, float]] = field(default_factory=list)
    resident_lines: List[Tuple[int, int]] = field(default_factory=list)


class Cache:
    """A single set-associative cache level driven by a replacement policy."""

    def __init__(self, config: CacheConfig,
                 policy: Optional[ReplacementPolicy] = None,
                 classify_misses: bool = False,
                 detail: str = DETAIL_FULL):
        if detail not in DETAIL_LEVELS:
            raise ValueError(f"detail must be one of {DETAIL_LEVELS}")
        self.config = config
        self.policy = policy if policy is not None else LRUPolicy()
        self.num_sets = config.num_sets
        self.num_ways = config.num_ways
        self.block_bytes = config.block_bytes
        self.classify_misses = classify_misses
        self.detail = detail
        self.policy.initialize(self.num_sets, self.num_ways)
        # Power-of-two geometries (every bundled config) use shift/mask
        # address math; odd geometries fall back to div/mod.
        self._block_shift = (self.block_bytes.bit_length() - 1
                             if self.block_bytes & (self.block_bytes - 1) == 0
                             else None)
        self._set_mask = (self.num_sets - 1
                          if self.num_sets & (self.num_sets - 1) == 0
                          else None)
        # sets[set_index][way] -> CacheLine or None
        self.sets: List[List[Optional[CacheLine]]] = [
            [None] * self.num_ways for _ in range(self.num_sets)
        ]
        # tags[set_index]: block_address -> way.  On the fast-LRU path the
        # dict's insertion order doubles as recency order (hits reinsert).
        self._tags: List[Dict[int, int]] = [{} for _ in range(self.num_sets)]
        # Stats-only + plain LRU: skip the policy callbacks entirely.  Exact
        # type check — an LRU subclass may override hooks we would bypass.
        self._fast_lru = (detail == DETAIL_STATS
                          and type(self.policy) is LRUPolicy)
        self.stats = CacheStats.for_sets(self.num_sets)
        # For miss classification: blocks ever seen, and a fully-associative
        # LRU "shadow" cache of the same capacity (capacity-vs-conflict).
        self._seen_blocks: set = set()
        self._shadow: "OrderedDict[int, None]" = OrderedDict()

    # ------------------------------------------------------------------
    # address helpers
    # ------------------------------------------------------------------
    def block_address(self, byte_address: int) -> int:
        return byte_address // self.block_bytes

    def set_index(self, block_address: int) -> int:
        return block_address % self.num_sets

    # ------------------------------------------------------------------
    # lookup helpers
    # ------------------------------------------------------------------
    def lookup(self, block_address: int) -> Tuple[Optional[int], Optional[CacheLine]]:
        """Return (way, line) if the block is resident, else (None, None)."""
        set_index = self.set_index(block_address)
        way = self._tags[set_index].get(block_address)
        if way is None:
            return None, None
        return way, self.sets[set_index][way]

    def contains(self, byte_address: int) -> bool:
        way, _line = self.lookup(self.block_address(byte_address))
        return way is not None

    def resident_lines(self, set_index: int) -> List[Tuple[int, CacheLine]]:
        return [(way, line) for way, line in enumerate(self.sets[set_index])
                if line is not None]

    def occupancy(self) -> int:
        return sum(len(tags) for tags in self._tags)

    # ------------------------------------------------------------------
    # miss classification
    # ------------------------------------------------------------------
    def _classify_miss(self, block_address: int) -> str:
        if not self.classify_misses:
            return ""
        if block_address not in self._seen_blocks:
            return "Compulsory"
        # A fully-associative cache of the same capacity: if it also misses,
        # the miss is a capacity miss; otherwise it is a conflict miss.
        if block_address in self._shadow:
            return "Conflict"
        return "Capacity"

    def _update_shadow(self, block_address: int) -> None:
        if not self.classify_misses:
            return
        self._seen_blocks.add(block_address)
        if block_address in self._shadow:
            self._shadow.move_to_end(block_address)
        else:
            self._shadow[block_address] = None
            capacity = self.config.num_blocks
            while len(self._shadow) > capacity:
                self._shadow.popitem(last=False)

    # ------------------------------------------------------------------
    # main access path (full detail)
    # ------------------------------------------------------------------
    def access(self, pc: int, byte_address: int, is_write: bool,
               access_index: int, next_use: int = NEVER,
               is_prefetch: bool = False) -> AccessOutcome:
        """Service one access and return its outcome (full detail)."""
        block_address = self.block_address(byte_address)
        set_index = self.set_index(block_address)
        policy_access = PolicyAccess(
            pc=pc,
            block_address=block_address,
            is_write=is_write,
            access_index=access_index,
            next_use=next_use,
            is_prefetch=is_prefetch,
        )
        stats = self.stats
        stats.accesses += 1
        stats.per_set_accesses[set_index] += 1

        resident = self.resident_lines(set_index)
        resident_pairs = [(line.block_address, line.pc) for _way, line in resident]
        views = [line.view(way) for way, line in resident]
        scores = self.policy.eviction_scores(set_index, views, policy_access) if views else []
        score_pairs = [(line.block_address, float(score))
                       for (_way, line), score in zip(resident, scores)]

        tags = self._tags[set_index]
        way = tags.get(block_address)
        if way is not None:
            # Hit.
            line = self.sets[set_index][way]
            stats.hits += 1
            stats.per_set_hits[set_index] += 1
            line.last_access = access_index
            line.next_use = next_use
            if is_write:
                line.dirty = True
            self.policy.on_hit(set_index, line.view(way), policy_access)
            self._update_shadow(block_address)
            return AccessOutcome(
                hit=True, set_index=set_index, way=way,
                eviction_scores=score_pairs, resident_lines=resident_pairs,
            )

        # Miss.
        stats.misses += 1
        miss_type = self._classify_miss(block_address)
        if miss_type == "Compulsory":
            stats.compulsory_misses += 1
        elif miss_type == "Capacity":
            stats.capacity_misses += 1
        elif miss_type == "Conflict":
            stats.conflict_misses += 1
        self._update_shadow(block_address)

        outcome = AccessOutcome(
            hit=False, set_index=set_index, way=None, miss_type=miss_type,
            eviction_scores=score_pairs, resident_lines=resident_pairs,
        )

        # Bypass check (only meaningful once the set has pressure).
        if self.policy.should_bypass(set_index, views, policy_access):
            stats.bypasses += 1
            outcome.bypassed = True
            return outcome

        free_way = self._allocate_way(set_index, views, policy_access, outcome)
        if free_way is None:  # policy chose BYPASS from choose_victim
            return outcome

        new_line = CacheLine(
            block_address=block_address,
            pc=pc,
            inserted_at=access_index,
            last_access=access_index,
            next_use=next_use,
            dirty=is_write,
            way=free_way,
        )
        self.sets[set_index][free_way] = new_line
        tags[block_address] = free_way
        outcome.way = free_way
        self.policy.on_fill(set_index, new_line.view(free_way), policy_access)
        return outcome

    def _allocate_way(self, set_index: int, views: Sequence[CacheLineView],
                      policy_access: PolicyAccess,
                      outcome: AccessOutcome) -> Optional[int]:
        """Find a free way or evict a victim; ``None`` means bypass."""
        stats = self.stats
        cache_set = self.sets[set_index]
        if len(self._tags[set_index]) < self.num_ways:
            for candidate_way, candidate in enumerate(cache_set):
                if candidate is None:
                    return candidate_way
        victim_way = self.policy.choose_victim(set_index, views, policy_access)
        if victim_way == BYPASS:
            stats.bypasses += 1
            outcome.bypassed = True
            return None
        victim_line = cache_set[victim_way]
        if victim_line is None:  # defensive: policy pointed at a hole
            return victim_way
        self.policy.on_evict(set_index, victim_line.view(victim_way),
                             policy_access)
        stats.evictions += 1
        outcome.evicted_block = victim_line.block_address
        outcome.evicted_pc = victim_line.pc
        self._tags[set_index].pop(victim_line.block_address, None)
        return victim_way

    # ------------------------------------------------------------------
    # stats-only access path
    # ------------------------------------------------------------------
    def access_fast(self, pc: int, byte_address: int, is_write: bool,
                    access_index: int, next_use: int = NEVER,
                    is_prefetch: bool = False) -> bool:
        """Service one access; return only whether it hit.

        Behaviourally identical to :meth:`access` (same hit/miss/eviction/
        bypass decisions and statistics) but skips every per-access
        allocation the full path makes for the trace database: no
        :class:`AccessOutcome`, no resident-line snapshot, no eviction-score
        callback, and — for plain LRU — no policy callbacks at all.
        """
        block_shift = self._block_shift
        if block_shift is not None:
            block_address = byte_address >> block_shift
        else:
            block_address = byte_address // self.block_bytes
        set_mask = self._set_mask
        if set_mask is not None:
            set_index = block_address & set_mask
        else:
            set_index = block_address % self.num_sets

        stats = self.stats
        stats.accesses += 1
        stats.per_set_accesses[set_index] += 1
        tags = self._tags[set_index]
        cache_set = self.sets[set_index]
        fast_lru = self._fast_lru

        way = tags.get(block_address)
        if way is not None:
            # Hit.
            line = cache_set[way]
            stats.hits += 1
            stats.per_set_hits[set_index] += 1
            line.last_access = access_index
            line.next_use = next_use
            if is_write:
                line.dirty = True
            if fast_lru:
                # Reinsert to make this block the most recent in tag order.
                del tags[block_address]
                tags[block_address] = way
            else:
                # The live line doubles as the view (same attributes).
                self.policy.on_hit(set_index, line, PolicyAccess(
                    pc=pc, block_address=block_address, is_write=is_write,
                    access_index=access_index, next_use=next_use,
                    is_prefetch=is_prefetch))
            if self.classify_misses:
                self._update_shadow(block_address)
            return True

        # Miss.
        stats.misses += 1
        if self.classify_misses:
            miss_type = self._classify_miss(block_address)
            if miss_type == "Compulsory":
                stats.compulsory_misses += 1
            elif miss_type == "Capacity":
                stats.capacity_misses += 1
            elif miss_type == "Conflict":
                stats.conflict_misses += 1
            self._update_shadow(block_address)

        if fast_lru:
            free_way = None
            if len(tags) < self.num_ways:
                for candidate_way, candidate in enumerate(cache_set):
                    if candidate is None:
                        free_way = candidate_way
                        break
            if free_way is None:
                # Oldest tag-dict entry == least recently touched block,
                # exactly the line generic LRU picks by min(last_access).
                victim_block = next(iter(tags))
                free_way = tags.pop(victim_block)
                stats.evictions += 1
            cache_set[free_way] = CacheLine(
                block_address=block_address, pc=pc, inserted_at=access_index,
                last_access=access_index, next_use=next_use, dirty=is_write,
                way=free_way)
            tags[block_address] = free_way
            return False

        policy_access = PolicyAccess(
            pc=pc, block_address=block_address, is_write=is_write,
            access_index=access_index, next_use=next_use,
            is_prefetch=is_prefetch)
        # Resident lines double as views: every attribute a CacheLineView
        # carries is on the line (``way`` is pinned at fill), and policies
        # treat views as read-only, so no per-miss snapshot list is built.
        views = [line for line in cache_set if line is not None]
        if self.policy.should_bypass(set_index, views, policy_access):
            stats.bypasses += 1
            return False

        free_way = None
        if len(tags) < self.num_ways:
            for candidate_way, candidate in enumerate(cache_set):
                if candidate is None:
                    free_way = candidate_way
                    break
        if free_way is None:
            victim_way = self.policy.choose_victim(set_index, views,
                                                   policy_access)
            if victim_way == BYPASS:
                stats.bypasses += 1
                return False
            victim_line = cache_set[victim_way]
            if victim_line is None:  # defensive: policy pointed at a hole
                free_way = victim_way
            else:
                self.policy.on_evict(set_index, victim_line, policy_access)
                stats.evictions += 1
                tags.pop(victim_line.block_address, None)
                free_way = victim_way

        new_line = CacheLine(
            block_address=block_address, pc=pc, inserted_at=access_index,
            last_access=access_index, next_use=next_use, dirty=is_write,
            way=free_way)
        cache_set[free_way] = new_line
        tags[block_address] = free_way
        self.policy.on_fill(set_index, new_line, policy_access)
        return False

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Invalidate every line and reset policy state (keeps statistics)."""
        self.sets = [[None] * self.num_ways for _ in range(self.num_sets)]
        self._tags = [{} for _ in range(self.num_sets)]
        self.policy.reset()

    def reset_stats(self) -> None:
        self.stats = CacheStats.for_sets(self.num_sets)

    def set_hit_rates(self) -> Dict[int, float]:
        """Per-set hit rate (only sets that were accessed)."""
        return self.stats.set_hit_rates()
