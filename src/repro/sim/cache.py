"""Set-associative cache model with pluggable replacement policies."""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.policies.base import (
    BYPASS,
    CacheLineView,
    NEVER,
    PolicyAccess,
    ReplacementPolicy,
)
from repro.policies.basic import LRUPolicy
from repro.sim.config import CacheConfig


@dataclass
class CacheLine:
    """One resident cache line."""

    block_address: int
    pc: int
    inserted_at: int
    last_access: int
    next_use: int = NEVER
    dirty: bool = False

    def view(self, way: int) -> CacheLineView:
        return CacheLineView(
            way=way,
            block_address=self.block_address,
            pc=self.pc,
            inserted_at=self.inserted_at,
            last_access=self.last_access,
            next_use=self.next_use,
            dirty=self.dirty,
        )


@dataclass
class CacheStats:
    """Aggregate and per-set counters for one cache."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    bypasses: int = 0
    compulsory_misses: int = 0
    capacity_misses: int = 0
    conflict_misses: int = 0
    per_set_accesses: Dict[int, int] = field(default_factory=dict)
    per_set_hits: Dict[int, int] = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


@dataclass
class AccessOutcome:
    """Result of one cache access."""

    hit: bool
    set_index: int
    way: Optional[int]
    bypassed: bool = False
    miss_type: str = ""
    evicted_block: Optional[int] = None
    evicted_pc: Optional[int] = None
    eviction_scores: List[Tuple[int, float]] = field(default_factory=list)
    resident_lines: List[Tuple[int, int]] = field(default_factory=list)


class Cache:
    """A single set-associative cache level driven by a replacement policy."""

    def __init__(self, config: CacheConfig,
                 policy: Optional[ReplacementPolicy] = None,
                 classify_misses: bool = False):
        self.config = config
        self.policy = policy if policy is not None else LRUPolicy()
        self.num_sets = config.num_sets
        self.num_ways = config.num_ways
        self.block_bytes = config.block_bytes
        self.classify_misses = classify_misses
        self.policy.initialize(self.num_sets, self.num_ways)
        # sets[set_index][way] -> CacheLine or None
        self.sets: List[List[Optional[CacheLine]]] = [
            [None] * self.num_ways for _ in range(self.num_sets)
        ]
        self.stats = CacheStats()
        # For miss classification: blocks ever seen, and a fully-associative
        # LRU "shadow" cache of the same capacity (capacity-vs-conflict).
        self._seen_blocks: set = set()
        self._shadow: "OrderedDict[int, None]" = OrderedDict()

    # ------------------------------------------------------------------
    # address helpers
    # ------------------------------------------------------------------
    def block_address(self, byte_address: int) -> int:
        return byte_address // self.block_bytes

    def set_index(self, block_address: int) -> int:
        return block_address % self.num_sets

    # ------------------------------------------------------------------
    # lookup helpers
    # ------------------------------------------------------------------
    def lookup(self, block_address: int) -> Tuple[Optional[int], Optional[CacheLine]]:
        """Return (way, line) if the block is resident, else (None, None)."""
        set_index = self.set_index(block_address)
        for way, line in enumerate(self.sets[set_index]):
            if line is not None and line.block_address == block_address:
                return way, line
        return None, None

    def contains(self, byte_address: int) -> bool:
        way, _line = self.lookup(self.block_address(byte_address))
        return way is not None

    def resident_lines(self, set_index: int) -> List[Tuple[int, CacheLine]]:
        return [(way, line) for way, line in enumerate(self.sets[set_index])
                if line is not None]

    def occupancy(self) -> int:
        return sum(1 for cache_set in self.sets for line in cache_set if line is not None)

    # ------------------------------------------------------------------
    # miss classification
    # ------------------------------------------------------------------
    def _classify_miss(self, block_address: int) -> str:
        if not self.classify_misses:
            return ""
        if block_address not in self._seen_blocks:
            return "Compulsory"
        # A fully-associative cache of the same capacity: if it also misses,
        # the miss is a capacity miss; otherwise it is a conflict miss.
        if block_address in self._shadow:
            return "Conflict"
        return "Capacity"

    def _update_shadow(self, block_address: int) -> None:
        if not self.classify_misses:
            return
        self._seen_blocks.add(block_address)
        if block_address in self._shadow:
            self._shadow.move_to_end(block_address)
        else:
            self._shadow[block_address] = None
            capacity = self.config.num_blocks
            while len(self._shadow) > capacity:
                self._shadow.popitem(last=False)

    # ------------------------------------------------------------------
    # main access path
    # ------------------------------------------------------------------
    def access(self, pc: int, byte_address: int, is_write: bool,
               access_index: int, next_use: int = NEVER,
               is_prefetch: bool = False) -> AccessOutcome:
        """Service one access and return its outcome."""
        block_address = self.block_address(byte_address)
        set_index = self.set_index(block_address)
        policy_access = PolicyAccess(
            pc=pc,
            block_address=block_address,
            is_write=is_write,
            access_index=access_index,
            next_use=next_use,
            is_prefetch=is_prefetch,
        )
        self.stats.accesses += 1
        self.stats.per_set_accesses[set_index] = (
            self.stats.per_set_accesses.get(set_index, 0) + 1)

        resident = self.resident_lines(set_index)
        resident_pairs = [(line.block_address, line.pc) for _way, line in resident]
        views = [line.view(way) for way, line in resident]
        scores = self.policy.eviction_scores(set_index, views, policy_access) if views else []
        score_pairs = [(line.block_address, float(score))
                       for (_way, line), score in zip(resident, scores)]

        way, line = self.lookup(block_address)
        if way is not None and line is not None:
            # Hit.
            self.stats.hits += 1
            self.stats.per_set_hits[set_index] = (
                self.stats.per_set_hits.get(set_index, 0) + 1)
            line.last_access = access_index
            line.next_use = next_use
            if is_write:
                line.dirty = True
            self.policy.on_hit(set_index, line.view(way), policy_access)
            self._update_shadow(block_address)
            return AccessOutcome(
                hit=True, set_index=set_index, way=way,
                eviction_scores=score_pairs, resident_lines=resident_pairs,
            )

        # Miss.
        self.stats.misses += 1
        miss_type = self._classify_miss(block_address)
        if miss_type == "Compulsory":
            self.stats.compulsory_misses += 1
        elif miss_type == "Capacity":
            self.stats.capacity_misses += 1
        elif miss_type == "Conflict":
            self.stats.conflict_misses += 1
        self._update_shadow(block_address)

        outcome = AccessOutcome(
            hit=False, set_index=set_index, way=None, miss_type=miss_type,
            eviction_scores=score_pairs, resident_lines=resident_pairs,
        )

        # Bypass check (only meaningful once the set has pressure).
        if self.policy.should_bypass(set_index, views, policy_access):
            self.stats.bypasses += 1
            outcome.bypassed = True
            return outcome

        # Find a free way or a victim.
        free_way = None
        for candidate_way, candidate in enumerate(self.sets[set_index]):
            if candidate is None:
                free_way = candidate_way
                break

        if free_way is None:
            victim_way = self.policy.choose_victim(set_index, views, policy_access)
            if victim_way == BYPASS:
                self.stats.bypasses += 1
                outcome.bypassed = True
                return outcome
            victim_line = self.sets[set_index][victim_way]
            if victim_line is None:  # defensive: policy pointed at a hole
                free_way = victim_way
            else:
                self.policy.on_evict(set_index, victim_line.view(victim_way),
                                     policy_access)
                self.stats.evictions += 1
                outcome.evicted_block = victim_line.block_address
                outcome.evicted_pc = victim_line.pc
                free_way = victim_way

        new_line = CacheLine(
            block_address=block_address,
            pc=pc,
            inserted_at=access_index,
            last_access=access_index,
            next_use=next_use,
            dirty=is_write,
        )
        self.sets[set_index][free_way] = new_line
        outcome.way = free_way
        self.policy.on_fill(set_index, new_line.view(free_way), policy_access)
        return outcome

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Invalidate every line and reset policy state (keeps statistics)."""
        self.sets = [[None] * self.num_ways for _ in range(self.num_sets)]
        self.policy.reset()

    def reset_stats(self) -> None:
        self.stats = CacheStats()

    def set_hit_rates(self) -> Dict[int, float]:
        """Per-set hit rate (only sets that were accessed)."""
        rates = {}
        for set_index, accesses in self.stats.per_set_accesses.items():
            hits = self.stats.per_set_hits.get(set_index, 0)
            rates[set_index] = hits / accesses if accesses else 0.0
        return rates
