"""Multi-rollout batch simulation kernel: one trace pass, many rollouts.

Every (policy, config, detail) cell of an experiment grid used to replay the
whole trace independently, so grid cost scaled as cells x single-replay
cost.  This module follows the "parallel rollouts as array programs" shape
(Considine, arXiv:2604.12902): N rollouts that share a trace advance in
lockstep over the columnar :class:`~repro.workloads.trace.MemoryTrace`
spine, and everything that is *policy-independent* is computed once per
(trace, geometry) group and shared read-only across rollouts:

* block addresses (once per ``block_bytes``) and set indices (once per
  ``(block_bytes, num_sets)``), decoded straight from the typed address
  column with shift/mask math;
* the miss classification (compulsory/capacity/conflict) — a pure function
  of ``(block_bytes, capacity)`` because the seen-set and the
  fully-associative shadow cache are updated on *every* access regardless
  of the studied policy's hit/miss outcome — precomputed as one shared
  ``bytearray`` of class codes;
* the oracle next-use array (once per ``block_bytes``), shared across every
  ``requires_future`` rollout instead of per cell;
* per-set access counts, the base timing accumulation (instructions /
  base cycles, a pure function of the trace and ``retire_width``) and the
  constant-stall partial-sum tables;
* the L1/L2-filtered LLC stream in hierarchy mode (the upper levels are
  always LRU, so the filtered stream is identical for every LLC policy).

Per-rollout state is kept as flat preallocated columns (resident-block /
next-use / RRPV slots of size ``num_sets * num_ways`` indexed
arithmetically) rather than per-cell object graphs.  Four *native* stats
kernels (lru, fifo, belady, srrip) replay this way; every other policy,
every full-detail rollout and hierarchy mode run through the unmodified
:class:`~repro.sim.engine.SimulationEngine` with the shared precomputes
injected via :class:`~repro.sim.engine.PreparedReplay` — so every rollout,
native or not, is **byte-identical** to a standalone ``engine.run``
(equivalence is enforced by ``tests/test_batch.py`` across the full policy
x workload x mode x detail matrix).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.policies.base import NEVER, get_policy
from repro.sim.cache import CacheStats, DETAIL_FULL, DETAIL_LEVELS, DETAIL_STATS
from repro.sim.config import CacheConfig, HierarchyConfig
from repro.sim.cpu import LEVEL_DRAM, LEVEL_LLC, TimingResult
from repro.sim.engine import (
    PreparedReplay,
    SimulationEngine,
    SimulationResult,
    TraceReuse,
    compute_full_reuse,
    compute_next_use,
)
from repro.workloads.trace import FLAG_PREFETCH, FLAG_WRITE, MemoryTrace

#: Policies with a native lockstep stats kernel (all other policies batch
#: through the engine with shared precomputes).
NATIVE_POLICIES = ("lru", "fifo", "belady", "srrip")


@dataclass(frozen=True)
class RolloutSpec:
    """One rollout of the shared trace: policy x config x mode x detail.

    The engine-knob fields (``max_records``, ``history_window``,
    ``annotate_context``) default to :class:`SimulationEngine`'s defaults so
    a bare ``RolloutSpec(policy, config)`` reproduces ``engine.run``
    exactly.
    """

    policy: str
    config: HierarchyConfig
    mode: str = "llc_only"
    detail: str = DETAIL_STATS
    max_records: Optional[int] = None
    history_window: int = 8
    annotate_context: bool = True

    def __post_init__(self) -> None:
        if self.mode not in ("llc_only", "hierarchy"):
            raise ValueError("mode must be 'llc_only' or 'hierarchy'")
        if self.detail not in DETAIL_LEVELS:
            raise ValueError(f"detail must be one of {DETAIL_LEVELS}")


def _is_pow2(value: int) -> bool:
    return value > 0 and value & (value - 1) == 0


def rollout_strategy(spec: RolloutSpec) -> str:
    """Execution strategy the batch kernel will pick for one rollout.

    ``"native:<policy>"`` — the flat-column lockstep kernel;
    ``"engine"`` — a standalone engine replay fed the shared precomputes.
    Native kernels cover the stats-detail llc_only path for the policies in
    :data:`NATIVE_POLICIES` on power-of-two geometries (every bundled
    config); the policy must be requested *by name* so its parameters are
    the registry defaults the kernels replicate.
    """
    llc = spec.config.llc
    if (spec.detail == DETAIL_STATS and spec.mode == "llc_only"
            and spec.policy in NATIVE_POLICIES
            and _is_pow2(llc.block_bytes) and _is_pow2(llc.num_sets)):
        return f"native:{spec.policy}"
    return "engine"


@dataclass
class _KernelTally:
    """Counters one native kernel produces for one rollout."""

    hits: int
    evictions: int
    compulsory: int
    capacity: int
    conflict: int
    per_set_hits: List[int]
    stall_cycles: float
    llc_stall_events: int
    dram_stall_events: int


class BatchSimulator:
    """Advance many rollouts of one trace in a single lockstep pass.

    Construct one per trace and call :meth:`run` with the rollout specs;
    results come back in spec order, each byte-identical to what a fresh
    ``SimulationEngine(...).run(trace, policy)`` would produce.  The
    strategy chosen for each rollout of the last :meth:`run` is recorded in
    :attr:`strategies`.

    All shared precomputes are cached on the instance, keyed by the
    geometry parameters they actually depend on — so a 9-cell grid over 3
    configs sharing a block size decodes block addresses once, classifies
    misses once per distinct capacity, and computes the oracle next-use
    array exactly once.
    """

    def __init__(self, trace: MemoryTrace):
        self.trace = trace
        self._columns = trace.columns()
        self.strategies: List[str] = []
        self._demand: Optional[bytearray] = None
        self._blocks: Dict[int, List[int]] = {}
        self._sets: Dict[Tuple[int, int], List[int]] = {}
        self._mclass: Dict[Tuple[int, int], bytearray] = {}
        self._psa: Dict[Tuple[int, int], List[int]] = {}
        self._next_use: Dict[int, List[int]] = {}
        self._full_reuse: Dict[int, TraceReuse] = {}
        self._base_timing: Dict[int, Tuple[int, float]] = {}
        self._stall_tables: Dict[float, List[float]] = {}
        self._llc_only_stream: Optional[tuple] = None
        self._streams: Dict[Tuple[CacheConfig, CacheConfig], tuple] = {}
        self._stream_next_use: Dict[tuple, List[int]] = {}
        self._stream_full_reuse: Dict[tuple, TraceReuse] = {}

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(self, specs: Sequence[RolloutSpec]) -> List[SimulationResult]:
        """Execute every rollout; results in spec order."""
        self.strategies = [rollout_strategy(spec) for spec in specs]
        results: List[SimulationResult] = []
        for spec, strategy in zip(specs, self.strategies):
            if strategy.startswith("native:"):
                results.append(self._run_native(spec))
            else:
                results.append(self._run_engine(spec))
        return results

    # ------------------------------------------------------------------
    # shared precomputes (policy-independent, cached per geometry)
    # ------------------------------------------------------------------
    def _demand_column(self) -> bytearray:
        """1 for demand accesses (not write, not prefetch) — the accesses
        that stall the pipeline in the analytic timing model."""
        if self._demand is None:
            mask = FLAG_WRITE | FLAG_PREFETCH
            flags = self._columns[2]
            self._demand = bytearray(
                1 if not (flag & mask) else 0 for flag in flags)
        return self._demand

    def _block_column(self, block_bytes: int) -> List[int]:
        got = self._blocks.get(block_bytes)
        if got is None:
            shift = block_bytes.bit_length() - 1
            addresses = self._columns[1]
            got = [address >> shift for address in addresses]
            self._blocks[block_bytes] = got
        return got

    def _set_column(self, block_bytes: int, num_sets: int) -> List[int]:
        key = (block_bytes, num_sets)
        got = self._sets.get(key)
        if got is None:
            mask = num_sets - 1
            got = [block & mask for block in self._block_column(block_bytes)]
            self._sets[key] = got
        return got

    def _miss_classes(self, block_bytes: int, capacity: int) -> bytearray:
        """Per-position miss class codes (0=compulsory, 1=capacity,
        2=conflict) — what :meth:`Cache._classify_miss` would answer if the
        access missed.

        Policy-independent: the seen-set and the fully-associative LRU
        shadow are updated on every access (hit or miss), so the state at
        position ``p`` depends only on accesses ``0..p-1``.  The shadow is
        a plain insertion-ordered dict (del+reinsert == ``move_to_end``),
        matching the cache's ``OrderedDict`` semantics exactly.
        """
        key = (block_bytes, capacity)
        got = self._mclass.get(key)
        if got is None:
            blocks = self._block_column(block_bytes)
            got = bytearray(len(blocks))
            seen = set()
            shadow: Dict[int, None] = {}
            add = seen.add
            for position, block in enumerate(blocks):
                if block in shadow:
                    got[position] = 2  # conflict: shadow would have hit
                    del shadow[block]
                    shadow[block] = None
                else:
                    if block in seen:
                        got[position] = 1  # capacity
                    else:
                        got[position] = 0  # compulsory
                        add(block)
                    shadow[block] = None
                    while len(shadow) > capacity:
                        del shadow[next(iter(shadow))]
            self._mclass[key] = got
        return got

    def _per_set_accesses(self, block_bytes: int, num_sets: int) -> List[int]:
        key = (block_bytes, num_sets)
        got = self._psa.get(key)
        if got is None:
            got = [0] * num_sets
            for set_index in self._set_column(block_bytes, num_sets):
                got[set_index] += 1
            self._psa[key] = got
        return got

    def _trace_next_use(self, block_bytes: int) -> List[int]:
        got = self._next_use.get(block_bytes)
        if got is None:
            full = self._full_reuse.get(block_bytes)
            if full is not None:
                got = full.next_use
            else:
                got = compute_next_use(self._columns[1], block_bytes)
            self._next_use[block_bytes] = got
        return got

    def _trace_full_reuse(self, block_bytes: int) -> TraceReuse:
        got = self._full_reuse.get(block_bytes)
        if got is None:
            got = compute_full_reuse(self._columns[1], block_bytes)
            self._full_reuse[block_bytes] = got
        return got

    def _base_timing_for(self, retire_width: int) -> Tuple[int, float]:
        """(instructions, base_cycles): identical accumulation order to the
        engine's fused loop, so the floats match bit-for-bit."""
        got = self._base_timing.get(retire_width)
        if got is None:
            _pcs, _addresses, flags, instr = self._columns
            instructions = 0
            base_cycles = 0.0
            for flag, gap in zip(flags, instr):
                if not (flag & FLAG_PREFETCH):
                    retired = gap + 1
                    instructions += retired
                    base_cycles += retired / retire_width
            got = (instructions, base_cycles)
            self._base_timing[retire_width] = got
        return got

    def _stall_table(self, stall: float) -> List[float]:
        """``table[k]`` == the float sum of ``k`` repeated additions of
        ``stall`` starting from 0.0 — exactly how the engine accumulates
        each level's stall total, so the per-level floats are identical."""
        got = self._stall_tables.get(stall)
        if got is None:
            got = [0.0] * (len(self.trace) + 1)
            total = 0.0
            for position in range(len(self.trace)):
                total += stall
                got[position + 1] = total
            self._stall_tables[stall] = got
        return got

    def _stream_for(self, spec: RolloutSpec) -> tuple:
        """(llc_stream, upper_levels, stream_key) for one rollout's mode."""
        if spec.mode == "llc_only":
            if self._llc_only_stream is None:
                # Mode/geometry independent: pure decode of the columns.
                engine = SimulationEngine(config=spec.config, mode="llc_only")
                self._llc_only_stream = engine._build_llc_stream(self.trace)
            stream, upper = self._llc_only_stream
            return stream, upper, "llc_only"
        key = (spec.config.l1d, spec.config.l2)
        got = self._streams.get(key)
        if got is None:
            # The upper levels are always LRU, so the filtered stream is
            # identical for every LLC policy/config with these upper caches.
            engine = SimulationEngine(config=spec.config, mode="hierarchy")
            got = engine._build_llc_stream(self.trace)
            self._streams[key] = got
        return got[0], got[1], key

    def _stream_reuse(self, stream, stream_key, block_bytes: int,
                      full: bool) -> TraceReuse:
        if stream_key == "llc_only":
            if full:
                return self._trace_full_reuse(block_bytes)
            return TraceReuse(next_use=self._trace_next_use(block_bytes))
        key = (stream_key, block_bytes)
        if full:
            got = self._stream_full_reuse.get(key)
            if got is None:
                got = compute_full_reuse(
                    [address for _i, _pc, address, _w, _p in stream],
                    block_bytes)
                self._stream_full_reuse[key] = got
            return got
        got = self._stream_next_use.get(key)
        if got is None:
            full_reuse = self._stream_full_reuse.get(key)
            if full_reuse is not None:
                got = full_reuse.next_use
            else:
                got = compute_next_use(
                    [address for _i, _pc, address, _w, _p in stream],
                    block_bytes)
            self._stream_next_use[key] = got
        return TraceReuse(next_use=got)

    # ------------------------------------------------------------------
    # engine rollouts (shared precomputes, unmodified replay code)
    # ------------------------------------------------------------------
    def _run_engine(self, spec: RolloutSpec) -> SimulationResult:
        engine = SimulationEngine(
            config=spec.config, mode=spec.mode,
            history_window=spec.history_window,
            annotate_context=spec.annotate_context,
            max_records=spec.max_records, detail=spec.detail)
        policy = get_policy(spec.policy)
        block_bytes = spec.config.llc.block_bytes
        requires_future = bool(getattr(policy, "requires_future", False))
        stream = upper = reuse = None
        if spec.detail == DETAIL_FULL:
            stream, upper, stream_key = self._stream_for(spec)
            reuse = self._stream_reuse(stream, stream_key, block_bytes,
                                       full=True)
        elif spec.mode == "hierarchy":
            stream, upper, stream_key = self._stream_for(spec)
            if requires_future:
                reuse = self._stream_reuse(stream, stream_key, block_bytes,
                                           full=False)
        elif requires_future:
            reuse = TraceReuse(next_use=self._trace_next_use(block_bytes))
        prepared = PreparedReplay(llc_stream=stream, upper_levels=upper,
                                  reuse=reuse)
        return engine.run(self.trace, policy, prepared=prepared)

    # ------------------------------------------------------------------
    # native rollouts (flat-column lockstep kernels)
    # ------------------------------------------------------------------
    def _run_native(self, spec: RolloutSpec) -> SimulationResult:
        config = spec.config
        llc = config.llc
        block_bytes = llc.block_bytes
        num_sets = llc.num_sets
        num_ways = llc.num_ways

        blocks = self._block_column(block_bytes)
        sets = self._set_column(block_bytes, num_sets)
        demand = self._demand_column()
        mclass = self._miss_classes(block_bytes, llc.num_blocks)

        # Stall constants: identical expressions to the engine's fused loop.
        overlap = 1.0 - config.core.overlap_factor
        to_llc = float(config.l1d.latency_cycles + config.l2.latency_cycles
                       + llc.latency_cycles)
        to_dram = to_llc + config.dram.access_latency_cycles
        llc_stall = to_llc * overlap
        dram_stall = to_dram * overlap

        kernel = _NATIVE_KERNELS[spec.policy]
        next_use = (self._trace_next_use(block_bytes)
                    if spec.policy == "belady" else None)
        tally = kernel(blocks, sets, demand, mclass, num_sets, num_ways,
                       llc_stall, dram_stall, next_use)

        accesses = len(self.trace)
        stats = CacheStats(
            accesses=accesses,
            hits=tally.hits,
            misses=accesses - tally.hits,
            evictions=tally.evictions,
            bypasses=0,
            compulsory_misses=tally.compulsory,
            capacity_misses=tally.capacity,
            conflict_misses=tally.conflict,
            per_set_accesses=list(self._per_set_accesses(block_bytes,
                                                         num_sets)),
            per_set_hits=tally.per_set_hits,
        )
        instructions, base_cycles = self._base_timing_for(
            config.core.retire_width)
        timing = TimingResult(
            instructions=instructions,
            base_cycles=base_cycles,
            stall_cycles=tally.stall_cycles,
        )
        llc_count = tally.hits
        dram_count = accesses - tally.hits
        if llc_count:
            timing.accesses_by_level[LEVEL_LLC] = llc_count
        if dram_count:
            timing.accesses_by_level[LEVEL_DRAM] = dram_count
        if tally.llc_stall_events:
            timing.stalls_by_level[LEVEL_LLC] = self._stall_table(
                llc_stall)[tally.llc_stall_events]
        if tally.dram_stall_events:
            timing.stalls_by_level[LEVEL_DRAM] = self._stall_table(
                dram_stall)[tally.dram_stall_events]

        policy = get_policy(spec.policy)
        return SimulationResult(
            workload=self.trace.workload,
            policy_name=policy.name,
            policy_description=policy.describe(),
            config=config,
            mode=spec.mode,
            detail=spec.detail,
            llc_stats=stats,
            level_stats={"llc": stats},
            timing=timing,
            binary=self.trace.binary,
        )


# ----------------------------------------------------------------------
# native kernels
# ----------------------------------------------------------------------
# Each kernel replays the whole trace for ONE rollout over the SHARED
# decoded columns; per-rollout state is flat and preallocated.  The
# ``stall`` accumulator interleaves the llc/dram constant additions in
# per-access order — the exact float-accumulation order of the engine's
# fused loop — while the per-level totals are reconstructed from the shared
# partial-sum tables (each level's total is a pure repeated addition).


def _rollout_lru(blocks, sets, demand, mclass, num_sets, num_ways,
                 llc_stall, dram_stall, _next_use) -> _KernelTally:
    # Insertion order of each per-set dict doubles as recency order (hits
    # delete+reinsert), mirroring the cache's fast-LRU tag dict exactly.
    tags: List[dict] = [{} for _ in range(num_sets)]
    per_set_hits = [0] * num_sets
    hits = evictions = 0
    compulsory = capacity = conflict = 0
    stall = 0.0
    llc_events = dram_events = 0
    for block, set_index, dem, mc in zip(blocks, sets, demand, mclass):
        t = tags[set_index]
        if block in t:
            del t[block]
            t[block] = None
            per_set_hits[set_index] += 1
            hits += 1
            if dem:
                stall += llc_stall
                llc_events += 1
        else:
            if mc == 0:
                compulsory += 1
            elif mc == 1:
                capacity += 1
            else:
                conflict += 1
            if len(t) == num_ways:
                del t[next(iter(t))]
                evictions += 1
            t[block] = None
            if dem:
                stall += dram_stall
                dram_events += 1
    return _KernelTally(hits, evictions, compulsory, capacity, conflict,
                        per_set_hits, stall, llc_events, dram_events)


def _rollout_fifo(blocks, sets, demand, mclass, num_sets, num_ways,
                  llc_stall, dram_stall, _next_use) -> _KernelTally:
    # Insertion order == fill order; hits do not reorder, so the first dict
    # key is the min-inserted_at line FIFO's choose_victim picks.
    tags: List[dict] = [{} for _ in range(num_sets)]
    per_set_hits = [0] * num_sets
    hits = evictions = 0
    compulsory = capacity = conflict = 0
    stall = 0.0
    llc_events = dram_events = 0
    for block, set_index, dem, mc in zip(blocks, sets, demand, mclass):
        t = tags[set_index]
        if block in t:
            per_set_hits[set_index] += 1
            hits += 1
            if dem:
                stall += llc_stall
                llc_events += 1
        else:
            if mc == 0:
                compulsory += 1
            elif mc == 1:
                capacity += 1
            else:
                conflict += 1
            if len(t) == num_ways:
                del t[next(iter(t))]
                evictions += 1
            t[block] = None
            if dem:
                stall += dram_stall
                dram_events += 1
    return _KernelTally(hits, evictions, compulsory, capacity, conflict,
                        per_set_hits, stall, llc_events, dram_events)


def _rollout_belady(blocks, sets, demand, mclass, num_sets, num_ways,
                    llc_stall, dram_stall, next_use) -> _KernelTally:
    # Flat per-way columns: resident block and its next use, indexed by
    # set_index * num_ways + way.  Fills-only caches fill ways 0..W-1 in
    # order, so the per-set occupancy counter IS the next free way; the
    # victim scan takes the first way-order maximum (strictly-greater
    # comparisons), matching max(lines, key=next_use).
    total_ways = num_sets * num_ways
    resident_block = [-1] * total_ways
    resident_next = [0] * total_ways
    occupancy = [0] * num_sets
    slot_of: Dict[int, int] = {}
    per_set_hits = [0] * num_sets
    hits = evictions = 0
    compulsory = capacity = conflict = 0
    stall = 0.0
    llc_events = dram_events = 0
    for position, (block, set_index, dem, mc) in enumerate(
            zip(blocks, sets, demand, mclass)):
        slot = slot_of.get(block)
        nxt = next_use[position]
        if slot is not None:
            resident_next[slot] = nxt
            per_set_hits[set_index] += 1
            hits += 1
            if dem:
                stall += llc_stall
                llc_events += 1
        else:
            if mc == 0:
                compulsory += 1
            elif mc == 1:
                capacity += 1
            else:
                conflict += 1
            base = set_index * num_ways
            filled = occupancy[set_index]
            if filled < num_ways:
                slot = base + filled
                occupancy[set_index] = filled + 1
            else:
                slot = base
                farthest = resident_next[base]
                for way in range(1, num_ways):
                    value = resident_next[base + way]
                    if value > farthest:
                        farthest = value
                        slot = base + way
                del slot_of[resident_block[slot]]
                evictions += 1
            resident_block[slot] = block
            resident_next[slot] = nxt
            slot_of[block] = slot
            if dem:
                stall += dram_stall
                dram_events += 1
    return _KernelTally(hits, evictions, compulsory, capacity, conflict,
                        per_set_hits, stall, llc_events, dram_events)


def _rollout_srrip(blocks, sets, demand, mclass, num_sets, num_ways,
                   llc_stall, dram_stall, _next_use) -> _KernelTally:
    # Flat RRPV column (2-bit counters, the registry default): hit -> 0,
    # fill -> max-1, victim = first way at max in way order, ageing every
    # way and retrying when none is — exactly _RRIPBase.choose_victim over
    # a full set.
    max_rrpv = 3
    insertion = max_rrpv - 1
    total_ways = num_sets * num_ways
    resident_block = [-1] * total_ways
    rrpv = [max_rrpv] * total_ways
    occupancy = [0] * num_sets
    slot_of: Dict[int, int] = {}
    per_set_hits = [0] * num_sets
    hits = evictions = 0
    compulsory = capacity = conflict = 0
    stall = 0.0
    llc_events = dram_events = 0
    for block, set_index, dem, mc in zip(blocks, sets, demand, mclass):
        slot = slot_of.get(block)
        if slot is not None:
            rrpv[slot] = 0
            per_set_hits[set_index] += 1
            hits += 1
            if dem:
                stall += llc_stall
                llc_events += 1
        else:
            if mc == 0:
                compulsory += 1
            elif mc == 1:
                capacity += 1
            else:
                conflict += 1
            base = set_index * num_ways
            filled = occupancy[set_index]
            if filled < num_ways:
                slot = base + filled
                occupancy[set_index] = filled + 1
            else:
                while True:
                    slot = -1
                    for way in range(num_ways):
                        if rrpv[base + way] >= max_rrpv:
                            slot = base + way
                            break
                    if slot >= 0:
                        break
                    for way in range(num_ways):
                        aged = rrpv[base + way] + 1
                        rrpv[base + way] = (aged if aged < max_rrpv
                                            else max_rrpv)
                del slot_of[resident_block[slot]]
                evictions += 1
            resident_block[slot] = block
            rrpv[slot] = insertion
            slot_of[block] = slot
            if dem:
                stall += dram_stall
                dram_events += 1
    return _KernelTally(hits, evictions, compulsory, capacity, conflict,
                        per_set_hits, stall, llc_events, dram_events)


_NATIVE_KERNELS = {
    "lru": _rollout_lru,
    "fifo": _rollout_fifo,
    "belady": _rollout_belady,
    "srrip": _rollout_srrip,
}


def run_batch(trace: MemoryTrace,
              specs: Sequence[RolloutSpec]) -> List[SimulationResult]:
    """Convenience wrapper: one lockstep pass over ``trace`` for ``specs``."""
    return BatchSimulator(trace).run(list(specs))
