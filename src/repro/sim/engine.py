"""Trace-driven simulation engine producing eviction-annotated records.

The engine replays a :class:`~repro.workloads.trace.MemoryTrace` and emits
one :class:`~repro.tracedb.schema.AccessRecord` per LLC access, annotated
with forward reuse distances, recency, eviction victims, resident lines,
policy eviction scores and source/assembly context — exactly the columns the
trace database stores (paper section 4.3).

Two modes are supported:

* ``"llc_only"`` (default) — every trace access is an LLC access, mirroring
  the PARROT infrastructure the paper builds on, which "replays LLC accesses"
  directly.  This is what the trace database uses.
* ``"hierarchy"`` — accesses are filtered through L1D and L2 (both LRU)
  first; only their misses reach the LLC.  The filtered stream is identical
  for every LLC policy, so oracle next-use information can still be
  precomputed.  This mode feeds the IPC/speedup use cases.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.policies.base import NEVER, ReplacementPolicy, get_policy
from repro.sim.cache import Cache, CacheStats
from repro.sim.config import HierarchyConfig, SMALL_CONFIG
from repro.sim.cpu import (
    CPUModel,
    LEVEL_DRAM,
    LEVEL_L1,
    LEVEL_L2,
    LEVEL_LLC,
    TimingResult,
)
from repro.policies.basic import LRUPolicy
from repro.tracedb.schema import AccessRecord
from repro.workloads.trace import MemoryTrace, TraceAccess


@dataclass
class SimulationResult:
    """Everything produced by one (workload, policy) simulation."""

    workload: str
    policy_name: str
    policy_description: str
    config: HierarchyConfig
    mode: str
    records: List[AccessRecord] = field(default_factory=list)
    llc_stats: CacheStats = field(default_factory=CacheStats)
    level_stats: Dict[str, CacheStats] = field(default_factory=dict)
    timing: TimingResult = field(default_factory=TimingResult)
    set_hit_rates: Dict[int, float] = field(default_factory=dict)
    wrong_evictions: int = 0
    binary: Optional[object] = field(default=None, repr=False)

    @property
    def llc_accesses(self) -> int:
        return self.llc_stats.accesses

    @property
    def llc_hit_rate(self) -> float:
        return self.llc_stats.hit_rate

    @property
    def llc_miss_rate(self) -> float:
        return self.llc_stats.miss_rate

    @property
    def ipc(self) -> float:
        return self.timing.ipc

    def summary(self) -> str:
        return (f"{self.workload} under {self.policy_name}: "
                f"{self.llc_stats.accesses} LLC accesses, "
                f"{self.llc_stats.miss_rate * 100:.2f}% miss rate, "
                f"IPC {self.timing.ipc:.4f}")


class SimulationEngine:
    """Replays memory traces and produces annotated LLC access records."""

    def __init__(self, config: HierarchyConfig = SMALL_CONFIG,
                 mode: str = "llc_only", history_window: int = 8,
                 annotate_context: bool = True,
                 max_records: Optional[int] = None):
        if mode not in ("llc_only", "hierarchy"):
            raise ValueError("mode must be 'llc_only' or 'hierarchy'")
        self.config = config
        self.mode = mode
        self.history_window = history_window
        self.annotate_context = annotate_context
        self.max_records = max_records

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(self, trace: MemoryTrace, policy) -> SimulationResult:
        """Simulate ``trace`` with ``policy`` at the LLC.

        ``policy`` may be a :class:`ReplacementPolicy` instance or a
        registered policy name.
        """
        if isinstance(policy, str):
            policy = get_policy(policy)
        llc_stream, upper_levels = self._build_llc_stream(trace)
        next_use, prev_use = self._compute_reuse(llc_stream)
        return self._replay_llc(trace, policy, llc_stream, upper_levels,
                                next_use, prev_use)

    # ------------------------------------------------------------------
    # pass 1: determine which accesses reach the LLC
    # ------------------------------------------------------------------
    def _build_llc_stream(self, trace: MemoryTrace
                          ) -> Tuple[List[Tuple[int, TraceAccess]], Dict[int, str]]:
        """Return the LLC-bound accesses and the service level of the rest.

        The first element is a list of ``(trace_index, access)`` pairs that
        reach the LLC; the second maps every other trace index to the level
        (L1 or L2) that serviced it.
        """
        if self.mode == "llc_only":
            return [(index, access) for index, access in enumerate(trace.accesses)], {}

        l1d = Cache(self.config.l1d, LRUPolicy())
        l2 = Cache(self.config.l2, LRUPolicy())
        llc_stream: List[Tuple[int, TraceAccess]] = []
        upper_levels: Dict[int, str] = {}
        for index, access in enumerate(trace.accesses):
            if l1d.access(access.pc, access.address, access.is_write, index,
                          is_prefetch=access.is_prefetch).hit:
                upper_levels[index] = LEVEL_L1
                continue
            if l2.access(access.pc, access.address, access.is_write, index,
                         is_prefetch=access.is_prefetch).hit:
                upper_levels[index] = LEVEL_L2
                continue
            llc_stream.append((index, access))
        return llc_stream, upper_levels

    # ------------------------------------------------------------------
    # pass 2 support: reuse-distance precomputation over the LLC stream
    # ------------------------------------------------------------------
    def _compute_reuse(self, llc_stream: Sequence[Tuple[int, TraceAccess]]
                       ) -> Tuple[List[int], List[int]]:
        """Forward next-use and backward previous-use positions per access.

        Positions are indices into the LLC access stream (so reuse distances
        are measured in LLC accesses, matching the paper's database).
        ``NEVER`` marks "no next use"; ``-1`` marks "no previous use".
        """
        block_bytes = self.config.llc.block_bytes
        positions_by_block: Dict[int, List[int]] = {}
        blocks: List[int] = []
        for position, (_index, access) in enumerate(llc_stream):
            block = access.address // block_bytes
            blocks.append(block)
            positions_by_block.setdefault(block, []).append(position)

        next_use = [NEVER] * len(llc_stream)
        prev_use = [-1] * len(llc_stream)
        for positions in positions_by_block.values():
            for i, position in enumerate(positions):
                if i + 1 < len(positions):
                    next_use[position] = positions[i + 1]
                if i > 0:
                    prev_use[position] = positions[i - 1]
        self._positions_by_block = positions_by_block
        return next_use, prev_use

    def _next_use_of_block(self, block: int, position: int) -> int:
        """Next LLC-stream position at which ``block`` is accessed after
        ``position`` (exclusive), or ``NEVER``."""
        positions = self._positions_by_block.get(block)
        if not positions:
            return NEVER
        index = bisect.bisect_right(positions, position)
        if index >= len(positions):
            return NEVER
        return positions[index]

    # ------------------------------------------------------------------
    # pass 2: replay the LLC with the policy under study
    # ------------------------------------------------------------------
    def _replay_llc(self, trace: MemoryTrace, policy: ReplacementPolicy,
                    llc_stream: List[Tuple[int, TraceAccess]],
                    upper_levels: Dict[int, str],
                    next_use: List[int], prev_use: List[int]) -> SimulationResult:
        llc = Cache(self.config.llc, policy, classify_misses=True)
        cpu = CPUModel(self.config)
        block_bytes = self.config.llc.block_bytes
        binary = trace.binary

        records: List[AccessRecord] = []
        history: List[Tuple[int, int]] = []  # (block, pc) of recent LLC accesses
        llc_levels: Dict[int, str] = {}
        wrong_evictions = 0

        for position, (trace_index, access) in enumerate(llc_stream):
            block = access.address // block_bytes
            outcome = llc.access(access.pc, access.address, access.is_write,
                                 access_index=position,
                                 next_use=next_use[position],
                                 is_prefetch=access.is_prefetch)
            llc_levels[trace_index] = LEVEL_LLC if outcome.hit else LEVEL_DRAM

            accessed_rd = (None if next_use[position] >= NEVER
                           else next_use[position] - position)
            recency = (None if prev_use[position] < 0
                       else position - prev_use[position])
            evicted_rd = None
            if outcome.evicted_block is not None:
                evicted_next = self._next_use_of_block(outcome.evicted_block, position)
                evicted_rd = None if evicted_next >= NEVER else evicted_next - position
                if evicted_rd is not None and (accessed_rd is None
                                               or evicted_rd < accessed_rd):
                    wrong_evictions += 1

            if self.max_records is None or len(records) < self.max_records:
                function_name = ""
                function_code = ""
                assembly_code = ""
                if self.annotate_context and binary is not None:
                    function_name = binary.function_name(access.pc)
                    function_code = binary.source_snippet(access.pc)
                    assembly_code = binary.assembly_context(access.pc)
                records.append(AccessRecord(
                    access_index=position,
                    program_counter=access.pc,
                    memory_address=block,
                    cache_set_id=outcome.set_index,
                    is_hit=outcome.hit,
                    miss_type=outcome.miss_type,
                    evicted_address=outcome.evicted_block,
                    accessed_reuse_distance=accessed_rd,
                    evicted_reuse_distance=evicted_rd,
                    accessed_recency=recency,
                    function_name=function_name,
                    function_code=function_code,
                    assembly_code=assembly_code,
                    current_cache_lines=list(outcome.resident_lines),
                    recent_access_history=list(history[-self.history_window:]),
                    cache_line_eviction_scores=list(outcome.eviction_scores),
                ))

            history.append((block, access.pc))
            if len(history) > 4 * self.history_window:
                del history[: 2 * self.history_window]

        # Timing: walk the whole trace once, using the recorded service levels.
        for trace_index, access in enumerate(trace.accesses):
            if not access.is_prefetch:
                cpu.retire(access.instructions_since_last + 1)
            level = upper_levels.get(trace_index) or llc_levels.get(trace_index)
            if level is None:
                # llc_only mode guarantees an LLC level for every access; this
                # branch only guards against malformed traces.
                level = LEVEL_DRAM
            cpu.memory_access(level, is_write=access.is_write,
                              is_prefetch=access.is_prefetch)

        result = SimulationResult(
            workload=trace.workload,
            policy_name=getattr(policy, "name", type(policy).__name__),
            policy_description=policy.describe(),
            config=self.config,
            mode=self.mode,
            records=records,
            llc_stats=llc.stats,
            level_stats={"llc": llc.stats},
            timing=cpu.finish(),
            set_hit_rates=llc.set_hit_rates(),
            wrong_evictions=wrong_evictions,
            binary=binary,
        )
        return result


def simulate(trace: MemoryTrace, policy, config: HierarchyConfig = SMALL_CONFIG,
             mode: str = "llc_only", **engine_kwargs) -> SimulationResult:
    """Convenience wrapper: build an engine and run one simulation."""
    engine = SimulationEngine(config=config, mode=mode, **engine_kwargs)
    return engine.run(trace, policy)
