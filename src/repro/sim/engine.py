"""Trace-driven simulation engine producing eviction-annotated records.

The engine replays a :class:`~repro.workloads.trace.MemoryTrace` — reading
its raw typed columns, not per-access objects — and appends one row per LLC
access into a columnar :class:`~repro.tracedb.schema.AccessLog`, annotated
with forward reuse distances, recency, eviction victims, resident lines,
policy eviction scores and source/assembly context — exactly the columns the
trace database stores (paper section 4.3).  Row views
(:class:`~repro.tracedb.schema.AccessRecord`) are materialised lazily via
``SimulationResult.records``.

Two modes are supported:

* ``"llc_only"`` (default) — every trace access is an LLC access, mirroring
  the PARROT infrastructure the paper builds on, which "replays LLC accesses"
  directly.  This is what the trace database uses.
* ``"hierarchy"`` — accesses are filtered through L1D and L2 (both LRU)
  first; only their misses reach the LLC.  The filtered stream is identical
  for every LLC policy, so oracle next-use information can still be
  precomputed.  This mode feeds the IPC/speedup use cases.

Two detail levels are supported:

* ``"full"`` (default) — one :class:`AccessRecord` per LLC access, with
  resident-line and eviction-score snapshots, source context and the
  wrong-eviction count.  This is what the trace database consumes.
* ``"stats"`` — aggregate statistics and timing only.  The replay skips
  record construction, context annotation, per-access snapshot lists and —
  unless the policy declares ``requires_future`` — the whole reuse-distance
  precomputation, and runs a single fused simulate+timing loop.  Hit/miss/
  eviction/bypass counts, per-set rates and IPC are identical to a full run.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from functools import cached_property
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.policies.base import NEVER, ReplacementPolicy, get_policy
from repro.sim.cache import (
    Cache,
    CacheStats,
    DETAIL_FULL,
    DETAIL_LEVELS,
    DETAIL_STATS,
)
from repro.sim.config import HierarchyConfig, SMALL_CONFIG
from repro.sim.cpu import (
    CPUModel,
    LEVEL_DRAM,
    LEVEL_L1,
    LEVEL_L2,
    LEVEL_LLC,
    TimingResult,
)
from repro.policies.basic import LRUPolicy
from repro.tracedb.schema import (
    AccessLog,
    AccessRecord,
    MISS_TYPE_CODES,
    NEVER_REUSED,
)
from repro.workloads.trace import FLAG_PREFETCH, FLAG_WRITE, MemoryTrace


@dataclass
class TraceReuse:
    """Reuse-distance precomputation for one access stream.

    ``next_use`` is always present (the stats path only needs it for
    ``requires_future`` policies); ``prev_use`` and ``positions_by_block``
    are the richer full-detail form.  Instances are shared read-only across
    rollouts and across cells via :meth:`SimulationCache.reuse_for`, so they
    must never be mutated after construction.
    """

    next_use: List[int]
    prev_use: Optional[List[int]] = None
    positions_by_block: Optional[Dict[int, List[int]]] = None


#: Provider signature for shared reuse precomputation:
#: ``(trace, block_bytes, full) -> TraceReuse`` (llc_only streams only —
#: hierarchy streams depend on the upper-level geometry, not just the trace).
ReuseProvider = Callable[[MemoryTrace, int, bool], TraceReuse]


def compute_next_use(addresses: Sequence[int], block_bytes: int) -> List[int]:
    """Per-position next-use indices over one address sequence.

    Single reverse pass — cheaper than the full per-block position lists the
    record-building path needs.  ``NEVER`` marks "no next use".
    """
    next_use = [NEVER] * len(addresses)
    next_seen: Dict[int, int] = {}
    for position in range(len(addresses) - 1, -1, -1):
        block = addresses[position] // block_bytes
        next_use[position] = next_seen.get(block, NEVER)
        next_seen[block] = position
    return next_use


def compute_full_reuse(addresses: Sequence[int],
                       block_bytes: int) -> TraceReuse:
    """Full reuse precomputation (next/prev use + per-block positions).

    Positions are indices into the given access stream, matching what
    :meth:`SimulationEngine._compute_reuse` historically produced over the
    LLC stream; the full-detail replay needs all three pieces.
    """
    positions_by_block: Dict[int, List[int]] = {}
    for position, address in enumerate(addresses):
        block = address // block_bytes
        positions_by_block.setdefault(block, []).append(position)

    next_use = [NEVER] * len(addresses)
    prev_use = [-1] * len(addresses)
    for positions in positions_by_block.values():
        for i, position in enumerate(positions):
            if i + 1 < len(positions):
                next_use[position] = positions[i + 1]
            if i > 0:
                prev_use[position] = positions[i - 1]
    return TraceReuse(next_use=next_use, prev_use=prev_use,
                      positions_by_block=positions_by_block)


@dataclass
class PreparedReplay:
    """Precomputed replay inputs shared across rollouts of one trace.

    The batch kernel computes the LLC stream (hierarchy filtering), the
    upper-level service map and the reuse arrays once per (trace, geometry)
    group and hands the same objects to every rollout via
    :meth:`SimulationEngine.run`; all fields are treated as read-only.
    ``None`` fields fall back to the engine's own per-run computation.
    """

    llc_stream: Optional[List[Tuple[int, int, int, bool, bool]]] = None
    upper_levels: Optional[Dict[int, str]] = None
    reuse: Optional[TraceReuse] = None


@dataclass
class SimulationResult:
    """Everything produced by one (workload, policy) simulation.

    Per-access data lives in the columnar ``log``; the ``records`` row view
    is materialised (and cached) only when someone asks for it.
    """

    workload: str
    policy_name: str
    policy_description: str
    config: HierarchyConfig
    mode: str
    detail: str = DETAIL_FULL
    log: Optional[AccessLog] = field(default=None, repr=False)
    llc_stats: CacheStats = field(default_factory=CacheStats)
    level_stats: Dict[str, CacheStats] = field(default_factory=dict)
    timing: TimingResult = field(default_factory=TimingResult)
    wrong_evictions: int = 0
    binary: Optional[object] = field(default=None, repr=False)

    @property
    def num_records(self) -> int:
        """Row count of the access log (without materialising records)."""
        return len(self.log) if self.log is not None else 0

    @cached_property
    def records(self) -> List[AccessRecord]:
        """Lazily materialised row views over the columnar access log."""
        return self.log.to_records() if self.log is not None else []

    def __getstate__(self) -> dict:
        # Drop lazily materialised caches: the row views rebuild from the
        # (compact) log, and pickling them would explode the payload the
        # persistent store and parallel workers ship around.
        state = dict(self.__dict__)
        state.pop("records", None)
        state.pop("set_hit_rates", None)
        return state

    @property
    def llc_accesses(self) -> int:
        return self.llc_stats.accesses

    @property
    def llc_hit_rate(self) -> float:
        return self.llc_stats.hit_rate

    @property
    def llc_miss_rate(self) -> float:
        return self.llc_stats.miss_rate

    @property
    def ipc(self) -> float:
        return self.timing.ipc

    @cached_property
    def set_hit_rates(self) -> Dict[int, float]:
        """Per-set hit rates, derived lazily from the LLC counters.

        Computed (and cached) on first read, so stats-only replay does no
        per-set post-processing unless a caller actually asks for it.
        """
        return self.llc_stats.set_hit_rates()

    def summary(self) -> str:
        return (f"{self.workload} under {self.policy_name}: "
                f"{self.llc_stats.accesses} LLC accesses, "
                f"{self.llc_stats.miss_rate * 100:.2f}% miss rate, "
                f"IPC {self.timing.ipc:.4f}")


class SimulationEngine:
    """Replays memory traces and produces annotated LLC access records."""

    def __init__(self, config: HierarchyConfig = SMALL_CONFIG,
                 mode: str = "llc_only", history_window: int = 8,
                 annotate_context: bool = True,
                 max_records: Optional[int] = None,
                 detail: str = DETAIL_FULL,
                 reuse_cache: Optional[ReuseProvider] = None):
        if mode not in ("llc_only", "hierarchy"):
            raise ValueError("mode must be 'llc_only' or 'hierarchy'")
        if detail not in DETAIL_LEVELS:
            raise ValueError(f"detail must be one of {DETAIL_LEVELS}")
        self.config = config
        self.mode = mode
        self.history_window = history_window
        self.annotate_context = annotate_context
        self.max_records = max_records
        self.detail = detail
        #: Optional shared reuse provider (``SimulationCache.reuse_for``):
        #: llc_only runs fetch next-use/positions from it instead of
        #: recomputing per cell.  The returned arrays are identical to the
        #: local computation, so results are byte-for-byte unchanged.
        self.reuse_cache = reuse_cache

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(self, trace: MemoryTrace, policy,
            prepared: Optional[PreparedReplay] = None) -> SimulationResult:
        """Simulate ``trace`` with ``policy`` at the LLC.

        ``policy`` may be a :class:`ReplacementPolicy` instance or a
        registered policy name.  ``prepared`` optionally supplies
        precomputed (shared, read-only) replay inputs — the batch kernel's
        way of amortising stream filtering and reuse precomputation across
        many rollouts; a ``None`` field falls back to local computation, so
        results are identical either way.
        """
        if isinstance(policy, str):
            policy = get_policy(policy)
        if self.detail == DETAIL_STATS:
            return self._run_stats(trace, policy, prepared)
        if prepared is not None and prepared.llc_stream is not None:
            llc_stream = prepared.llc_stream
            upper_levels = prepared.upper_levels or {}
        else:
            llc_stream, upper_levels = self._build_llc_stream(trace)
        reuse = prepared.reuse if prepared is not None else None
        if reuse is None or reuse.prev_use is None:
            if self.mode == "llc_only" and self.reuse_cache is not None:
                reuse = self.reuse_cache(trace,
                                         self.config.llc.block_bytes, True)
            else:
                reuse = compute_full_reuse(
                    [address for _i, _pc, address, _w, _p in llc_stream],
                    self.config.llc.block_bytes)
        self._positions_by_block = reuse.positions_by_block or {}
        return self._replay_llc(trace, policy, llc_stream, upper_levels,
                                reuse.next_use, reuse.prev_use)

    # ------------------------------------------------------------------
    # pass 1: determine which accesses reach the LLC
    # ------------------------------------------------------------------
    def _build_llc_stream(self, trace: MemoryTrace
                          ) -> Tuple[List[Tuple[int, int, int, bool, bool]],
                                     Dict[int, str]]:
        """Return the LLC-bound accesses and the service level of the rest.

        The first element is a list of ``(trace_index, pc, address, is_write,
        is_prefetch)`` tuples (decoded straight from the trace columns) that
        reach the LLC; the second maps every other trace index to the level
        (L1 or L2) that serviced it.
        """
        pcs, addresses, flags, _instr = trace.columns()
        if self.mode == "llc_only":
            return [(index, pc, address, bool(flag & FLAG_WRITE),
                     bool(flag & FLAG_PREFETCH))
                    for index, (pc, address, flag)
                    in enumerate(zip(pcs, addresses, flags))], {}

        # The upper levels are always LRU, so the stats-only fast path is
        # behaviourally identical and filtering needs no outcome details.
        l1d = Cache(self.config.l1d, LRUPolicy(), detail=DETAIL_STATS)
        l2 = Cache(self.config.l2, LRUPolicy(), detail=DETAIL_STATS)
        l1_access = l1d.access_fast
        l2_access = l2.access_fast
        llc_stream: List[Tuple[int, int, int, bool, bool]] = []
        upper_levels: Dict[int, str] = {}
        for index, (pc, address, flag) in enumerate(zip(pcs, addresses, flags)):
            is_write = bool(flag & FLAG_WRITE)
            is_prefetch = bool(flag & FLAG_PREFETCH)
            if l1_access(pc, address, is_write, index,
                         is_prefetch=is_prefetch):
                upper_levels[index] = LEVEL_L1
                continue
            if l2_access(pc, address, is_write, index,
                         is_prefetch=is_prefetch):
                upper_levels[index] = LEVEL_L2
                continue
            llc_stream.append((index, pc, address, is_write, is_prefetch))
        return llc_stream, upper_levels

    # ------------------------------------------------------------------
    # pass 2 support: reuse-distance precomputation over the LLC stream
    # ------------------------------------------------------------------
    def _next_use_of_block(self, block: int, position: int) -> int:
        """Next LLC-stream position at which ``block`` is accessed after
        ``position`` (exclusive), or ``NEVER``."""
        positions = self._positions_by_block.get(block)
        if not positions:
            return NEVER
        index = bisect.bisect_right(positions, position)
        if index >= len(positions):
            return NEVER
        return positions[index]

    # ------------------------------------------------------------------
    # pass 2: replay the LLC with the policy under study
    # ------------------------------------------------------------------
    def _replay_llc(self, trace: MemoryTrace, policy: ReplacementPolicy,
                    llc_stream: List[Tuple[int, int, int, bool, bool]],
                    upper_levels: Dict[int, str],
                    next_use: List[int], prev_use: List[int]) -> SimulationResult:
        llc = Cache(self.config.llc, policy, classify_misses=True)
        cpu = CPUModel(self.config)
        block_bytes = self.config.llc.block_bytes
        binary = trace.binary

        log = AccessLog()
        history: List[Tuple[int, int]] = []  # (block, pc) of recent LLC accesses
        llc_levels: Dict[int, str] = {}
        wrong_evictions = 0
        annotate = self.annotate_context and binary is not None
        # Source/assembly context is a pure function of the PC, so it is
        # resolved once per unique PC instead of once per access.
        context_by_pc: Dict[int, Tuple[str, str, str]] = {}
        empty_context = ("", "", "")

        for position, (trace_index, pc, address, is_write,
                       is_prefetch) in enumerate(llc_stream):
            block = address // block_bytes
            outcome = llc.access(pc, address, is_write,
                                 access_index=position,
                                 next_use=next_use[position],
                                 is_prefetch=is_prefetch)
            llc_levels[trace_index] = LEVEL_LLC if outcome.hit else LEVEL_DRAM

            accessed_rd = (NEVER_REUSED if next_use[position] >= NEVER
                          else next_use[position] - position)
            recency = (NEVER_REUSED if prev_use[position] < 0
                       else position - prev_use[position])
            evicted_rd = NEVER_REUSED
            evicted_block = outcome.evicted_block
            if evicted_block is not None:
                evicted_next = self._next_use_of_block(evicted_block, position)
                if evicted_next < NEVER:
                    evicted_rd = evicted_next - position
                    if accessed_rd == NEVER_REUSED or evicted_rd < accessed_rd:
                        wrong_evictions += 1

            if self.max_records is None or len(log) < self.max_records:
                if annotate:
                    context = context_by_pc.get(pc)
                    if context is None:
                        context = (binary.function_name(pc),
                                   binary.source_snippet(pc),
                                   binary.assembly_context(pc))
                        context_by_pc[pc] = context
                else:
                    context = empty_context
                log.append(
                    position, pc, block, outcome.set_index, outcome.hit,
                    MISS_TYPE_CODES[outcome.miss_type],
                    -1 if evicted_block is None else evicted_block,
                    accessed_rd, evicted_rd, recency,
                    context[0], context[1], context[2],
                    list(outcome.resident_lines),
                    list(history[-self.history_window:]),
                    list(outcome.eviction_scores),
                )

            history.append((block, pc))
            if len(history) > 4 * self.history_window:
                del history[: 2 * self.history_window]

        # Timing: walk the whole trace once — straight over the raw columns —
        # using the recorded service levels.
        _pcs, _addresses, trace_flags, trace_instr = trace.columns()
        for trace_index, (flag, gap) in enumerate(zip(trace_flags, trace_instr)):
            is_prefetch = bool(flag & FLAG_PREFETCH)
            if not is_prefetch:
                cpu.retire(gap + 1)
            level = upper_levels.get(trace_index) or llc_levels.get(trace_index)
            if level is None:
                # llc_only mode guarantees an LLC level for every access; this
                # branch only guards against malformed traces.
                level = LEVEL_DRAM
            cpu.memory_access(level, is_write=bool(flag & FLAG_WRITE),
                              is_prefetch=is_prefetch)

        result = SimulationResult(
            workload=trace.workload,
            policy_name=getattr(policy, "name", type(policy).__name__),
            policy_description=policy.describe(),
            config=self.config,
            mode=self.mode,
            detail=self.detail,
            log=log,
            llc_stats=llc.stats,
            level_stats={"llc": llc.stats},
            timing=cpu.finish(),
            wrong_evictions=wrong_evictions,
            binary=binary,
        )
        return result

    # ------------------------------------------------------------------
    # stats-only replay
    # ------------------------------------------------------------------
    @staticmethod
    def _next_use_sequence(addresses: Sequence[int],
                           block_bytes: int) -> List[int]:
        """Back-compat alias for :func:`compute_next_use` (only computed at
        all when the policy declares ``requires_future``)."""
        return compute_next_use(addresses, block_bytes)

    def _run_stats(self, trace: MemoryTrace, policy: ReplacementPolicy,
                   prepared: Optional[PreparedReplay] = None
                   ) -> SimulationResult:
        """Aggregate-only replay: no records, snapshots or context lookups."""
        config = self.config
        llc = Cache(config.llc, policy, classify_misses=True,
                    detail=DETAIL_STATS)
        requires_future = bool(getattr(policy, "requires_future", False))
        if self.mode == "llc_only":
            llc_stats, timing = self._replay_stats_llc_only(
                trace, llc, requires_future, prepared)
        else:
            llc_stats, timing = self._replay_stats_hierarchy(
                trace, llc, requires_future, prepared)
        return SimulationResult(
            workload=trace.workload,
            policy_name=getattr(policy, "name", type(policy).__name__),
            policy_description=policy.describe(),
            config=config,
            mode=self.mode,
            detail=self.detail,
            llc_stats=llc_stats,
            level_stats={"llc": llc_stats},
            timing=timing,
            binary=trace.binary,
        )

    def _replay_stats_llc_only(self, trace: MemoryTrace, llc: Cache,
                               requires_future: bool,
                               prepared: Optional[PreparedReplay] = None
                               ) -> Tuple[CacheStats, TimingResult]:
        """Fused simulate+timing loop over the raw trace columns.

        Accumulates the analytic timing model inline in the same order as
        :class:`CPUModel`, so IPC/cycles match the full-detail path exactly.
        """
        config = self.config
        pcs, addresses, flags, instr = trace.columns()
        next_use = None
        if requires_future:
            if prepared is not None and prepared.reuse is not None:
                next_use = prepared.reuse.next_use
            elif self.reuse_cache is not None:
                next_use = self.reuse_cache(
                    trace, config.llc.block_bytes, False).next_use
            else:
                next_use = compute_next_use(addresses,
                                            config.llc.block_bytes)

        # Hoisted loop state: one bound method, precomputed stall constants.
        access_fast = llc.access_fast
        retire_width = config.core.retire_width
        overlap = 1.0 - config.core.overlap_factor
        to_llc = float(config.l1d.latency_cycles + config.l2.latency_cycles
                       + config.llc.latency_cycles)
        to_dram = to_llc + config.dram.access_latency_cycles
        llc_stall = to_llc * overlap
        dram_stall = to_dram * overlap

        instructions = 0
        base_cycles = 0.0
        stall_cycles = 0.0
        llc_stall_total = 0.0
        dram_stall_total = 0.0
        llc_count = dram_count = 0
        llc_stall_events = dram_stall_events = 0

        for position, (pc, address, flag, gap) in enumerate(
                zip(pcs, addresses, flags, instr)):
            is_prefetch = bool(flag & FLAG_PREFETCH)
            is_write = bool(flag & FLAG_WRITE)
            if next_use is None:
                hit = access_fast(pc, address, is_write,
                                  position, NEVER, is_prefetch)
            else:
                hit = access_fast(pc, address, is_write,
                                  position, next_use[position], is_prefetch)
            if not is_prefetch:
                retired = gap + 1
                instructions += retired
                base_cycles += retired / retire_width
            if hit:
                llc_count += 1
                if not (is_write or is_prefetch):
                    stall_cycles += llc_stall
                    llc_stall_total += llc_stall
                    llc_stall_events += 1
            else:
                dram_count += 1
                if not (is_write or is_prefetch):
                    stall_cycles += dram_stall
                    dram_stall_total += dram_stall
                    dram_stall_events += 1

        timing = TimingResult(
            instructions=instructions,
            base_cycles=base_cycles,
            stall_cycles=stall_cycles,
        )
        if llc_count:
            timing.accesses_by_level[LEVEL_LLC] = llc_count
        if dram_count:
            timing.accesses_by_level[LEVEL_DRAM] = dram_count
        if llc_stall_events:
            timing.stalls_by_level[LEVEL_LLC] = llc_stall_total
        if dram_stall_events:
            timing.stalls_by_level[LEVEL_DRAM] = dram_stall_total
        return llc.stats, timing

    def _replay_stats_hierarchy(self, trace: MemoryTrace, llc: Cache,
                                requires_future: bool,
                                prepared: Optional[PreparedReplay] = None
                                ) -> Tuple[CacheStats, TimingResult]:
        """Stats-only hierarchy replay: filter, replay LLC, one timing walk."""
        if prepared is not None and prepared.llc_stream is not None:
            llc_stream = prepared.llc_stream
            upper_levels = prepared.upper_levels or {}
        else:
            llc_stream, upper_levels = self._build_llc_stream(trace)
        block_bytes = self.config.llc.block_bytes
        next_use = None
        if requires_future:
            if prepared is not None and prepared.reuse is not None:
                next_use = prepared.reuse.next_use
            else:
                next_use = compute_next_use(
                    [address for _i, _pc, address, _w, _p in llc_stream],
                    block_bytes)

        access_fast = llc.access_fast
        llc_hits: List[bool] = []
        for position, (_trace_index, pc, address, is_write,
                       is_prefetch) in enumerate(llc_stream):
            llc_hits.append(access_fast(
                pc, address, is_write, position,
                NEVER if next_use is None else next_use[position],
                is_prefetch))

        # The filtered stream is sparse relative to the trace, so the timing
        # walk reuses CPUModel rather than a fused loop (identical numbers).
        cpu = CPUModel(self.config)
        llc_position = 0
        _pcs, _addresses, trace_flags, trace_instr = trace.columns()
        for trace_index, (flag, gap) in enumerate(zip(trace_flags, trace_instr)):
            is_prefetch = bool(flag & FLAG_PREFETCH)
            if not is_prefetch:
                cpu.retire(gap + 1)
            level = upper_levels.get(trace_index)
            if level is None:
                level = LEVEL_LLC if llc_hits[llc_position] else LEVEL_DRAM
                llc_position += 1
            cpu.memory_access(level, is_write=bool(flag & FLAG_WRITE),
                              is_prefetch=is_prefetch)
        return llc.stats, cpu.finish()


def simulate(trace: MemoryTrace, policy, config: HierarchyConfig = SMALL_CONFIG,
             mode: str = "llc_only", **engine_kwargs) -> SimulationResult:
    """Convenience wrapper: build an engine and run one simulation."""
    engine = SimulationEngine(config=config, mode=mode, **engine_kwargs)
    return engine.run(trace, policy)
