"""Parallel fan-out of (workload, policy) simulations.

:class:`ParallelSimulator` runs many independent simulations over a
``concurrent.futures`` executor — a process pool by default, with automatic
fallback to threads and then to serial execution when process pools are
unavailable (restricted environments, unpicklable payloads, missing ``fork``
support).  Results come back in submission order, so a parallel build is
byte-identical to a serial one: workloads regenerate deterministically in the
workers (crc32-seeded generators) and every policy is deterministic given its
seed.

The simulator is deliberately cache-agnostic: callers that memoise (the
:class:`~repro.core.pipeline.SimulationCache`) dispatch only their cache
misses here and install the returned results/entries back into the cache, so
memoisation and parallelism compose.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.sim.config import HierarchyConfig, SMALL_CONFIG
from repro.sim.engine import SimulationEngine, SimulationResult
from repro.workloads.generator import get_workload
from repro.workloads.trace import MemoryTrace

#: Executor strategies accepted by :class:`ParallelSimulator`.
EXECUTORS = ("auto", "process", "thread", "serial")


def default_jobs() -> int:
    """Worker count used when ``jobs`` is not given (one per CPU)."""
    return max(1, os.cpu_count() or 1)


@dataclass
class SimulationJob:
    """One (workload, policy) simulation request.

    ``trace`` may carry a pre-generated trace (pickled to workers); when it
    is ``None`` the worker regenerates the trace from ``(workload,
    num_accesses, seed)``, which is deterministic and keeps payloads small.
    """

    workload: str
    policy: str
    num_accesses: int = 20000
    seed: int = 0
    description: str = ""
    trace: Optional[MemoryTrace] = None

    def key(self) -> tuple:
        """Identity for dedup: two jobs with equal keys produce identical
        outputs.  A supplied trace is identified by its content fingerprint
        (buffer-hashed, cheap) rather than object identity, so equal traces
        merge; the description participates because entry derivation embeds
        it in the result."""
        trace_identity = (None if self.trace is None
                          else self.trace.fingerprint())
        return (self.workload, self.policy, self.num_accesses, self.seed,
                self.description, trace_identity)


def _execute_job(payload: tuple):
    """Top-level worker (must be importable for process pools)."""
    (job, config, mode, max_records, detail, want_entry) = payload
    trace = job.trace
    description = job.description
    if trace is None:
        generator = get_workload(job.workload, seed=job.seed)
        trace = generator.generate(job.num_accesses)
        if not description:
            description = generator.description
    engine = SimulationEngine(config=config, mode=mode,
                              max_records=max_records, detail=detail)
    result = engine.run(trace, job.policy)
    if want_entry:
        # Imported lazily: repro.tracedb.database imports this module.
        from repro.tracedb.database import make_entry
        return make_entry(result, workload_description=description)
    return result


class ParallelSimulator:
    """Fan (workload, policy) simulations out over an executor.

    ``executor`` is one of ``"auto"`` (process pool, falling back to threads
    then serial), ``"process"``, ``"thread"`` or ``"serial"``.  The executor
    actually used for the last call is recorded in :attr:`last_executor`.
    """

    def __init__(self, jobs: Optional[int] = None, executor: str = "auto",
                 config: HierarchyConfig = SMALL_CONFIG,
                 mode: str = "llc_only",
                 max_records: Optional[int] = None,
                 detail: str = "full"):
        if executor not in EXECUTORS:
            raise ValueError(f"executor must be one of {EXECUTORS}")
        self.jobs = jobs if jobs is not None and jobs > 0 else default_jobs()
        self.executor = executor
        self.config = config
        self.mode = mode
        self.max_records = max_records
        self.detail = detail
        self.last_executor: Optional[str] = None

    # ------------------------------------------------------------------
    def run_results(self, jobs: Sequence[SimulationJob]) -> List[SimulationResult]:
        """Simulate every job; results in submission order."""
        return self._map(jobs, want_entry=False)

    def run_entries(self, jobs: Sequence[SimulationJob]) -> list:
        """Simulate every job and derive trace-database entries in-worker.

        Building the entry (table + statistics + metadata) in the worker
        parallelises the expensive table materialisation too, not just the
        replay.  Returns :class:`~repro.tracedb.database.TraceEntry` objects
        in submission order.
        """
        return self._map(jobs, want_entry=True)

    # ------------------------------------------------------------------
    def _payloads(self, jobs: Sequence[SimulationJob],
                  want_entry: bool) -> List[tuple]:
        return [(job, self.config, self.mode, self.max_records, self.detail,
                 want_entry) for job in jobs]

    def _map(self, jobs: Sequence[SimulationJob], want_entry: bool) -> list:
        # Duplicate jobs (batched serving plans that missed a merge) run
        # once: simulate the unique key set, then fan results back out to
        # every submission slot.  The shared object is safe to alias —
        # results/entries are treated as immutable across the codebase.
        unique_index: dict = {}
        unique_jobs: List[SimulationJob] = []
        slots: List[int] = []
        for job in jobs:
            key = job.key()
            if key not in unique_index:
                unique_index[key] = len(unique_jobs)
                unique_jobs.append(job)
            slots.append(unique_index[key])
        unique_results = self._map_unique(unique_jobs, want_entry)
        return [unique_results[slot] for slot in slots]

    def _map_unique(self, jobs: Sequence[SimulationJob],
                    want_entry: bool) -> list:
        payloads = self._payloads(jobs, want_entry)
        workers = min(self.jobs, len(payloads)) or 1
        if workers <= 1 or self.executor == "serial":
            self.last_executor = "serial"
            return [_execute_job(payload) for payload in payloads]

        attempts: Tuple[str, ...]
        if self.executor == "auto":
            attempts = ("process", "thread")
        else:
            attempts = (self.executor,)
        for kind in attempts:
            pool_cls = (ProcessPoolExecutor if kind == "process"
                        else ThreadPoolExecutor)
            try:
                with pool_cls(max_workers=workers) as pool:
                    results = list(pool.map(_execute_job, payloads))
                self.last_executor = kind
                return results
            except (BrokenExecutor, OSError, pickle.PicklingError):
                # Executor infrastructure failure (sandboxed environment
                # forbidding process spawn, unpicklable payload, killed
                # worker).  Genuine simulation errors raise other exception
                # types and propagate to the caller.  Only "auto" may
                # degrade: an explicitly requested executor must either run
                # or fail loudly.
                if self.executor != "auto":
                    raise
        self.last_executor = "serial"
        return [_execute_job(payload) for payload in payloads]
