"""Parallel fan-out of (workload, policy) simulations.

:class:`ParallelSimulator` runs many independent simulations over a
``concurrent.futures`` executor — a process pool by default, with automatic
fallback to threads and then to serial execution when process pools are
unavailable (restricted environments, unpicklable payloads, missing ``fork``
support).  A crashed worker (``BrokenProcessPool``) no longer kills the whole
build: only the jobs that failed are re-dispatched into a fresh pool and, if
that fails too, run serially in the caller.  Results come back in submission
order and every job is deterministic (crc32-seeded workload generators,
seeded policies), so a recovered build is byte-identical to a clean one.
Recovery telemetry for the last run is in :attr:`ParallelSimulator.recovery`.

The simulator is deliberately cache-agnostic: callers that memoise (the
:class:`~repro.core.pipeline.SimulationCache`) dispatch only their cache
misses here and install the returned results/entries back into the cache, so
memoisation and parallelism compose.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.faults import InjectedFault, ensure_env_plan, fault_point
from repro.sim.config import HierarchyConfig, SMALL_CONFIG
from repro.sim.engine import SimulationEngine, SimulationResult
from repro.workloads.generator import get_workload
from repro.workloads.trace import MemoryTrace

#: Executor strategies accepted by :class:`ParallelSimulator`.
EXECUTORS = ("auto", "process", "thread", "serial")


def default_jobs() -> int:
    """Worker count used when ``jobs`` is not given (one per CPU)."""
    return max(1, os.cpu_count() or 1)


def planned_strategy(jobs: Optional[int] = None,
                     executor: str = "auto") -> str:
    """The executor a :class:`ParallelSimulator` would start with.

    ``"auto"`` resolves to ``"serial"`` on a single-core host (pool
    dispatch/pickling overhead cannot be repaid when the workers share one
    core) and to ``"process"`` otherwise; explicit executors are honoured
    as given.  Exposed so callers (the perf harness, telemetry) can explain
    the strategy without running anything.
    """
    if executor not in EXECUTORS:
        raise ValueError(f"executor must be one of {EXECUTORS}")
    jobs = jobs if jobs is not None and jobs > 0 else default_jobs()
    if executor == "serial" or jobs <= 1:
        return "serial"
    if executor == "auto":
        return "serial" if (os.cpu_count() or 1) <= 1 else "process"
    return executor


@dataclass
class SimulationJob:
    """One (workload, policy) simulation request.

    ``trace`` may carry a pre-generated trace (pickled to workers); when it
    is ``None`` the worker regenerates the trace from ``(workload,
    num_accesses, seed)``, which is deterministic and keeps payloads small.
    """

    workload: str
    policy: str
    num_accesses: int = 20000
    seed: int = 0
    description: str = ""
    trace: Optional[MemoryTrace] = None

    def key(self) -> tuple:
        """Identity for dedup: two jobs with equal keys produce identical
        outputs.  A supplied trace is identified by its content fingerprint
        (buffer-hashed, cheap) rather than object identity, so equal traces
        merge; the description participates because entry derivation embeds
        it in the result."""
        trace_identity = (None if self.trace is None
                          else self.trace.fingerprint())
        return (self.workload, self.policy, self.num_accesses, self.seed,
                self.description, trace_identity)


#: Failures that mean the executor *infrastructure* broke — a killed or
#: crashed worker (``BrokenExecutor``), a sandbox forbidding process spawn
#: (``OSError``), an unpicklable payload, or an injected chaos fault.
#: Jobs failing this way are re-dispatched; genuine simulation errors raise
#: other types and propagate.
RETRYABLE_FAILURES = (BrokenExecutor, OSError, pickle.PicklingError,
                      InjectedFault)


def _execute_job(payload: tuple):
    """Top-level worker (must be importable for process pools)."""
    ensure_env_plan()
    fault_point("worker.simulate")
    (job, config, mode, max_records, detail, want_entry) = payload
    trace = job.trace
    description = job.description
    if trace is None:
        generator = get_workload(job.workload, seed=job.seed)
        trace = generator.generate(job.num_accesses)
        if not description:
            description = generator.description
    engine = SimulationEngine(config=config, mode=mode,
                              max_records=max_records, detail=detail)
    result = engine.run(trace, job.policy)
    if want_entry:
        # Imported lazily: repro.tracedb.database imports this module.
        from repro.tracedb.database import make_entry
        return make_entry(result, workload_description=description)
    return result


class ParallelSimulator:
    """Fan (workload, policy) simulations out over an executor.

    ``executor`` is one of ``"auto"`` (process pool, falling back to threads
    then serial), ``"process"``, ``"thread"`` or ``"serial"``.  The executor
    actually used for the last call is recorded in :attr:`last_executor`.
    """

    def __init__(self, jobs: Optional[int] = None, executor: str = "auto",
                 config: HierarchyConfig = SMALL_CONFIG,
                 mode: str = "llc_only",
                 max_records: Optional[int] = None,
                 detail: str = "full"):
        if executor not in EXECUTORS:
            raise ValueError(f"executor must be one of {EXECUTORS}")
        self.jobs = jobs if jobs is not None and jobs > 0 else default_jobs()
        self.executor = executor
        self.config = config
        self.mode = mode
        self.max_records = max_records
        self.detail = detail
        self.last_executor: Optional[str] = None
        #: Strategy telemetry for the last ``run_*`` call: the executor
        #: that finished the work and why it was chosen (``"requested"``,
        #: ``"jobs=1"``, ``"single job"``, ``"single-core host"`` or
        #: ``"parallel"``), so benches and logs can explain themselves.
        self.last_strategy: Dict[str, Optional[str]] = {"executor": None,
                                                        "reason": None}
        #: Recovery telemetry for the last ``run_*`` call: how many jobs
        #: were re-dispatched after a pool failure, how many fresh pools
        #: were spun up, and how many jobs fell back to serial execution.
        self.recovery: Dict[str, int] = {"retried_jobs": 0,
                                         "pools_replaced": 0,
                                         "serial_jobs": 0}

    # ------------------------------------------------------------------
    def run_results(self, jobs: Sequence[SimulationJob]) -> List[SimulationResult]:
        """Simulate every job; results in submission order."""
        return self._map(jobs, want_entry=False)

    def run_entries(self, jobs: Sequence[SimulationJob]) -> list:
        """Simulate every job and derive trace-database entries in-worker.

        Building the entry (table + statistics + metadata) in the worker
        parallelises the expensive table materialisation too, not just the
        replay.  Returns :class:`~repro.tracedb.database.TraceEntry` objects
        in submission order.
        """
        return self._map(jobs, want_entry=True)

    # ------------------------------------------------------------------
    def _payloads(self, jobs: Sequence[SimulationJob],
                  want_entry: bool) -> List[tuple]:
        return [(job, self.config, self.mode, self.max_records, self.detail,
                 want_entry) for job in jobs]

    def _map(self, jobs: Sequence[SimulationJob], want_entry: bool) -> list:
        # Duplicate jobs (batched serving plans that missed a merge) run
        # once: simulate the unique key set, then fan results back out to
        # every submission slot.  The shared object is safe to alias —
        # results/entries are treated as immutable across the codebase.
        unique_index: dict = {}
        unique_jobs: List[SimulationJob] = []
        slots: List[int] = []
        for job in jobs:
            key = job.key()
            if key not in unique_index:
                unique_index[key] = len(unique_jobs)
                unique_jobs.append(job)
            slots.append(unique_index[key])
        unique_results = self._map_unique(unique_jobs, want_entry)
        return [unique_results[slot] for slot in slots]

    def _map_unique(self, jobs: Sequence[SimulationJob],
                    want_entry: bool) -> list:
        payloads = self._payloads(jobs, want_entry)
        self.recovery = {"retried_jobs": 0, "pools_replaced": 0,
                         "serial_jobs": 0}
        workers = min(self.jobs, len(payloads)) or 1
        serial_reason: Optional[str] = None
        if self.executor == "serial":
            serial_reason = "requested"
        elif workers <= 1:
            serial_reason = "jobs=1" if self.jobs <= 1 else "single job"
        elif self.executor == "auto" and (os.cpu_count() or 1) <= 1:
            # Pool dispatch + pickling cannot be repaid when every worker
            # shares one core: auto degrades to serial instead of running
            # measurably slower than the serial build.
            serial_reason = "single-core host"
        if serial_reason is not None:
            self.last_executor = "serial"
            self.last_strategy = {"executor": "serial",
                                  "reason": serial_reason}
            return [_execute_job(payload) for payload in payloads]

        attempts: Tuple[str, ...]
        if self.executor == "auto":
            attempts = ("process", "thread")
        else:
            attempts = (self.executor,)
        results: list = [None] * len(payloads)
        remaining = list(range(len(payloads)))
        finished_kind: Optional[str] = None
        for kind in attempts:
            pool_cls = (ProcessPoolExecutor if kind == "process"
                        else ThreadPoolExecutor)
            # Two rounds per executor kind: the original pool, then — if any
            # job failed retryably (e.g. a crashed worker broke the pool) —
            # one fresh pool running only the failed jobs.
            for round_index in range(2):
                if not remaining:
                    break
                if round_index:
                    self.recovery["pools_replaced"] += 1
                    self.recovery["retried_jobs"] += len(remaining)
                remaining = self._run_pool(pool_cls, workers, payloads,
                                           results, remaining)
            if not remaining:
                finished_kind = kind
                break
        if remaining:
            # Last resort: the failed jobs run serially in this process.
            # Determinism makes the recovered results identical to a clean
            # parallel run's.
            self.recovery["serial_jobs"] = len(remaining)
            for index in remaining:
                results[index] = _execute_job(payloads[index])
            finished_kind = "serial"
        self.last_executor = finished_kind
        self.last_strategy = {"executor": finished_kind,
                              "reason": "parallel"}
        return results

    def _run_pool(self, pool_cls, workers: int, payloads: List[tuple],
                  results: list, indexes: List[int]) -> List[int]:
        """Run ``payloads[i]`` for each ``i`` in ``indexes`` on one pool,
        writing successes into ``results``.  Returns the indexes that failed
        retryably; genuine simulation errors propagate."""
        try:
            pool = pool_cls(max_workers=min(workers, len(indexes)) or 1)
        except RETRYABLE_FAILURES:
            return list(indexes)
        failed: List[int] = []
        futures: List[Tuple[int, Future]] = []
        try:
            for index in indexes:
                try:
                    futures.append((index,
                                    pool.submit(_execute_job, payloads[index])))
                except RETRYABLE_FAILURES:
                    failed.append(index)
            for index, future in futures:
                try:
                    results[index] = future.result()
                except RETRYABLE_FAILURES:
                    failed.append(index)
        finally:
            pool.shutdown(wait=True)
        return failed
