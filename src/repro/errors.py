"""Shared exception types.

:class:`UnknownNameError` subclasses ``KeyError`` so existing callers that
catch ``KeyError`` keep working, while surfaces like the CLI can catch
registry-lookup failures specifically instead of masking genuine bugs that
happen to raise ``KeyError``.
"""


class UnknownNameError(KeyError):
    """A registry lookup (policy, workload, retriever, backend) failed."""

    def __str__(self) -> str:
        # KeyError.__str__ repr-quotes its argument; these messages are
        # human-readable sentences and must print unquoted.
        return self.args[0] if self.args else ""


class DuplicateNameError(ValueError):
    """A registry registration collides with an existing name.

    Subclasses ``ValueError`` so the CLI's one-line error path covers it;
    raised instead of silently overwriting, which could let one workload
    shadow another and change every later session's answers.
    """


class TraceParseError(ValueError):
    """An external trace file failed to parse.

    Messages carry the file path plus the 1-based line number (text format)
    or record index (binary format) of the offending input.  Subclasses
    ``ValueError`` so CLI surfaces print it as a one-line error.
    """


class DeadlineExceededError(RuntimeError):
    """A serving request ran out of its per-op deadline.

    Raised server-side when a request's ``deadline_ms`` budget expires while
    the request is queued behind the serving lock (or before execution
    starts).  The server maps it to a structured ``kind="deadline"`` error
    reply instead of letting the request run arbitrarily late.
    """


class StoreReadOnlyError(RuntimeError):
    """A write was attempted on a read-only store mount.

    Raised by every mutating :class:`~repro.tracedb.store.TraceStore`
    method when the store was opened with ``read_only=True`` (e.g. a
    serve-layer replica mounting a shared warm corpus).  Sessions treat
    it as "do not persist" — reads keep serving — while direct callers
    (``trace import``, ``store gc``) surface it as a clean error instead
    of silently mutating a store another process owns.
    """


class StoreVersionError(RuntimeError):
    """A persistent trace store was written with an incompatible schema.

    Raised when opening a store directory whose manifest declares a
    different ``STORE_SCHEMA_VERSION``: silently mixing layouts could serve
    stale or misdecoded simulation results, so the store refuses to load.
    Delete the directory (or run ``python -m repro store gc``) to rebuild.
    """
