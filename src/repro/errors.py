"""Shared exception types.

:class:`UnknownNameError` subclasses ``KeyError`` so existing callers that
catch ``KeyError`` keep working, while surfaces like the CLI can catch
registry-lookup failures specifically instead of masking genuine bugs that
happen to raise ``KeyError``.
"""


class UnknownNameError(KeyError):
    """A registry lookup (policy, workload, retriever, backend) failed."""

    def __str__(self) -> str:
        # KeyError.__str__ repr-quotes its argument; these messages are
        # human-readable sentences and must print unquoted.
        return self.args[0] if self.args else ""


class StoreVersionError(RuntimeError):
    """A persistent trace store was written with an incompatible schema.

    Raised when opening a store directory whose manifest declares a
    different ``STORE_SCHEMA_VERSION``: silently mixing layouts could serve
    stale or misdecoded simulation results, so the store refuses to load.
    Delete the directory (or run ``python -m repro store gc``) to rebuild.
    """
