"""Deterministic fault injection for chaos testing.

The production code is instrumented with named *fault points* — calls to
:func:`fault_point` at I/O and concurrency seams (store reads/writes, pool
workers, client sockets, the answer backend).  When no plan is active the
hook is a single integer check, so the instrumentation is free in normal
operation.

Tests (and the perf harness) build a seeded :class:`FaultPlan` out of
:class:`FaultRule`s and activate it for a thread, for the whole process, or
— via an environment variable — for child processes spawned by a pool.
The same seed always produces the same injected failures, so chaos tests
are reproducible and their byte-identity assertions are meaningful.
"""

from __future__ import annotations

import errno as _errno
import json
import multiprocessing
import os
import random
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "FAULT_POINTS",
    "FAULT_ACTIONS",
    "FAULT_ERRORS",
    "ENV_PLAN_VAR",
    "InjectedFault",
    "FaultRule",
    "FaultPlan",
    "fault_point",
    "active_plan",
    "ensure_env_plan",
]

#: Every fault point wired into production code.  Plans may only reference
#: these names so a typo in a chaos test fails loudly instead of silently
#: never firing.
FAULT_POINTS: Tuple[str, ...] = (
    "store.read",
    "store.write",
    "index.append",
    "worker.simulate",
    "socket.recv",
    "socket.send",
    "backend.generate",
)

FAULT_ACTIONS: Tuple[str, ...] = ("raise", "truncate", "corrupt", "exit")
FAULT_ERRORS: Tuple[str, ...] = ("injected", "os", "connection", "timeout")
FAULT_SCOPES: Tuple[str, ...] = ("any", "worker")

#: Environment variable holding a JSON-encoded plan for child processes.
ENV_PLAN_VAR = "REPRO_FAULT_PLAN"

#: Exit status used by ``action="exit"`` so a chaos-killed worker is
#: distinguishable from a normal crash in pool diagnostics.
EXIT_STATUS = 37


class InjectedFault(RuntimeError):
    """Raised by a fault point when a plan rule with ``error="injected"`` fires.

    Production code treats this like any other infrastructure failure; it is
    a distinct type only so tests can tell injected failures from real bugs.
    """


def _make_error(kind: str, message: str) -> BaseException:
    if kind == "os":
        return OSError(_errno.EIO, message)
    if kind == "connection":
        return ConnectionResetError(_errno.ECONNRESET, message)
    if kind == "timeout":
        return TimeoutError(message)
    return InjectedFault(message)


def _in_worker_process() -> bool:
    """True when running in a process spawned/forked from another python
    process (e.g. a ``ProcessPoolExecutor`` worker)."""
    return multiprocessing.parent_process() is not None


@dataclass
class FaultRule:
    """One trigger: *when* a named fault point fires and *what* it does.

    Exactly one of ``nth`` (1-based call index at that point) or
    ``probability`` (per-call chance drawn from the plan's seeded RNG) must
    be set.  ``times`` caps how often the rule fires (``None`` = unlimited).
    ``scope="worker"`` restricts the rule to pool worker processes so an
    env-activated crash plan cannot kill the parent's serial fallback.
    """

    point: str
    action: str = "raise"
    error: str = "injected"
    nth: Optional[int] = None
    probability: Optional[float] = None
    times: Optional[int] = 1
    scope: str = "any"
    message: str = ""

    def __post_init__(self) -> None:
        if self.point not in FAULT_POINTS:
            raise ValueError(
                f"unknown fault point {self.point!r}; expected one of {FAULT_POINTS}")
        if self.action not in FAULT_ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; expected one of {FAULT_ACTIONS}")
        if self.error not in FAULT_ERRORS:
            raise ValueError(
                f"unknown fault error kind {self.error!r}; expected one of {FAULT_ERRORS}")
        if self.scope not in FAULT_SCOPES:
            raise ValueError(
                f"unknown fault scope {self.scope!r}; expected one of {FAULT_SCOPES}")
        if (self.nth is None) == (self.probability is None):
            raise ValueError("exactly one of nth/probability must be set")
        if self.nth is not None and self.nth < 1:
            raise ValueError("nth is 1-based and must be >= 1")
        if self.probability is not None and not 0.0 < self.probability <= 1.0:
            raise ValueError("probability must be in (0, 1]")
        if self.times is not None and self.times < 1:
            raise ValueError("times must be >= 1 (or None for unlimited)")

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"point": self.point, "action": self.action}
        if self.error != "injected":
            out["error"] = self.error
        if self.nth is not None:
            out["nth"] = self.nth
        if self.probability is not None:
            out["probability"] = self.probability
        if self.times != 1:
            out["times"] = self.times
        if self.scope != "any":
            out["scope"] = self.scope
        if self.message:
            out["message"] = self.message
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultRule":
        if not isinstance(data, dict):
            raise ValueError(f"fault rule must be a dict, got {type(data).__name__}")
        known = {"point", "action", "error", "nth", "probability", "times",
                 "scope", "message"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown fault rule fields: {sorted(unknown)}")
        return cls(**data)


class FaultPlan:
    """A seeded, serialisable set of :class:`FaultRule`s.

    The plan owns one :class:`random.Random` per probabilistic rule, seeded
    from ``(seed, rule index)``, so the sequence of injected failures is a
    pure function of the plan — activating the same plan twice injects the
    same faults at the same calls.
    """

    def __init__(self, rules: Sequence[FaultRule] = (), seed: int = 0) -> None:
        self.seed = int(seed)
        self.rules: List[FaultRule] = list(rules)
        self._lock = threading.Lock()
        self.calls: Dict[str, int] = {}
        self.fired: Dict[str, int] = {}
        self._rule_fired: List[int] = [0] * len(self.rules)
        self._rngs: List[random.Random] = [
            random.Random(f"{self.seed}/{index}") for index in range(len(self.rules))
        ]

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {"seed": self.seed, "rules": [rule.to_dict() for rule in self.rules]}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        if not isinstance(data, dict):
            raise ValueError(f"fault plan must be a dict, got {type(data).__name__}")
        rules = [FaultRule.from_dict(entry) for entry in data.get("rules", [])]
        return cls(rules, seed=data.get("seed", 0))

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    # firing
    # ------------------------------------------------------------------
    @property
    def triggered(self) -> int:
        """Total number of faults this plan has injected so far."""
        with self._lock:
            return sum(self._rule_fired)

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "calls": dict(self.calls),
                "fired": dict(self.fired),
                "per_rule": list(self._rule_fired),
            }

    def fire(self, name: str, payload: Any = None) -> Any:
        """Record one call at fault point ``name`` and apply the first
        matching rule, if any.  Returns ``payload`` (possibly mangled)."""
        rule: Optional[FaultRule] = None
        with self._lock:
            count = self.calls.get(name, 0) + 1
            self.calls[name] = count
            for index, candidate in enumerate(self.rules):
                if candidate.point != name:
                    continue
                if candidate.scope == "worker" and not _in_worker_process():
                    continue
                if (candidate.times is not None
                        and self._rule_fired[index] >= candidate.times):
                    continue
                if candidate.nth is not None:
                    hit = count == candidate.nth
                else:
                    hit = self._rngs[index].random() < candidate.probability
                if not hit:
                    continue
                self._rule_fired[index] += 1
                label = f"{name}:{candidate.action}"
                self.fired[label] = self.fired.get(label, 0) + 1
                rule = candidate
                break
        if rule is None:
            return payload
        return self._apply(rule, name, payload)

    def _apply(self, rule: FaultRule, name: str, payload: Any) -> Any:
        message = rule.message or f"injected fault at {name}"
        if rule.action == "raise":
            raise _make_error(rule.error, message)
        if rule.action == "exit":
            os._exit(EXIT_STATUS)
        if not isinstance(payload, (bytes, bytearray)):
            raise ValueError(
                f"fault action {rule.action!r} needs a bytes payload at {name}, "
                f"got {type(payload).__name__}")
        data = bytes(payload)
        if rule.action == "truncate":
            return data[: len(data) // 2]
        # corrupt: flip every bit of the middle byte
        if not data:
            return data
        middle = len(data) // 2
        return data[:middle] + bytes([data[middle] ^ 0xFF]) + data[middle + 1:]


# ----------------------------------------------------------------------
# activation
# ----------------------------------------------------------------------

_TLS = threading.local()
_PROCESS_PLAN: Optional[FaultPlan] = None
#: Number of active plan installations in this process.  ``fault_point``
#: returns immediately while this is zero, keeping the hook free when no
#: chaos test is running.
_ACTIVE_COUNT = 0
_ACTIVATION_LOCK = threading.Lock()
#: pid of the process that exported ``ENV_PLAN_VAR`` — the plan must only
#: auto-activate in *children* of that process, never in the exporter.
_ENV_OWNER_PID: Optional[int] = None


def active_plan() -> Optional[FaultPlan]:
    """The plan visible to the calling thread, if any (thread-scoped plans
    shadow the process-wide one)."""
    plan = getattr(_TLS, "plan", None)
    if plan is not None:
        return plan
    return _PROCESS_PLAN


def fault_point(name: str, payload: Any = None) -> Any:
    """Production-code hook: a no-op unless a fault plan is active.

    Returns ``payload`` unchanged, or mangled by a ``truncate``/``corrupt``
    rule; ``raise``/``exit`` rules never return.
    """
    if not _ACTIVE_COUNT:
        return payload
    plan = getattr(_TLS, "plan", None)
    if plan is None:
        plan = _PROCESS_PLAN
    if plan is None:
        return payload
    return plan.fire(name, payload)


class _ThreadScope:
    def __init__(self, plan: FaultPlan) -> None:
        self._plan = plan
        self._previous: Optional[FaultPlan] = None

    def __enter__(self) -> FaultPlan:
        global _ACTIVE_COUNT
        self._previous = getattr(_TLS, "plan", None)
        _TLS.plan = self._plan
        with _ACTIVATION_LOCK:
            _ACTIVE_COUNT += 1
        return self._plan

    def __exit__(self, *exc_info: Any) -> None:
        global _ACTIVE_COUNT
        _TLS.plan = self._previous
        with _ACTIVATION_LOCK:
            _ACTIVE_COUNT -= 1


class _ProcessScope:
    def __init__(self, plan: FaultPlan) -> None:
        self._plan = plan
        self._previous: Optional[FaultPlan] = None

    def __enter__(self) -> FaultPlan:
        global _ACTIVE_COUNT, _PROCESS_PLAN
        with _ACTIVATION_LOCK:
            self._previous = _PROCESS_PLAN
            _PROCESS_PLAN = self._plan
            _ACTIVE_COUNT += 1
        return self._plan

    def __exit__(self, *exc_info: Any) -> None:
        global _ACTIVE_COUNT, _PROCESS_PLAN
        with _ACTIVATION_LOCK:
            _PROCESS_PLAN = self._previous
            _ACTIVE_COUNT -= 1


class _EnvScope:
    """Exports the plan via ``ENV_PLAN_VAR`` so processes forked/spawned
    while the scope is active (e.g. pool workers) pick it up through
    :func:`ensure_env_plan`.  The exporting process itself stays clean."""

    def __init__(self, plan: FaultPlan) -> None:
        self._plan = plan
        self._previous_value: Optional[str] = None
        self._previous_owner: Optional[int] = None

    def __enter__(self) -> FaultPlan:
        global _ENV_OWNER_PID
        self._previous_value = os.environ.get(ENV_PLAN_VAR)
        self._previous_owner = _ENV_OWNER_PID
        os.environ[ENV_PLAN_VAR] = self._plan.to_json()
        _ENV_OWNER_PID = os.getpid()
        return self._plan

    def __exit__(self, *exc_info: Any) -> None:
        global _ENV_OWNER_PID
        if self._previous_value is None:
            os.environ.pop(ENV_PLAN_VAR, None)
        else:
            os.environ[ENV_PLAN_VAR] = self._previous_value
        _ENV_OWNER_PID = self._previous_owner


def thread_scope(plan: FaultPlan) -> _ThreadScope:
    """Activate ``plan`` for the calling thread only."""
    return _ThreadScope(plan)


def process_scope(plan: FaultPlan) -> _ProcessScope:
    """Activate ``plan`` for every thread in this process."""
    return _ProcessScope(plan)


def env_scope(plan: FaultPlan) -> _EnvScope:
    """Export ``plan`` to child processes via the environment."""
    return _EnvScope(plan)


def ensure_env_plan() -> Optional[FaultPlan]:
    """Install the environment-exported plan in this process, if one exists
    and was exported by a *different* process (i.e. we are a child).

    Called at the top of pool worker jobs; idempotent and cheap when no
    plan is exported.
    """
    global _ACTIVE_COUNT, _PROCESS_PLAN, _ENV_OWNER_PID
    text = os.environ.get(ENV_PLAN_VAR)
    if not text:
        return None
    if _ENV_OWNER_PID == os.getpid():
        return None
    with _ACTIVATION_LOCK:
        if _PROCESS_PLAN is not None:
            return _PROCESS_PLAN
        try:
            plan = FaultPlan.from_json(text)
        except (ValueError, TypeError) as error:
            raise ValueError(
                f"invalid fault plan in ${ENV_PLAN_VAR}: {error}") from error
        _PROCESS_PLAN = plan
        _ACTIVE_COUNT += 1
        # This process now owns the installed copy; its own children get a
        # fresh copy from the environment again via parent-pid mismatch.
        _ENV_OWNER_PID = None
        return plan


def _install_env_plan() -> None:
    """Import-time bootstrap for processes launched with ``ENV_PLAN_VAR``
    already set (e.g. a CLI invocation in a chaos smoke test)."""
    if os.environ.get(ENV_PLAN_VAR) and multiprocessing.parent_process() is None:
        ensure_env_plan()
