"""Deterministic fault injection (`repro.faults`).

See :mod:`repro.faults.plan` for the full story.  Typical chaos test::

    from repro.faults import FaultPlan, FaultRule, process_scope

    plan = FaultPlan([FaultRule(point="store.write", action="truncate", nth=2)],
                     seed=7)
    with process_scope(plan):
        ...  # run the path under test; the 2nd store write is torn

Production code only ever imports :func:`fault_point` (and, in pool
workers, :func:`ensure_env_plan`).
"""

from repro.faults.plan import (
    ENV_PLAN_VAR,
    FAULT_ACTIONS,
    FAULT_ERRORS,
    FAULT_POINTS,
    FaultPlan,
    FaultRule,
    InjectedFault,
    active_plan,
    ensure_env_plan,
    env_scope,
    fault_point,
    process_scope,
    thread_scope,
    _install_env_plan,
)

__all__ = [
    "ENV_PLAN_VAR",
    "FAULT_ACTIONS",
    "FAULT_ERRORS",
    "FAULT_POINTS",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "active_plan",
    "ensure_env_plan",
    "env_scope",
    "fault_point",
    "process_scope",
    "thread_scope",
]

# Bootstrap a plan exported by a parent process (CLI chaos smoke tests set
# REPRO_FAULT_PLAN before spawning `python -m repro ...`).
_install_env_plan()
