"""Hashing bag-of-words sentence embeddings.

The embedder maps text to a fixed-dimension vector by hashing tokens into
buckets (with sub-word character trigrams so near-identical hex strings still
land close together, which is precisely why cosine similarity struggles to
separate trace records that differ only in a few digits — the failure mode
the paper reports for LlamaIndex-style retrieval).
"""

from __future__ import annotations

import hashlib
import math
import re
from typing import Dict, Iterable, List, Sequence

import numpy as np

_TOKEN_RE = re.compile(r"[a-z0-9_.]+")


def tokenize(text: str) -> List[str]:
    """Lowercase word/number tokens of a sentence."""
    return _TOKEN_RE.findall(text.lower())


def _stable_hash(token: str) -> int:
    digest = hashlib.md5(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def cosine_similarity(left: np.ndarray, right: np.ndarray) -> float:
    """Cosine similarity of two vectors (0.0 when either is all zeros)."""
    left_norm = float(np.linalg.norm(left))
    right_norm = float(np.linalg.norm(right))
    if left_norm == 0.0 or right_norm == 0.0:
        return 0.0
    return float(np.dot(left, right) / (left_norm * right_norm))


class HashingEmbedder:
    """Deterministic hashing embedder with word and character-trigram features."""

    def __init__(self, dimensions: int = 256, use_trigrams: bool = True):
        if dimensions <= 0:
            raise ValueError("dimensions must be positive")
        self.dimensions = dimensions
        self.use_trigrams = use_trigrams

    # ------------------------------------------------------------------
    def _features(self, text: str) -> Iterable[str]:
        tokens = tokenize(text)
        for token in tokens:
            yield token
            if self.use_trigrams and len(token) > 3:
                padded = f"#{token}#"
                for i in range(len(padded) - 2):
                    yield "tri:" + padded[i:i + 3]

    def embed(self, text: str) -> np.ndarray:
        """Embed one piece of text into a unit-normalised vector."""
        vector = np.zeros(self.dimensions, dtype=np.float64)
        for feature in self._features(text):
            bucket = _stable_hash(feature) % self.dimensions
            sign = 1.0 if (_stable_hash("sign:" + feature) & 1) == 0 else -1.0
            vector[bucket] += sign
        norm = float(np.linalg.norm(vector))
        if norm > 0:
            vector /= norm
        return vector

    def embed_batch(self, texts: Sequence[str]) -> np.ndarray:
        """Embed a list of texts into a (len(texts), dimensions) matrix."""
        if not texts:
            return np.zeros((0, self.dimensions), dtype=np.float64)
        return np.stack([self.embed(text) for text in texts])

    # ------------------------------------------------------------------
    def similarity(self, left: str, right: str) -> float:
        """Cosine similarity of two texts."""
        return cosine_similarity(self.embed(left), self.embed(right))

    def rank(self, query: str, candidates: Sequence[str]) -> List[int]:
        """Indices of ``candidates`` ordered by decreasing similarity to
        ``query`` (stable for ties)."""
        query_vector = self.embed(query)
        scored = [
            (cosine_similarity(query_vector, self.embed(candidate)), -index)
            for index, candidate in enumerate(candidates)
        ]
        order = sorted(range(len(candidates)),
                       key=lambda index: scored[index], reverse=True)
        return order

    def best_match(self, query: str, candidates: Sequence[str]) -> int:
        """Index of the most similar candidate (raises on an empty list)."""
        if not candidates:
            raise ValueError("candidates must not be empty")
        return self.rank(query, candidates)[0]

    def top_k(self, query: str, candidates: Sequence[str], k: int = 3
              ) -> List[Dict[str, object]]:
        """Top-k candidates with their similarity scores."""
        query_vector = self.embed(query)
        scored = []
        for index, candidate in enumerate(candidates):
            scored.append({
                "index": index,
                "text": candidate,
                "score": cosine_similarity(query_vector, self.embed(candidate)),
            })
        scored.sort(key=lambda item: item["score"], reverse=True)
        return scored[:k]
