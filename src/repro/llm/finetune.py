"""Simulated parameter-efficient fine-tuning.

The paper fine-tunes GPT-4o-mini on domain-specific traces and prompts and
finds that the fine-tuned model does *not* outperform the base model: domain
fluency improves, but narrow training amplifies hallucinations on epistemic
(trick) and semantic questions (section 6.1, citing Gekhman et al. 2024).

:func:`finetune_backend` reproduces that trade-off on a capability profile:

* domain fluency and lookup phrasing improve with the amount of domain data;
* premise rejection, semantic linking and code generation degrade;
* hallucination propensity increases.

The shift magnitudes scale with the (simulated) dataset size, so ablations
can sweep "how much narrow data" against benchmark accuracy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.llm.profiles import CapabilityProfile, get_profile
from repro.llm.simulated import SimulatedLLM


@dataclass
class FinetuneExample:
    """One (prompt, completion) training pair."""

    prompt: str
    completion: str
    category: str = "trace"


@dataclass
class FinetuneDataset:
    """A collection of fine-tuning examples with simple composition stats."""

    examples: List[FinetuneExample] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.examples)

    def add(self, prompt: str, completion: str, category: str = "trace") -> None:
        self.examples.append(FinetuneExample(prompt, completion, category))

    def category_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for example in self.examples:
            counts[example.category] = counts.get(example.category, 0) + 1
        return counts

    @property
    def diversity(self) -> float:
        """Shannon-entropy-based diversity of categories in [0, 1]."""
        counts = list(self.category_counts().values())
        total = sum(counts)
        if total == 0 or len(counts) <= 1:
            return 0.0
        entropy = -sum((count / total) * math.log(count / total) for count in counts)
        return entropy / math.log(len(counts))


def finetuned_profile(base: CapabilityProfile, dataset_size: int,
                      diversity: float = 0.0,
                      name_suffix: str = "-finetuned") -> CapabilityProfile:
    """Derive the post-fine-tuning profile from a base profile.

    ``diversity`` in [0, 1] moderates the narrowing effect: a broad dataset
    (high diversity) costs less generalisation.
    """
    if dataset_size <= 0:
        return base
    # Saturating effect of data volume (hundreds of examples ~ full effect).
    volume = 1.0 - math.exp(-dataset_size / 200.0)
    narrowing = volume * (1.0 - 0.6 * max(0.0, min(1.0, diversity)))
    return CapabilityProfile(
        name=base.name + name_suffix,
        lookup_accuracy=min(1.0, base.lookup_accuracy + 0.03 * volume),
        comparison_skill=max(0.0, base.comparison_skill - 0.20 * narrowing),
        counting_discipline=base.counting_discipline,
        arithmetic_precision=base.arithmetic_precision,
        premise_rejection=max(0.0, base.premise_rejection - 0.60 * narrowing),
        concept_knowledge=max(0.0, base.concept_knowledge - 0.08 * narrowing),
        code_generation=max(0.0, base.code_generation - 0.28 * narrowing),
        causal_reasoning=max(0.0, base.causal_reasoning - 0.04 * narrowing),
        workload_synthesis=max(0.0, base.workload_synthesis - 0.08 * narrowing),
        semantic_linking=max(0.0, base.semantic_linking - 0.28 * narrowing),
        context_dependence=min(1.0, base.context_dependence + 0.05 * narrowing),
        hallucination_propensity=min(1.0, base.hallucination_propensity + 0.35 * narrowing),
        consistency=max(0.0, base.consistency - 0.10 * narrowing),
        domain_fluency=min(1.0, base.domain_fluency + 0.20 * volume),
    )


def finetune_backend(base_backend: str = "gpt-4o-mini",
                     dataset: Optional[FinetuneDataset] = None,
                     dataset_size: Optional[int] = None,
                     seed: int = 0,
                     prompting: str = "zero_shot") -> SimulatedLLM:
    """Produce a fine-tuned simulated backend.

    Either pass a :class:`FinetuneDataset` or just a ``dataset_size``.
    """
    base_profile = get_profile(base_backend)
    if dataset is not None:
        size = len(dataset)
        diversity = dataset.diversity
    else:
        size = dataset_size if dataset_size is not None else 500
        diversity = 0.0
    profile = finetuned_profile(base_profile, size, diversity)
    return SimulatedLLM(profile=profile, seed=seed, prompting=prompting)
