"""Simulated LLM substrate.

The paper pairs CacheMind with OpenAI backends (GPT-3.5-Turbo, o3, GPT-4o,
GPT-4o-mini and a fine-tuned 4o-mini).  No model API or GPU is available in
this environment, so this package provides deterministic *simulated*
backends:

* :mod:`~repro.llm.embeddings` -- a hashing bag-of-words sentence embedder
  with cosine similarity (used by Sieve's semantic filtering, the
  LlamaIndex-style baseline and the conversation vector memory).
* :mod:`~repro.llm.profiles` -- capability profiles describing, per backend,
  how reliably it counts, does arithmetic, rejects false premises, links
  semantics, generates code and resists bad context.  The profiles encode the
  failure modes reported in the paper's evaluation, so the benchmark *shape*
  (who wins which category) is produced by behaviour, not hard-coded scores.
* :mod:`~repro.llm.backend` / :mod:`~repro.llm.simulated` -- the backend
  interface and the deterministic simulated implementation.
* :mod:`~repro.llm.memory` -- conversation memory (sliding buffer, summaries
  and a vector store of past facts).
* :mod:`~repro.llm.prompts` -- the Ranger system prompt (Figure 3), the
  generator prompt assembly and one-/few-shot example templates (Figure 6).
* :mod:`~repro.llm.finetune` -- simulated parameter-efficient fine-tuning,
  which narrows a profile (better domain phrasing, worse epistemic checks),
  matching the paper's finding that fine-tuning amplified hallucinations.
"""

from repro.llm.embeddings import HashingEmbedder, cosine_similarity
# available_backends lists the capability PROFILES in the paper's reporting
# order; available_backend_names (backend.py) lists every REGISTERED factory
# name get_backend accepts, which additionally includes "simulated".
from repro.llm.profiles import (
    BACKEND_PROFILES,
    CapabilityProfile,
    available_backends,
    get_profile,
)
from repro.llm.backend import (
    GenerationRequest,
    LLMBackend,
    available_backend_names,
    get_backend,
    register_backend,
)
from repro.llm.simulated import SimulatedLLM, create_backend
from repro.llm.memory import ConversationMemory, MemoryItem
from repro.llm.prompts import (
    FewShotExample,
    PromptBuilder,
    RANGER_SYSTEM_PROMPT,
    build_few_shot_examples,
)
from repro.llm.finetune import FinetuneDataset, FinetuneExample, finetune_backend

__all__ = [
    "HashingEmbedder",
    "cosine_similarity",
    "BACKEND_PROFILES",
    "CapabilityProfile",
    "available_backends",
    "get_profile",
    "GenerationRequest",
    "LLMBackend",
    "available_backend_names",
    "get_backend",
    "register_backend",
    "SimulatedLLM",
    "create_backend",
    "ConversationMemory",
    "MemoryItem",
    "FewShotExample",
    "PromptBuilder",
    "RANGER_SYSTEM_PROMPT",
    "build_few_shot_examples",
    "FinetuneDataset",
    "FinetuneExample",
    "finetune_backend",
]
