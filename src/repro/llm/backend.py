"""LLM backend interface.

A backend exposes two things to the rest of the system:

* ``generate`` -- free-form text generation given a prompt (used by the chat
  session and by Ranger when echoing generated code);
* deterministic *skill checks* -- the hooks the answer generator and the
  Ranger code generator use to decide whether a given cognitive step succeeds
  for this backend on this question.  Real API-backed implementations would
  ignore the skill checks (the model either gets it right or not); the
  simulated backend implements them from its capability profile.
"""

from __future__ import annotations

import inspect
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.errors import UnknownNameError
from repro.llm.profiles import CapabilityProfile


@dataclass
class GenerationRequest:
    """A single generation call."""

    prompt: str
    system_prompt: str = ""
    examples: List[Dict[str, str]] = field(default_factory=list)
    temperature: float = 0.0
    max_tokens: int = 512
    expected_format: str = "text"  # "text" | "code" | "json"


class LLMBackend(ABC):
    """Abstract backend: concrete implementations are simulated or API-backed."""

    name: str = "backend"

    @property
    @abstractmethod
    def profile(self) -> CapabilityProfile:
        """Capability profile describing this backend."""

    @abstractmethod
    def generate(self, request: GenerationRequest) -> str:
        """Produce a completion for the request."""

    # ------------------------------------------------------------------
    # skill-check hooks (see module docstring)
    # ------------------------------------------------------------------
    @abstractmethod
    def check(self, skill: str, key: str, quality: float = 1.0) -> bool:
        """Whether cognitive step ``skill`` succeeds for situation ``key``.

        ``quality`` in [0, 1] describes the retrieval-context quality; low
        quality reduces success probability according to the backend's
        context dependence.
        """

    @abstractmethod
    def draw(self, key: str) -> float:
        """Deterministic pseudo-random draw in [0, 1) for situation ``key``."""

    def graded(self, skill: str, key: str, quality: float = 1.0) -> float:
        """A 0..1 quality grade for rubric-scored answers (default: skill
        check maps to 1.0/0.3)."""
        return 1.0 if self.check(skill, key, quality) else 0.3

    def describe(self) -> str:
        return f"{self.name} (simulated capability profile)"


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
#: name -> factory producing an :class:`LLMBackend`.  Mirrors the policy and
#: retriever registries so API-backed implementations can plug in later.
_REGISTRY: Dict[str, Callable[..., LLMBackend]] = {}


def register_backend(name: str) -> Callable[[Callable[..., LLMBackend]],
                                            Callable[..., LLMBackend]]:
    """Decorator registering a backend factory under ``name``:

        @register_backend("simulated")
        def make(profile="gpt-4o", **kwargs): ...
    """

    def decorator(factory: Callable[..., LLMBackend]) -> Callable[..., LLMBackend]:
        _REGISTRY[name.lower()] = factory
        return factory

    return decorator


def available_backend_names() -> List[str]:
    """Names of all registered backend factories."""
    _ensure_backends_imported()
    return sorted(_REGISTRY)


def get_backend(spec: Union[str, LLMBackend, None] = None,
                lenient: bool = False, **kwargs) -> LLMBackend:
    """Resolve a backend: an instance passes through, a string is looked up
    in the registry (profile names like ``gpt-4o`` are registered by the
    simulated implementation).  ``None`` resolves to the default factory.

    By default every kwarg reaches the factory unchanged, so typos and
    unsupported options raise TypeError.  ``lenient=True`` (used by
    CacheMind, which always offers ``seed``/``prompting``) drops those
    known-optional kwargs when the factory does not declare them.
    """
    if isinstance(spec, LLMBackend):
        return spec
    _ensure_backends_imported()
    # Only None means "default": an empty string is a configuration error
    # and falls through to the unknown-backend message below.
    name = ("gpt-4o" if spec is None else spec).lower()
    if name not in _REGISTRY:
        raise UnknownNameError(f"unknown backend {spec!r}; "
                               f"available: {available_backend_names()}")
    factory = _REGISTRY[name]
    if lenient:
        kwargs = _accepted_kwargs(factory, kwargs)
    return factory(**kwargs)


#: convenience kwargs CacheMind always offers; dropped under lenient
#: resolution when a factory does not declare them.  Anything else passes
#: through so typos still raise TypeError from the factory.
_OPTIONAL_KWARGS = ("seed", "prompting")


def _accepted_kwargs(factory: Callable[..., LLMBackend],
                     kwargs: Dict[str, object]) -> Dict[str, object]:
    """Drop the known-optional kwargs a factory does not accept (API-backed
    factories have no natural ``seed``/``prompting`` parameters, yet lenient
    callers like CacheMind always offer them)."""
    try:
        parameters = inspect.signature(factory).parameters
    except (TypeError, ValueError):  # builtins/C callables: pass through
        return kwargs
    if any(parameter.kind == parameter.VAR_KEYWORD
           for parameter in parameters.values()):
        return kwargs
    accepted = {name for name, parameter in parameters.items()
                if parameter.kind in (parameter.POSITIONAL_OR_KEYWORD,
                                      parameter.KEYWORD_ONLY)}
    return {key: value for key, value in kwargs.items()
            if key in accepted or key not in _OPTIONAL_KWARGS}


def _ensure_backends_imported() -> None:
    # Importing the module registers the simulated factories exactly once.
    import repro.llm.simulated  # noqa: F401
