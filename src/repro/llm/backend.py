"""LLM backend interface.

A backend exposes two things to the rest of the system:

* ``generate`` -- free-form text generation given a prompt (used by the chat
  session and by Ranger when echoing generated code);
* deterministic *skill checks* -- the hooks the answer generator and the
  Ranger code generator use to decide whether a given cognitive step succeeds
  for this backend on this question.  Real API-backed implementations would
  ignore the skill checks (the model either gets it right or not); the
  simulated backend implements them from its capability profile.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.llm.profiles import CapabilityProfile


@dataclass
class GenerationRequest:
    """A single generation call."""

    prompt: str
    system_prompt: str = ""
    examples: List[Dict[str, str]] = field(default_factory=list)
    temperature: float = 0.0
    max_tokens: int = 512
    expected_format: str = "text"  # "text" | "code" | "json"


class LLMBackend(ABC):
    """Abstract backend: concrete implementations are simulated or API-backed."""

    name: str = "backend"

    @property
    @abstractmethod
    def profile(self) -> CapabilityProfile:
        """Capability profile describing this backend."""

    @abstractmethod
    def generate(self, request: GenerationRequest) -> str:
        """Produce a completion for the request."""

    # ------------------------------------------------------------------
    # skill-check hooks (see module docstring)
    # ------------------------------------------------------------------
    @abstractmethod
    def check(self, skill: str, key: str, quality: float = 1.0) -> bool:
        """Whether cognitive step ``skill`` succeeds for situation ``key``.

        ``quality`` in [0, 1] describes the retrieval-context quality; low
        quality reduces success probability according to the backend's
        context dependence.
        """

    @abstractmethod
    def draw(self, key: str) -> float:
        """Deterministic pseudo-random draw in [0, 1) for situation ``key``."""

    def graded(self, skill: str, key: str, quality: float = 1.0) -> float:
        """A 0..1 quality grade for rubric-scored answers (default: skill
        check maps to 1.0/0.3)."""
        return 1.0 if self.check(skill, key, quality) else 0.3

    def describe(self) -> str:
        return f"{self.name} (simulated capability profile)"
