"""Conversation memory: sliding buffer, summaries and a vector store.

The paper augments the generator LLM with a conversation-memory layer so a
chat session can reason across turns (section 1): a sliding buffer of recent
messages, summaries of older turns and a vector store of past facts that can
be re-retrieved when similar questions arise.  :class:`ConversationMemory`
implements all three on top of the hashing embedder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.llm.embeddings import HashingEmbedder, cosine_similarity


@dataclass
class MemoryItem:
    """One remembered fact or turn."""

    role: str           # "user" | "assistant" | "fact"
    text: str
    turn: int
    metadata: Dict[str, str] = field(default_factory=dict)


class ConversationMemory:
    """Sliding-buffer + summary + vector-store conversation memory.

    ``max_items`` bounds the vector store and ``max_summaries`` the summary
    list (oldest dropped first): a long-running serving session
    (``repro.serve``) records two turns per request, so without a bound the
    vector store — and the per-request recall scan over it — would grow for
    the life of the server.
    """

    def __init__(self, buffer_size: int = 8, summary_chunk: int = 8,
                 embedder: Optional[HashingEmbedder] = None,
                 max_items: int = 4096, max_summaries: int = 64):
        if buffer_size <= 0:
            raise ValueError("buffer_size must be positive")
        if max_items <= 0 or max_summaries <= 0:
            raise ValueError("max_items and max_summaries must be positive")
        self.buffer_size = buffer_size
        self.summary_chunk = summary_chunk
        self.max_items = max_items
        self.max_summaries = max_summaries
        self.embedder = embedder if embedder is not None else HashingEmbedder()
        self._turn = 0
        self._buffer: List[MemoryItem] = []
        self._summaries: List[str] = []
        self._vectors: List[np.ndarray] = []
        self._vector_items: List[MemoryItem] = []
        self._overflow: List[MemoryItem] = []

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def add_turn(self, role: str, text: str,
                 metadata: Optional[Dict[str, str]] = None) -> MemoryItem:
        """Record one chat turn (user query or assistant answer)."""
        item = MemoryItem(role=role, text=text, turn=self._turn,
                          metadata=dict(metadata or {}))
        self._turn += 1
        self._buffer.append(item)
        self._index(item)
        if len(self._buffer) > self.buffer_size:
            evicted = self._buffer.pop(0)
            self._overflow.append(evicted)
            if len(self._overflow) >= self.summary_chunk:
                self._summarise_overflow()
        return item

    def add_fact(self, text: str, metadata: Optional[Dict[str, str]] = None) -> MemoryItem:
        """Record an intermediate finding (e.g. a retrieved statistic)."""
        item = MemoryItem(role="fact", text=text, turn=self._turn,
                          metadata=dict(metadata or {}))
        self._index(item)
        return item

    def _index(self, item: MemoryItem) -> None:
        self._vectors.append(self.embedder.embed(item.text))
        self._vector_items.append(item)
        if len(self._vectors) > self.max_items:
            overflow = len(self._vectors) - self.max_items
            del self._vectors[:overflow]
            del self._vector_items[:overflow]

    def _summarise_overflow(self) -> None:
        """Collapse evicted turns into a compact summary line."""
        user_topics = [item.text.strip().rstrip("?")[:80]
                       for item in self._overflow if item.role == "user"]
        findings = [item.text.strip()[:80]
                    for item in self._overflow if item.role != "user"]
        summary_parts = []
        if user_topics:
            summary_parts.append("asked about: " + "; ".join(user_topics[:4]))
        if findings:
            summary_parts.append("found: " + "; ".join(findings[:4]))
        summary = "Earlier in this session the user " + " | ".join(summary_parts)
        self._summaries.append(summary)
        if len(self._summaries) > self.max_summaries:
            del self._summaries[: len(self._summaries) - self.max_summaries]
        self._overflow = []

    # ------------------------------------------------------------------
    # recall
    # ------------------------------------------------------------------
    def recent(self, count: Optional[int] = None) -> List[MemoryItem]:
        """The sliding buffer (most recent last)."""
        if count is None:
            return list(self._buffer)
        return self._buffer[-count:]

    def summaries(self) -> List[str]:
        return list(self._summaries)

    def recall(self, query: str, k: int = 3,
               minimum_similarity: float = 0.05) -> List[MemoryItem]:
        """Re-retrieve past items semantically similar to ``query``."""
        if not self._vectors:
            return []
        query_vector = self.embedder.embed(query)
        scored: List[Tuple[float, int]] = []
        for index, vector in enumerate(self._vectors):
            scored.append((cosine_similarity(query_vector, vector), index))
        scored.sort(key=lambda pair: pair[0], reverse=True)
        results = []
        for score, index in scored[:k]:
            if score >= minimum_similarity:
                results.append(self._vector_items[index])
        return results

    def context_block(self, query: str, k: int = 3) -> str:
        """Render memory relevant to ``query`` as a prompt block."""
        lines: List[str] = []
        if self._summaries:
            lines.append("Session summary:")
            lines.extend(f"  - {summary}" for summary in self._summaries[-2:])
        recalled = self.recall(query, k=k)
        if recalled:
            lines.append("Relevant earlier findings:")
            lines.extend(f"  - ({item.role}) {item.text[:160]}" for item in recalled)
        recent = self.recent(4)
        if recent:
            lines.append("Recent turns:")
            lines.extend(f"  - {item.role}: {item.text[:120]}" for item in recent)
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._vector_items)

    def clear(self) -> None:
        self._turn = 0
        self._buffer = []
        self._summaries = []
        self._vectors = []
        self._vector_items = []
        self._overflow = []
