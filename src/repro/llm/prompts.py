"""Prompt templates: the Ranger system prompt, generator prompt assembly and
one-/few-shot examples.

The Ranger system prompt mirrors Figure 3 of the paper: it documents the
``loaded_data`` container, the dataframe schema, the metadata string, the
task flow (workload/policy first, then PC/address, then metadata fallback)
and the strict output rules (the generated code must assign a string to
``result``).  The one-shot example mirrors Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.tracedb.schema import ACCESS_COLUMNS

RANGER_SYSTEM_PROMPT = """SYSTEM PROMPT
You are a Python code-writing assistant for analyzing cache memory trace data.
Your task is to generate Python code that extracts string-formatted answers
from a dictionary named loaded_data.

Data Structure Overview
- loaded_data: a dictionary with keys like lbm_evictions_lru.
- Values: "data_frame" (columnar Table), "metadata" (string), "description" (string).
- Workloads and policies vary per database; check loaded_data.keys().

Dataframe Structure (data_frame)
Columns include:
  {columns}
Rows are accessed with data_frame.rows() / data_frame.where(column=value) /
data_frame[column].values.

Metadata (metadata)
- A single string summarizing trace stats (accesses, misses, evictions,
  miss rate, correlations, etc.).
- Access via loaded_data[trace_id]["metadata"].
- Extract numbers with simple matching or regex, e.g.
  re.search(r"([\\d,]+) total misses", metadata).

Task Instructions
- First check matching workload/policy; then check PC/address; finally fall
  back to metadata.
- Return a single result string with hit/miss, reuse/recency, relevant
  metadata summary, and assembly context.
- If nothing is found, return a clear message.

Output Rules
- Must set result = "..." (a Python string).
- No markdown, explanations, print, or comments.

Valid Examples
result = f"The miss rate for PC 0x401e31 is 44.69%."
Invalid Examples
return df["miss_rate"], print(result), result = df
""".format(columns=", ".join(ACCESS_COLUMNS))


GENERATOR_SYSTEM_PROMPT = (
    "You are CacheMind, a cache-replacement analysis assistant. Answer the "
    "user's question using ONLY the retrieved trace context provided below. "
    "Ground every number in the context; if the context does not contain the "
    "needed evidence, say so instead of guessing."
)


@dataclass
class FewShotExample:
    """One (context, question, answer) demonstration pair."""

    category: str
    context: str
    question: str
    answer: str

    def render(self) -> str:
        return (f"Context:\n{self.context}\n"
                f"Answer the following question: {self.question}\n"
                f"The correct answer is,\nResponse: {self.answer}")


def build_few_shot_examples(count: int = 1) -> List[FewShotExample]:
    """Canonical demonstration pairs (Figure 6 shows the first one)."""
    examples = [
        FewShotExample(
            category="Cache Hit/Miss",
            context=("For policy LRU on workload lbm ... at PC 0x401dc9 and "
                     "address 0x47ea85d37f:\nCache result: Cache Miss\n"
                     "Evicted address: 0x19e02d19b7f (needed again in 2304 "
                     "accesses), Inserted address needed again in 3132 accesses."),
            question=("Does the memory access with PC 0x401dc9 and address "
                      "0x47ea85d37f result in a cache hit or cache miss for the "
                      "lbm workload and LRU replacement policy?"),
            answer="Cache Miss",
        ),
        FewShotExample(
            category="Miss Rate",
            context=("For policy PARROT on workload mcf, PC 0x4037ba: 812 "
                     "accesses, 371 misses, miss rate 45.69%."),
            question=("What is the miss rate for PC 0x4037ba on the mcf "
                      "workload with PARROT replacement policy?"),
            answer="The miss rate for PC 0x4037ba is 45.69%.",
        ),
        FewShotExample(
            category="Trick Question",
            context=("PC 0x4037aa does not appear in the lbm trace under any "
                     "policy; it appears only in mcf."),
            question="Does PC 0x4037aa in lbm access address 0x1b73be82e3f?",
            answer=("TRICK: the premise is invalid; PC 0x4037aa never appears "
                    "in the lbm workload."),
        ),
    ]
    return examples[:max(0, count)]


class PromptBuilder:
    """Assembles the generator prompt from context, memory and examples."""

    def __init__(self, prompting: str = "zero_shot"):
        if prompting not in ("zero_shot", "one_shot", "few_shot"):
            raise ValueError("prompting must be zero_shot, one_shot or few_shot")
        self.prompting = prompting

    def example_count(self) -> int:
        return {"zero_shot": 0, "one_shot": 1, "few_shot": 3}[self.prompting]

    def build(self, question: str, context_text: str,
              memory_block: str = "",
              examples: Optional[Sequence[FewShotExample]] = None) -> str:
        """Render the full generator prompt."""
        parts: List[str] = [GENERATOR_SYSTEM_PROMPT, ""]
        if memory_block:
            parts.extend(["Conversation memory:", memory_block, ""])
        shots = list(examples) if examples is not None else build_few_shot_examples(
            self.example_count())
        for shot in shots[: self.example_count()]:
            parts.extend(["Example:", shot.render(), ""])
        parts.extend([
            "Retrieved trace context:",
            context_text if context_text else "(no context retrieved)",
            "",
            f"Question: {question}",
            "Answer:",
        ])
        return "\n".join(parts)
