"""Deterministic simulated LLM backend.

The simulated backend derives every "random" decision from an MD5 hash of
``(backend name, seed, situation key)``, so a given benchmark run is fully
reproducible while different backends (and different questions) fail in
different places.  The capability profile controls the thresholds.

The quality of an answer therefore depends on three real factors, exactly as
in the paper's pipeline:

1. whether the retriever put the needed fact into the context (otherwise even
   a perfect model can only admit the gap or hallucinate),
2. the retrieval-context quality (low-quality context suppresses latent
   skill — Figure 5 and the "context can suppress latent knowledge"
   observation), and
3. the backend's per-skill reliability.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from repro.llm.backend import GenerationRequest, LLMBackend, register_backend
from repro.llm.profiles import BACKEND_PROFILES, CapabilityProfile, get_profile


class SimulatedLLM(LLMBackend):
    """Profile-driven, deterministic stand-in for an API LLM backend."""

    def __init__(self, profile: Union[str, CapabilityProfile] = "gpt-4o",
                 seed: int = 0, prompting: str = "zero_shot"):
        if isinstance(profile, str):
            profile = get_profile(profile)
        if prompting not in ("zero_shot", "one_shot", "few_shot"):
            raise ValueError("prompting must be zero_shot, one_shot or few_shot")
        self._profile = profile
        self.seed = seed
        self.prompting = prompting
        self.name = profile.name

    # ------------------------------------------------------------------
    # profile / determinism
    # ------------------------------------------------------------------
    @property
    def profile(self) -> CapabilityProfile:
        return self._profile

    def draw(self, key: str) -> float:
        material = f"{self.name}|{self.seed}|{key}".encode("utf-8")
        digest = hashlib.md5(material).digest()
        return int.from_bytes(digest[:8], "little") / float(1 << 64)

    def effective_skill(self, skill: str, quality: float = 1.0) -> float:
        """Skill probability after accounting for retrieval-context quality
        and the prompting mode."""
        base = self._profile.skill(skill)
        quality = max(0.0, min(1.0, quality))
        # Low-quality context suppresses skill proportionally to the
        # backend's context dependence.
        suppressed = base * (1.0 - self._profile.context_dependence * (1.0 - quality))
        # One-/few-shot examples mostly help premise checking (the paper
        # reports they "help the generator identify and assess trick
        # questions better") and slightly hurt when context is poor because
        # the model borrows facts from the example.
        if self.prompting != "zero_shot":
            if skill == "premise_rejection":
                suppressed = min(1.0, suppressed + 0.25)
            elif quality < 0.5 and skill in ("lookup_accuracy", "comparison_skill"):
                suppressed = max(0.0, suppressed - 0.10)
        return max(0.0, min(1.0, suppressed))

    def check(self, skill: str, key: str, quality: float = 1.0) -> bool:
        return self.draw(f"{skill}|{key}") < self.effective_skill(skill, quality)

    def graded(self, skill: str, key: str, quality: float = 1.0) -> float:
        """Continuous 0..1 answer quality used for rubric-scored categories.

        Consistent backends produce grades clustered around their skill
        level; inconsistent backends (low ``consistency``, e.g. o3) are
        bimodal — they either nail the answer or miss it entirely, which is
        what Figure 7 shows.
        """
        skill_level = self.effective_skill(skill, quality)
        roll = self.draw(f"grade|{skill}|{key}")
        consistency = self._profile.consistency
        if roll < skill_level:
            # Success: quality is high, modulated by fluency and consistency.
            base = 0.75 + 0.25 * self._profile.domain_fluency
            jitter = (self.draw(f"jitter|{skill}|{key}") - 0.5) * 0.3 * (1 - consistency)
            return max(0.0, min(1.0, base + jitter))
        # Failure: consistent models still produce partially correct answers,
        # inconsistent ones collapse to near-zero.
        partial = 0.45 * consistency
        jitter = self.draw(f"fail|{skill}|{key}") * 0.2
        return max(0.0, min(1.0, partial + jitter))

    def hallucinates(self, key: str) -> bool:
        """Whether the backend fabricates an answer when evidence is missing."""
        return self.draw(f"hallucinate|{key}") < self._profile.hallucination_propensity

    # ------------------------------------------------------------------
    # corruption helpers used by the answer generator on failed checks
    # ------------------------------------------------------------------
    def corrupt_number(self, value: float, key: str,
                       relative_error: float = 0.35) -> float:
        """Return a plausibly wrong number (used when arithmetic fails)."""
        direction = 1.0 if self.draw(f"dir|{key}") < 0.5 else -1.0
        magnitude = 0.1 + self.draw(f"mag|{key}") * relative_error
        corrupted = value * (1.0 + direction * magnitude)
        if corrupted == value:
            corrupted = value + direction
        return corrupted

    def corrupt_count(self, value: int, key: str) -> int:
        """Return a plausibly wrong count (models drop filters / truncate)."""
        roll = self.draw(f"count|{key}")
        if roll < 0.4:
            # Only counted the visible window.
            return max(0, min(value, int(8 + roll * 20)))
        if roll < 0.7:
            return max(0, value - 1 - int(roll * 10))
        return value + 1 + int(roll * 10)

    def pick_wrong(self, options: Sequence[str], correct: str, key: str) -> str:
        """Pick an incorrect option deterministically (for comparisons)."""
        wrong = [option for option in options if option != correct]
        if not wrong:
            return correct
        index = int(self.draw(f"wrong|{key}") * len(wrong)) % len(wrong)
        return wrong[index]

    # ------------------------------------------------------------------
    # text generation
    # ------------------------------------------------------------------
    def generate(self, request: GenerationRequest) -> str:
        """Produce a deterministic completion.

        The simulated backend is not a language model; for free-form calls it
        returns a structured echo that downstream components treat as an
        assistant turn.  The answer-producing paths (the generator and the
        Ranger code generator) do not rely on this method for correctness —
        they use the skill-check hooks.
        """
        summary = request.prompt.strip().splitlines()
        head = summary[0] if summary else ""
        return (f"[{self.name}] {head[:200]}")


def create_backend(name: str = "gpt-4o", seed: int = 0,
                   prompting: str = "zero_shot") -> SimulatedLLM:
    """Factory used throughout the reproduction."""
    return SimulatedLLM(profile=name, seed=seed, prompting=prompting)


register_backend("simulated")(create_backend)


def _profile_factory(profile_name: str):
    # Declared parameters only: a stray name= kwarg must raise, not silently
    # replace the looked-up profile.
    def factory(seed: int = 0, prompting: str = "zero_shot") -> SimulatedLLM:
        return create_backend(profile_name, seed=seed, prompting=prompting)
    return factory


# Each capability profile doubles as a registered backend name, so
# ``get_backend("gpt-4o")`` works without naming the implementation.
for _profile_name in BACKEND_PROFILES:
    register_backend(_profile_name)(_profile_factory(_profile_name))
del _profile_name
