"""Capability profiles for the simulated LLM backends.

Each profile captures, as per-skill success probabilities, the failure modes
the paper reports for the corresponding OpenAI backend (section 6.1):

* every backend is good at direct lookups (hit/miss, miss rate) once the
  retrieved slice contains the fact;
* *counting* over a low-context window is brittle for everyone (the paper
  reports 0/5 across the board);
* *arithmetic* beyond a single rate is weak;
* only GPT-4o and GPT-4o-mini reliably reject false premises (trick
  questions);
* the reasoning categories (policy/workload/semantic analysis) favour the
  larger models;
* o3 is strong but inconsistent ("bimodal": excels or fails completely);
* the fine-tuned 4o-mini has better domain phrasing but hallucinates more on
  epistemic and semantic tasks.

The profiles steer *behavioural* error injection in
:class:`~repro.llm.simulated.SimulatedLLM`; accuracy numbers are never
hard-coded — they emerge from running CacheMindBench against the backends.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List


@dataclass(frozen=True)
class CapabilityProfile:
    """Per-skill success probabilities and behavioural knobs of a backend."""

    name: str
    #: reading a single fact (hit/miss outcome, one rate) out of good context.
    lookup_accuracy: float = 0.85
    #: selecting/ranking across several retrieved statistics.
    comparison_skill: float = 0.6
    #: iterating an entire slice to count events without dropping filters.
    counting_discipline: float = 0.05
    #: multi-value numeric aggregation (averages over retrieved fields).
    arithmetic_precision: float = 0.2
    #: rejecting a false premise instead of guessing (trick questions).
    premise_rejection: float = 0.4
    #: textbook microarchitecture knowledge (retrieval-light questions).
    concept_knowledge: float = 0.6
    #: writing small, correct analysis code against a documented schema.
    code_generation: float = 0.7
    #: linking policy mechanics to observed per-PC effects (causal analysis).
    causal_reasoning: float = 0.6
    #: summarising whole-workload behaviour from many PC statistics.
    workload_synthesis: float = 0.6
    #: connecting trace events to source/assembly intent.
    semantic_linking: float = 0.5
    #: how strongly low-quality retrieval degrades the skills above
    #: (0 = immune, 1 = fully dependent on retrieval quality).
    context_dependence: float = 0.75
    #: probability of fabricating an answer when the evidence is missing
    #: instead of admitting the gap.
    hallucination_propensity: float = 0.4
    #: answer-to-answer consistency; low values yield bimodal rubric scores.
    consistency: float = 0.8
    #: stylistic fluency in the target domain (affects rubric "clarity").
    domain_fluency: float = 0.7

    def skill(self, skill_name: str) -> float:
        """Look up a skill value by name (raises on unknown skills)."""
        if not hasattr(self, skill_name):
            raise KeyError(f"unknown skill {skill_name!r}")
        value = getattr(self, skill_name)
        if not isinstance(value, (int, float)):
            raise KeyError(f"{skill_name!r} is not a numeric skill")
        return float(value)

    def adjusted(self, **overrides: float) -> "CapabilityProfile":
        """Return a copy with some skills overridden (clamped to [0, 1])."""
        clamped = {key: max(0.0, min(1.0, value)) for key, value in overrides.items()}
        return replace(self, **clamped)


#: Profiles for the five backends evaluated in the paper.
BACKEND_PROFILES: Dict[str, CapabilityProfile] = {
    "gpt-3.5-turbo": CapabilityProfile(
        name="gpt-3.5-turbo",
        lookup_accuracy=0.87,
        comparison_skill=0.47,
        counting_discipline=0.02,
        arithmetic_precision=0.10,
        premise_rejection=0.02,
        concept_knowledge=0.56,
        code_generation=0.92,
        causal_reasoning=0.56,
        workload_synthesis=0.48,
        semantic_linking=0.28,
        context_dependence=0.85,
        hallucination_propensity=0.75,
        consistency=0.75,
        domain_fluency=0.55,
    ),
    "o3": CapabilityProfile(
        name="o3",
        lookup_accuracy=0.87,
        comparison_skill=0.73,
        counting_discipline=0.03,
        arithmetic_precision=0.20,
        premise_rejection=0.20,
        concept_knowledge=0.52,
        code_generation=0.52,
        causal_reasoning=0.60,
        workload_synthesis=0.48,
        semantic_linking=0.40,
        context_dependence=0.80,
        hallucination_propensity=0.55,
        consistency=0.35,
        domain_fluency=0.65,
    ),
    "gpt-4o": CapabilityProfile(
        name="gpt-4o",
        lookup_accuracy=0.84,
        comparison_skill=0.60,
        counting_discipline=0.05,
        arithmetic_precision=0.30,
        premise_rejection=0.80,
        concept_knowledge=0.80,
        code_generation=0.99,
        causal_reasoning=0.84,
        workload_synthesis=0.88,
        semantic_linking=0.72,
        context_dependence=0.70,
        hallucination_propensity=0.20,
        consistency=0.90,
        domain_fluency=0.85,
    ),
    "gpt-4o-mini": CapabilityProfile(
        name="gpt-4o-mini",
        lookup_accuracy=0.84,
        comparison_skill=0.67,
        counting_discipline=0.04,
        arithmetic_precision=0.20,
        premise_rejection=0.80,
        concept_knowledge=0.76,
        code_generation=0.96,
        causal_reasoning=0.76,
        workload_synthesis=0.76,
        semantic_linking=0.76,
        context_dependence=0.75,
        hallucination_propensity=0.30,
        consistency=0.85,
        domain_fluency=0.75,
    ),
    "finetuned-4o-mini": CapabilityProfile(
        name="finetuned-4o-mini",
        lookup_accuracy=0.86,
        comparison_skill=0.47,
        counting_discipline=0.04,
        arithmetic_precision=0.20,
        premise_rejection=0.20,
        concept_knowledge=0.68,
        code_generation=0.68,
        causal_reasoning=0.72,
        workload_synthesis=0.68,
        semantic_linking=0.48,
        context_dependence=0.80,
        hallucination_propensity=0.65,
        consistency=0.75,
        domain_fluency=0.90,
    ),
}

#: Canonical ordering used when reporting results (matches Figure 4's legend).
BACKEND_ORDER: List[str] = [
    "gpt-3.5-turbo",
    "o3",
    "gpt-4o",
    "gpt-4o-mini",
    "finetuned-4o-mini",
]


def available_backends() -> List[str]:
    """Backend names in the paper's reporting order."""
    return list(BACKEND_ORDER)


def get_profile(name: str) -> CapabilityProfile:
    """Look up a backend profile by name."""
    if name not in BACKEND_PROFILES:
        raise KeyError(
            f"unknown backend {name!r}; available: {available_backends()}")
    return BACKEND_PROFILES[name]
