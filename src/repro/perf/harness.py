"""Benchmark harness timing the simulation core's hot paths.

The suite times, on the bundled workloads:

* trace generation,
* full-detail vs stats-only replay (per policy, with derived speedups),
* cold, parallel and warm (memoised) trace-database builds,
* cold-vs-warm *session* starts through the persistent on-disk store
  (``store_warm_start``: a fresh memoiser loading every entry from disk
  instead of simulating),
* index-served store maintenance (``store_index``: ``info``/``gc`` answered
  from the append-only object index — zero record opens on a warm store,
  scaling with what changed — against the full per-object header scan
  (``reindex``) they replace),
* the serving path (``serving``: batch-ask throughput and p50/p95 request
  latency through a warm :class:`~repro.serve.service.CacheMindService`),
* the declarative experiment path (``experiment``: cold grid execution in
  cells/sec over a 2-config sweep with duplicate cells, the dedup ratio,
  and the warm store-backed re-run speedup with zero simulations),
* trace ingestion (``ingestion``: parse throughput in accesses/sec for the
  text/CSV and ChampSim-like binary trace formats, round-tripped through
  the ``repro.workloads.ingest`` writers),
* resilience plumbing (``resilience``: the per-call cost of the inactive
  :func:`repro.faults.fault_point` hook — which rides on every store
  read/write, pool job and socket round trip, so it must stay in the
  nanoseconds — and deep ``store verify`` throughput in records/sec),
* the analytics engine (``analytics``: rows/sec for one representative
  filter + group-aggregate + top-k :class:`repro.analytics.Query` through
  the stdlib and sqlite backends at small and large row counts, with the
  sqlite spill cost timed separately and a stdlib-vs-sqlite identity
  check),

and emits a JSON report (``BENCH_<rev>.json``) whose schema is stable across
revisions, so consecutive reports are directly comparable.  ``--quick``
shrinks trace lengths and repeat counts for CI smoke runs; the numbers are
noisier but the schema is identical.

Timings use ``time.perf_counter`` and report the best of ``repeats`` runs
(the standard way to suppress scheduler noise in micro-benchmarks); all
individual repeats are kept in the report for variance inspection.
"""

from __future__ import annotations

import json
import os
import platform
import shutil
import subprocess
import tempfile
import time
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.sim.batch import NATIVE_POLICIES, BatchSimulator, RolloutSpec
from repro.sim.config import HierarchyConfig, SMALL_CONFIG
from repro.sim.engine import SimulationEngine
from repro.sim.parallel import default_jobs, planned_strategy
from repro.workloads.generator import generate_trace

#: Bump when the report layout changes incompatibly.
SCHEMA_VERSION = 1

#: Default measurement matrix: bundled workloads x a policy spread covering
#: the LRU fast path, a generic (stateful) policy and the future-aware oracle.
BENCH_WORKLOADS = ("astar", "lbm", "mcf")
BENCH_POLICIES = ("lru", "srrip", "belady")


@dataclass
class BenchTiming:
    """One named measurement: best-of-``repeats`` wall-clock seconds."""

    name: str
    seconds: float
    repeats: List[float] = field(default_factory=list)
    meta: Dict[str, object] = field(default_factory=dict)


def current_revision() -> str:
    """Short git revision of the working tree, or ``"unknown"``."""
    try:
        proc = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                              capture_output=True, text=True, timeout=10)
        if proc.returncode == 0 and proc.stdout.strip():
            return proc.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


def default_report_path(revision: Optional[str] = None) -> str:
    """``BENCH_<rev>.json`` in the current working directory."""
    return f"BENCH_{revision or current_revision()}.json"


def _time(function: Callable[[], object], repeats: int) -> List[float]:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        times.append(time.perf_counter() - start)
    return times


def _measure(name: str, function: Callable[[], object], repeats: int,
             **meta) -> BenchTiming:
    times = _time(function, repeats)
    return BenchTiming(name=name, seconds=min(times), repeats=times,
                       meta=dict(meta))


def run_perf_suite(quick: bool = False,
                   workloads: Sequence[str] = BENCH_WORKLOADS,
                   policies: Sequence[str] = BENCH_POLICIES,
                   config: HierarchyConfig = SMALL_CONFIG,
                   mode: str = "llc_only",
                   num_accesses: Optional[int] = None,
                   repeats: Optional[int] = None,
                   jobs: Optional[int] = None,
                   seed: int = 0,
                   store_dir: Optional[str] = None) -> Dict[str, object]:
    """Run the benchmark suite and return the report dictionary.

    ``store_dir`` names the persistent-store directory used by the
    warm-start section (kept afterwards, e.g. for CI artifact upload); by
    default a temporary directory is used and removed.  The cold-save
    measurement **wipes and repopulates** that directory each repeat, so
    never point it at a store whose contents you want to keep.
    """
    # Imported here, not at module top: the pipeline imports the sim layer,
    # and the perf package must stay importable from anywhere below it.
    from repro.core.pipeline import CacheMind, SimulationCache
    from repro.tracedb.store import TraceStore

    if num_accesses is None:
        num_accesses = 4000 if quick else 20000
    if repeats is None:
        repeats = 1 if quick else 3
    if jobs is None:
        jobs = default_jobs()

    timings: List[BenchTiming] = []
    traces = {}

    # --- trace generation ------------------------------------------------
    for workload in workloads:
        timing = _measure(
            f"trace_generation/{workload}",
            lambda workload=workload: generate_trace(workload, num_accesses, seed),
            repeats, workload=workload, num_accesses=num_accesses)
        timings.append(timing)
        traces[workload] = generate_trace(workload, num_accesses, seed)

    # --- full vs stats-only replay ---------------------------------------
    replay_speedups: Dict[str, float] = {}
    for workload in workloads:
        trace = traces[workload]
        for policy in policies:
            full = _measure(
                f"replay_full/{workload}/{policy}",
                lambda trace=trace, policy=policy: SimulationEngine(
                    config=config, mode=mode).run(trace, policy),
                repeats, workload=workload, policy=policy, detail="full")
            stats = _measure(
                f"replay_stats/{workload}/{policy}",
                lambda trace=trace, policy=policy: SimulationEngine(
                    config=config, mode=mode, detail="stats").run(trace, policy),
                repeats, workload=workload, policy=policy, detail="stats")
            timings.extend([full, stats])
            if stats.seconds > 0:
                replay_speedups[f"{workload}/{policy}"] = (
                    full.seconds / stats.seconds)

    # --- database builds: cold serial, parallel, warm (memoised) ---------
    session_kwargs = dict(workloads=list(workloads), policies=list(policies),
                          num_accesses=num_accesses, config=config, mode=mode,
                          seed=seed)

    def cold_build():
        cache = SimulationCache()
        CacheMind(simulation_cache=cache, **session_kwargs)._build_database()

    cold = _measure("database_build/cold_serial", cold_build, repeats,
                    pairs=len(workloads) * len(policies))
    timings.append(cold)

    parallel = None
    if jobs > 1:
        def parallel_build():
            cache = SimulationCache()
            session = CacheMind(simulation_cache=cache, jobs=jobs,
                                **session_kwargs)
            session._build_database()
            return session

        # One untimed warm-up first: process pools pay a one-off interpreter
        # spawn cost that would otherwise be attributed to the build.
        parallel_times = _time(parallel_build, repeats + 1)[1:]
        parallel = BenchTiming(name=f"database_build/parallel_jobs{jobs}",
                               seconds=min(parallel_times),
                               repeats=parallel_times,
                               meta={"jobs": jobs})
        timings.append(parallel)

    warm_cache = SimulationCache()
    CacheMind(simulation_cache=warm_cache, **session_kwargs)._build_database()
    warm = _measure(
        "database_build/warm_memoised",
        lambda: CacheMind(simulation_cache=warm_cache,
                          **session_kwargs)._build_database(),
        repeats, cache_stats=dict(warm_cache.stats()))
    timings.append(warm)

    # --- persistent store: cold save, then warm cross-process-style start
    cleanup_store = store_dir is None
    store_path = (store_dir if store_dir is not None
                  else tempfile.mkdtemp(prefix="cachemind-bench-store-"))

    def store_populate():
        TraceStore(store_path).clear()
        CacheMind(simulation_cache=SimulationCache(store=store_path),
                  **session_kwargs)._build_database()

    populate = _measure("store/cold_build_and_save", store_populate, repeats,
                        store_dir=store_path)
    timings.append(populate)

    warm_store_stats: Dict[str, int] = {}

    def store_warm_build():
        # A fresh SimulationCache per run models a brand-new process: the
        # only warmth is the on-disk store.
        cache = SimulationCache(store=store_path)
        CacheMind(simulation_cache=cache, **session_kwargs)._build_database()
        warm_store_stats.update(cache.stats())

    store_warm = _measure("database_build/store_warm", store_warm_build,
                          repeats, store_dir=store_path)
    store_warm.meta["cache_stats"] = dict(warm_store_stats)
    timings.append(store_warm)
    store_info = TraceStore(store_path).info()

    # --- resilience: store verify throughput, fault-point overhead --------
    # Verify runs while the store is still populated from the warm-start
    # section, so the records/sec number reflects real record sizes.
    from repro.faults import fault_point

    verify_report: Dict[str, object] = {}

    def store_verify():
        verify_report.update(TraceStore(store_path).verify())

    verify_timing = _measure("store/verify", store_verify, repeats,
                             store_dir=store_path)
    timings.append(verify_timing)

    # --- store_index: index-served maintenance vs full header scans ------
    # Pad the store with extra small records so info/gc answer over a
    # corpus visibly larger than the warm-start handful, then compare
    # the index-served paths (zero record opens on a warm store — they
    # scale with what *changed*) against a full reindex scan (one header
    # read per object — the O(records) baseline they replace).
    seed_store = TraceStore(store_path)
    index_pad_records = 200 if quick else 1000
    for pad in range(index_pad_records):
        seed_store.save("result", ("bench-index-pad", pad), {"pad": pad})
    index_total_records = len(seed_store)

    info_probe: Dict[str, int] = {}

    def store_info_indexed():
        # A fresh handle per run models a new maintenance process whose
        # only warmth is the on-disk index.
        probe = TraceStore(store_path)
        probe.info()
        info_probe["record_opens"] = probe.record_opens

    info_timing = _measure("store/info_indexed", store_info_indexed,
                           repeats, records=index_total_records)
    info_timing.meta["record_opens"] = info_probe.get("record_opens")
    timings.append(info_timing)

    gc_probe: Dict[str, int] = {}

    def store_gc_indexed():
        probe = TraceStore(store_path)
        probe.gc()
        gc_probe["record_opens"] = probe.record_opens

    gc_timing = _measure("store/gc_indexed", store_gc_indexed, repeats,
                         records=index_total_records)
    gc_timing.meta["record_opens"] = gc_probe.get("record_opens")
    timings.append(gc_timing)

    def store_reindex_scan():
        TraceStore(store_path).reindex()

    reindex_timing = _measure("store/reindex_full_scan", store_reindex_scan,
                              repeats, records=index_total_records)
    timings.append(reindex_timing)

    store_index_section = {
        "records": index_total_records,
        "info_seconds": info_timing.seconds,
        "info_record_opens": info_probe.get("record_opens"),
        "gc_seconds": gc_timing.seconds,
        "gc_record_opens": gc_probe.get("record_opens"),
        "reindex_seconds": reindex_timing.seconds,
        # How much cheaper answering from the index is than the header
        # scan it replaces (the old info/gc cost model).
        "info_speedup_vs_scan": (reindex_timing.seconds / info_timing.seconds
                                 if info_timing.seconds > 0 else None),
        "index_served": info_probe.get("record_opens") == 0,
    }

    if cleanup_store:
        shutil.rmtree(store_path, ignore_errors=True)

    noop_calls = 20000 if quick else 200000

    def fault_point_noop():
        for _ in range(noop_calls):
            fault_point("store.read")

    noop_timing = _measure("faults/fault_point_noop", fault_point_noop,
                           repeats, calls=noop_calls)
    timings.append(noop_timing)
    fault_point_ns = (noop_timing.seconds / noop_calls * 1e9
                      if noop_calls else None)
    verify_rate = (verify_report.get("checked", 0) / verify_timing.seconds
                   if verify_timing.seconds > 0 else None)
    resilience_section = {
        "fault_point_calls": noop_calls,
        "fault_point_ns_per_call": fault_point_ns,
        "verify_seconds": verify_timing.seconds,
        "verify_records": verify_report.get("checked"),
        "verify_records_per_second": verify_rate,
        "verify_clean": verify_report.get("clean"),
    }

    # --- serving: batch-ask throughput and latency percentiles -----------
    # In-process service (no sockets: CI sandboxes and the numbers should
    # measure the serving path, not loopback TCP).  The question mix
    # repeats each (workload, policy) pair, so the batch also exercises
    # plan-level simulation dedup; the session is warmed first so latency
    # measures steady-state serving, not the one-off database build.
    from repro.serve.service import CacheMindService

    service = CacheMindService(session=CacheMind(
        simulation_cache=SimulationCache(), **session_kwargs))
    service.warm_up()
    questions = []
    for workload in workloads:
        for policy in policies:
            questions.append(f"What is the miss rate of {policy} "
                             f"on {workload}?")
            questions.append(f"How many accesses are there in {workload} "
                             f"under {policy}?")
        questions.append(f"Which policy has the lowest miss rate "
                         f"on {workload}?")
    serving_timing = _measure(
        "serving/batch_ask",
        lambda: service.ask_batch(questions),
        repeats, questions=len(questions))
    service_stats = service.stats()
    serving_timing.meta["latency_ms"] = dict(service_stats["latency_ms"])
    timings.append(serving_timing)
    serving_qps = (len(questions) / serving_timing.seconds
                   if serving_timing.seconds > 0 else None)
    serving = {
        "questions_per_batch": len(questions),
        "batch_seconds": serving_timing.seconds,
        "throughput_qps": serving_qps,
        "latency_ms": dict(service_stats["latency_ms"]),
        "requests": service_stats["requests"],
        "errors": service_stats["errors"],
    }
    service.close()

    # --- experiment sweeps: grid compile+execute, dedup, warm re-runs -----
    # A 2-config grid (the bench config plus a doubled-LLC variant) with a
    # duplicated workload, so the measurement also exercises the dedup
    # merge; cold populates a store, warm re-runs against it (the
    # cross-process experiment story: zero simulations).
    from repro.core.experiment import ExperimentRunner, ExperimentSpec

    experiment_spec = ExperimentSpec(
        workloads=tuple(workloads) + (workloads[0],),
        policies=list(policies),
        configs=(config, config.scaled_llc(2 * config.llc.size_bytes,
                                           name=f"{config.name}-llc2x")),
        mode=mode, num_accesses=(num_accesses,), seeds=(seed,),
        baseline_policy=policies[0])
    experiment_store = tempfile.mkdtemp(prefix="cachemind-bench-exp-")
    cold_counters: Dict[str, int] = {}
    warm_counters: Dict[str, int] = {}

    def experiment_cold():
        TraceStore(experiment_store).clear()
        runner = ExperimentRunner(
            simulation_cache=SimulationCache(store=experiment_store))
        cold_counters.update(runner.run(experiment_spec).counters)

    experiment_cold_timing = _measure(
        "experiment/cold_grid", experiment_cold, repeats,
        store_dir=experiment_store)
    experiment_cold_timing.meta["counters"] = dict(cold_counters)
    timings.append(experiment_cold_timing)

    def experiment_warm():
        # A fresh memoiser per run models a brand-new process; the only
        # warmth is the store the cold run populated.
        runner = ExperimentRunner(
            simulation_cache=SimulationCache(store=experiment_store))
        warm_counters.update(runner.run(experiment_spec).counters)

    experiment_warm_timing = _measure(
        "experiment/warm_grid", experiment_warm, repeats,
        store_dir=experiment_store)
    experiment_warm_timing.meta["counters"] = dict(warm_counters)
    timings.append(experiment_warm_timing)
    shutil.rmtree(experiment_store, ignore_errors=True)

    experiment_cells_per_sec = (
        cold_counters.get("unique_jobs", 0) / experiment_cold_timing.seconds
        if experiment_cold_timing.seconds > 0 else None)
    experiment_section = {
        "planned_cells": cold_counters.get("planned_cells", 0),
        "unique_jobs": cold_counters.get("unique_jobs", 0),
        "duplicate_jobs": cold_counters.get("duplicate_jobs", 0),
        "dedup_ratio": (cold_counters.get("duplicate_jobs", 0)
                        / cold_counters["planned_cells"]
                        if cold_counters.get("planned_cells") else None),
        "cold_seconds": experiment_cold_timing.seconds,
        "warm_seconds": experiment_warm_timing.seconds,
        "cells_per_second": experiment_cells_per_sec,
        "warm_speedup": (experiment_cold_timing.seconds
                         / experiment_warm_timing.seconds
                         if experiment_warm_timing.seconds > 0 else None),
        "warm_zero_simulations": warm_counters.get("simulations_run") == 0,
    }

    # --- batch rollouts: one trace pass, many lockstep cells --------------
    # Grid sizes 1/4/9/16 over (native policy x LLC-scaled config) cells
    # sharing one trace, each measured twice: per-cell single replay vs the
    # lockstep BatchSimulator.  Results are checked identical before the
    # timed runs, so the speedup is for byte-equal work.
    batch_trace = traces[workloads[0]]
    batch_configs = [config]
    for scale in (2, 4, 8):
        batch_configs.append(config.scaled_llc(
            scale * config.llc.size_bytes, name=f"{config.name}-llc{scale}x"))
    batch_cells = [(policy, batch_config) for policy in NATIVE_POLICIES
                   for batch_config in batch_configs]
    batch_sizes: List[Dict[str, object]] = []
    batch_speedup_9 = None
    for grid in (1, 4, 9, 16):
        cells = batch_cells[:grid]
        rollouts = [RolloutSpec(policy, batch_config)
                    for policy, batch_config in cells]

        def run_single(cells=cells):
            return [SimulationEngine(config=batch_config, mode="llc_only",
                                     detail="stats").run(batch_trace, policy)
                    for policy, batch_config in cells]

        def run_batched(rollouts=rollouts):
            return BatchSimulator(batch_trace).run(rollouts)

        identical = all(
            single.llc_stats.as_tuple() == batched.llc_stats.as_tuple()
            and single.timing.stall_cycles == batched.timing.stall_cycles
            for single, batched in zip(run_single(), run_batched()))
        single_timing = _measure(f"batch_rollout/single_{grid}cells",
                                 run_single, repeats, cells=grid)
        batched_timing = _measure(f"batch_rollout/batch_{grid}cells",
                                  run_batched, repeats, cells=grid,
                                  identical=identical)
        timings.extend([single_timing, batched_timing])
        speedup = (single_timing.seconds / batched_timing.seconds
                   if batched_timing.seconds > 0 else None)
        if grid == 9:
            batch_speedup_9 = speedup
        batch_sizes.append({
            "cells": grid,
            "single_seconds": single_timing.seconds,
            "batch_seconds": batched_timing.seconds,
            "speedup": speedup,
            "single_cells_per_second": (grid / single_timing.seconds
                                        if single_timing.seconds > 0
                                        else None),
            "batch_cells_per_second": (grid / batched_timing.seconds
                                       if batched_timing.seconds > 0
                                       else None),
            "identical": identical,
        })
    batch_section = {
        "workload": workloads[0],
        "accesses": len(batch_trace),
        "detail": "stats",
        "policies": list(NATIVE_POLICIES),
        "configs": [batch_config.name for batch_config in batch_configs],
        "sizes": batch_sizes,
        "speedup_at_9_cells": batch_speedup_9,
        "all_identical": all(size["identical"] for size in batch_sizes),
    }

    # --- trace ingestion: parse throughput for both on-disk formats ------
    # The first bench workload's trace is written out in both formats and
    # parsed back, so the accesses/sec numbers cover the exact columnar
    # append paths `trace import` runs.
    from repro.workloads.ingest import (
        parse_champsim_trace,
        parse_text_trace,
        write_champsim_trace,
        write_text_trace,
    )

    ingest_dir = tempfile.mkdtemp(prefix="cachemind-bench-ingest-")
    ingest_trace = traces[workloads[0]]
    text_path = write_text_trace(
        ingest_trace, os.path.join(ingest_dir, "bench.csv"))
    champsim_path = write_champsim_trace(
        ingest_trace, os.path.join(ingest_dir, "bench.champsim"))
    ingest_text_timing = _measure(
        "ingest/parse_text", lambda: parse_text_trace(text_path),
        repeats, accesses=len(ingest_trace),
        file_bytes=os.path.getsize(text_path))
    ingest_champsim_timing = _measure(
        "ingest/parse_champsim", lambda: parse_champsim_trace(champsim_path),
        repeats, accesses=len(ingest_trace),
        file_bytes=os.path.getsize(champsim_path))
    timings.extend([ingest_text_timing, ingest_champsim_timing])
    ingest_text_rate = (len(ingest_trace) / ingest_text_timing.seconds
                        if ingest_text_timing.seconds > 0 else None)
    ingest_champsim_rate = (len(ingest_trace)
                            / ingest_champsim_timing.seconds
                            if ingest_champsim_timing.seconds > 0 else None)
    ingestion_section = {
        "workload": workloads[0],
        "accesses": len(ingest_trace),
        "text_seconds": ingest_text_timing.seconds,
        "text_file_bytes": os.path.getsize(text_path),
        "text_accesses_per_second": ingest_text_rate,
        "champsim_seconds": ingest_champsim_timing.seconds,
        "champsim_file_bytes": os.path.getsize(champsim_path),
        "champsim_accesses_per_second": ingest_champsim_rate,
    }
    shutil.rmtree(ingest_dir, ignore_errors=True)

    # --- analytics: declarative query engine throughput ------------------
    # One representative filter + group-aggregate + top-k query runs over a
    # synthetic trace-shaped table at two row counts, through both backends.
    # rows/sec = input rows / best execution time (sqlite spill timed apart,
    # since registration is a one-off cost per table).
    from repro.analytics import (
        Aggregate,
        Filter,
        OrderBy,
        Query,
        SqliteBackend,
        StdlibBackend,
    )
    from repro.tracedb.table import Table

    def _analytics_table(rows: int) -> Table:
        return Table.from_columns({
            "pc": [(i * 7919) % 997 for i in range(rows)],
            "set_id": [i % 64 for i in range(rows)],
            "is_miss": [1 if (i * 31) % 97 < 37 else 0 for i in range(rows)],
            "latency": [float((i * 13) % 451) / 10.0 for i in range(rows)],
            "policy": [("lru", "belady", "srrip")[i % 3] for i in range(rows)],
        })

    analytics_query = Query(
        table="t",
        filters=(Filter("latency", "gt", 5.0),),
        group_by=("set_id",),
        aggregates=(
            Aggregate("count", alias="n"),
            Aggregate("mean", "latency"),
            Aggregate("percentile", "latency", alias="p95_latency", q=0.95),
        ),
        order_by=(OrderBy("n", True),),
        limit=8,
    )
    analytics_small_rows, analytics_large_rows = (
        (1_000, 10_000) if quick else (5_000, 50_000))
    analytics_sizes: List[Dict[str, object]] = []
    analytics_rates: Dict[str, Optional[float]] = {}
    for size_label, analytics_rows in (("small", analytics_small_rows),
                                       ("large", analytics_large_rows)):
        analytics_table = _analytics_table(analytics_rows)
        stdlib_store = StdlibBackend()
        stdlib_store.register_table("t", analytics_table)
        stdlib_timing = _measure(
            f"analytics/stdlib_{size_label}",
            lambda store=stdlib_store: store.execute(analytics_query),
            repeats, rows=analytics_rows)
        sqlite_store = SqliteBackend()
        spill_timing = _measure(
            f"analytics/sqlite_spill_{size_label}",
            lambda store=sqlite_store, table=analytics_table:
                store.register_table("t", table),
            repeats, rows=analytics_rows)
        sqlite_timing = _measure(
            f"analytics/sqlite_{size_label}",
            lambda store=sqlite_store: store.execute(analytics_query),
            repeats, rows=analytics_rows)
        identical = (stdlib_store.execute(analytics_query).to_dict()
                     == sqlite_store.execute(analytics_query).to_dict())
        sqlite_store.close()
        timings.extend([stdlib_timing, spill_timing, sqlite_timing])
        stdlib_rate = (analytics_rows / stdlib_timing.seconds
                       if stdlib_timing.seconds > 0 else None)
        sqlite_rate = (analytics_rows / sqlite_timing.seconds
                       if sqlite_timing.seconds > 0 else None)
        analytics_rates[size_label] = stdlib_rate
        analytics_rates[f"{size_label}_sqlite"] = sqlite_rate
        analytics_sizes.append({
            "label": size_label,
            "rows": analytics_rows,
            "stdlib_seconds": stdlib_timing.seconds,
            "stdlib_rows_per_second": stdlib_rate,
            "sqlite_spill_seconds": spill_timing.seconds,
            "sqlite_seconds": sqlite_timing.seconds,
            "sqlite_rows_per_second": sqlite_rate,
            "identical": identical,
        })
    analytics_section = {
        "query": analytics_query.to_dict(),
        "sizes": analytics_sizes,
        "all_identical": all(size["identical"] for size in analytics_sizes),
    }

    # --- derived summary -------------------------------------------------
    speedup_values = sorted(replay_speedups.values())
    derived: Dict[str, object] = {
        "stats_replay_speedup": replay_speedups,
        "stats_replay_speedup_min": speedup_values[0] if speedup_values else None,
        "stats_replay_speedup_median": (
            speedup_values[len(speedup_values) // 2] if speedup_values else None),
        "warm_build_speedup": (cold.seconds / warm.seconds
                               if warm.seconds > 0 else None),
        "store_warm_speedup": (cold.seconds / store_warm.seconds
                               if store_warm.seconds > 0 else None),
        "serving_qps": serving_qps,
        "serving_p50_ms": serving["latency_ms"]["p50"],
        "serving_p95_ms": serving["latency_ms"]["p95"],
        "experiment_cells_per_sec": experiment_cells_per_sec,
        "experiment_dedup_ratio": experiment_section["dedup_ratio"],
        "experiment_warm_speedup": experiment_section["warm_speedup"],
        "batch_rollout_speedup_9cells": batch_speedup_9,
        "ingest_text_accesses_per_s": ingest_text_rate,
        "ingest_champsim_accesses_per_s": ingest_champsim_rate,
        "fault_point_ns_per_call": fault_point_ns,
        "store_verify_records_per_s": verify_rate,
        "store_info_speedup_vs_scan":
            store_index_section["info_speedup_vs_scan"],
        "store_index_served": store_index_section["index_served"],
        "analytics_stdlib_rows_per_s": analytics_rates.get("large"),
        "analytics_sqlite_rows_per_s": analytics_rates.get("large_sqlite"),
    }
    if parallel is not None:
        derived["parallel_build_speedup"] = (
            cold.seconds / parallel.seconds if parallel.seconds > 0 else None)

    store_warm_start = {
        "cold_seconds": cold.seconds,
        "cold_build_and_save_seconds": populate.seconds,
        "warm_seconds": store_warm.seconds,
        "speedup": derived["store_warm_speedup"],
        "store_dir": store_path if not cleanup_store else None,
        "store_records": store_info["records"],
        "store_bytes": store_info["total_bytes"],
        "warm_cache_stats": dict(warm_store_stats),
        "zero_simulations": warm_store_stats.get("misses") == 0,
    }

    return {
        "schema": SCHEMA_VERSION,
        "revision": current_revision(),
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "parallel_strategy": planned_strategy(jobs),
        "quick": quick,
        "params": {
            "workloads": list(workloads),
            "policies": list(policies),
            "config": config.name,
            "mode": mode,
            "num_accesses": num_accesses,
            "repeats": repeats,
            "jobs": jobs,
            "seed": seed,
        },
        "timings": [asdict(timing) for timing in timings],
        "derived": derived,
        "store_warm_start": store_warm_start,
        "store_index": store_index_section,
        "serving": serving,
        "experiment": experiment_section,
        "batch_rollout": batch_section,
        "ingestion": ingestion_section,
        "resilience": resilience_section,
        "analytics": analytics_section,
    }


def write_report(report: Dict[str, object],
                 path: Optional[str] = None) -> str:
    """Write the report as JSON; returns the path written."""
    if path is None:
        path = default_report_path(str(report.get("revision") or "unknown"))
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path


def load_report(path: str) -> Dict[str, object]:
    """Read a previously written ``BENCH_<rev>.json`` report."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def compare_reports(old: Dict[str, object],
                    new: Dict[str, object]) -> str:
    """Per-timing delta table between two reports (old -> new).

    Timings are matched by name; the ratio is new/old seconds, so values
    below 1.0 are speedups.  Measurements present in only one report are
    listed separately, making schema drift visible instead of silent.
    """
    old_timings = {timing["name"]: timing["seconds"]
                   for timing in old.get("timings", [])}
    new_timings = {timing["name"]: timing["seconds"]
                   for timing in new.get("timings", [])}
    lines = [f"perf delta {old.get('revision', '?')} -> "
             f"{new.get('revision', '?')} "
             f"(old {old.get('params', {}).get('num_accesses')} vs "
             f"new {new.get('params', {}).get('num_accesses')} accesses, "
             f"ratio < 1.0 is faster)"]
    for name, new_seconds in new_timings.items():
        old_seconds = old_timings.get(name)
        if old_seconds is None:
            continue
        ratio = new_seconds / old_seconds if old_seconds > 0 else float("inf")
        lines.append(f"  {name:<42} {old_seconds * 1000:9.2f} -> "
                     f"{new_seconds * 1000:9.2f} ms  x{ratio:.2f}")
    removed = sorted(set(old_timings) - set(new_timings))
    added = sorted(set(new_timings) - set(old_timings))
    if removed:
        lines.append("  only in old: " + ", ".join(removed))
    if added:
        lines.append("  only in new: " + ", ".join(added))
    return "\n".join(lines)


def format_report(report: Dict[str, object]) -> str:
    """Human-readable summary of one report (printed by the CLI)."""
    lines = [f"perf suite @ {report['revision']} "
             f"(python {report['python']}, {report['params']['config']} config, "
             f"{report['params']['num_accesses']} accesses, "
             f"repeats={report['params']['repeats']})"]
    for timing in report["timings"]:
        lines.append(f"  {timing['name']:<42} {timing['seconds'] * 1000:9.2f} ms")
    derived = report["derived"]
    if derived.get("stats_replay_speedup_min") is not None:
        lines.append(
            f"  stats-only replay speedup: "
            f"min {derived['stats_replay_speedup_min']:.1f}x, "
            f"median {derived['stats_replay_speedup_median']:.1f}x")
    if derived.get("parallel_build_speedup") is not None:
        lines.append(
            f"  parallel build speedup over cold serial: "
            f"{derived['parallel_build_speedup']:.2f}x "
            f"({report['params']['jobs']} jobs)")
    if derived.get("warm_build_speedup") is not None:
        lines.append(
            f"  warm (memoised) build speedup: "
            f"{derived['warm_build_speedup']:.0f}x")
    store_section = report.get("store_warm_start")
    if store_section and store_section.get("speedup") is not None:
        lines.append(
            f"  store warm-start speedup over cold build: "
            f"{store_section['speedup']:.1f}x "
            f"({store_section['store_records']} records, "
            f"{'zero simulations' if store_section['zero_simulations'] else 'RE-SIMULATED'})")
    index_section = report.get("store_index")
    if index_section and index_section.get("info_speedup_vs_scan") is not None:
        lines.append(
            f"  store index: info {index_section['info_speedup_vs_scan']:.1f}x "
            f"cheaper than a full header scan at "
            f"{index_section['records']} records "
            f"({'zero record opens' if index_section.get('index_served') else 'FELL BACK TO HEADER SCAN'})")
    serving_section = report.get("serving")
    if serving_section and serving_section.get("throughput_qps") is not None:
        latency = serving_section["latency_ms"]
        lines.append(
            f"  serving: {serving_section['throughput_qps']:.0f} questions/s "
            f"({serving_section['questions_per_batch']} per batch), "
            f"latency p50 {latency['p50']:.2f} ms / "
            f"p95 {latency['p95']:.2f} ms")
    experiment_section = report.get("experiment")
    if experiment_section and experiment_section.get(
            "cells_per_second") is not None:
        lines.append(
            f"  experiment: {experiment_section['cells_per_second']:.1f} "
            f"cells/s cold ({experiment_section['planned_cells']} cells -> "
            f"{experiment_section['unique_jobs']} unique jobs, "
            f"dedup ratio {experiment_section['dedup_ratio']:.2f}), "
            f"warm re-run {experiment_section['warm_speedup']:.1f}x "
            f"({'zero simulations' if experiment_section['warm_zero_simulations'] else 'RE-SIMULATED'})")
    batch_section = report.get("batch_rollout")
    if batch_section and batch_section.get("speedup_at_9_cells") is not None:
        lines.append(
            f"  batch rollout: {batch_section['speedup_at_9_cells']:.2f}x "
            f"over per-cell replay at 9 stats cells "
            f"({'identical' if batch_section.get('all_identical') else 'DIVERGED'}, "
            f"workload {batch_section['workload']})")
    ingestion_section = report.get("ingestion")
    if ingestion_section and ingestion_section.get(
            "text_accesses_per_second") is not None:
        lines.append(
            f"  ingestion: text {ingestion_section['text_accesses_per_second']:,.0f} "
            f"accesses/s, champsim "
            f"{ingestion_section['champsim_accesses_per_second']:,.0f} "
            f"accesses/s ({ingestion_section['accesses']} accesses, "
            f"workload {ingestion_section['workload']})")
    resilience_section = report.get("resilience")
    if resilience_section and resilience_section.get(
            "fault_point_ns_per_call") is not None:
        verify_rate = resilience_section.get("verify_records_per_second")
        lines.append(
            f"  resilience: fault_point no-op "
            f"{resilience_section['fault_point_ns_per_call']:.0f} ns/call, "
            f"store verify "
            + (f"{verify_rate:,.0f} records/s " if verify_rate else "")
            + f"({'clean' if resilience_section.get('verify_clean') else 'UNCLEAN'})")
    analytics_section = report.get("analytics")
    if analytics_section and analytics_section.get("sizes"):
        largest = analytics_section["sizes"][-1]
        lines.append(
            f"  analytics: stdlib {largest['stdlib_rows_per_second']:,.0f} "
            f"rows/s, sqlite {largest['sqlite_rows_per_second']:,.0f} rows/s "
            f"at {largest['rows']} rows "
            f"({'identical' if analytics_section.get('all_identical') else 'DIVERGED'})")
    return "\n".join(lines)
