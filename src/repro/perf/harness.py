"""Benchmark harness timing the simulation core's hot paths.

The suite times, on the bundled workloads:

* trace generation,
* full-detail vs stats-only replay (per policy, with derived speedups),
* cold, parallel and warm (memoised) trace-database builds,

and emits a JSON report (``BENCH_<rev>.json``) whose schema is stable across
revisions, so consecutive reports are directly comparable.  ``--quick``
shrinks trace lengths and repeat counts for CI smoke runs; the numbers are
noisier but the schema is identical.

Timings use ``time.perf_counter`` and report the best of ``repeats`` runs
(the standard way to suppress scheduler noise in micro-benchmarks); all
individual repeats are kept in the report for variance inspection.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.sim.config import HierarchyConfig, SMALL_CONFIG
from repro.sim.engine import SimulationEngine
from repro.sim.parallel import default_jobs
from repro.workloads.generator import generate_trace

#: Bump when the report layout changes incompatibly.
SCHEMA_VERSION = 1

#: Default measurement matrix: bundled workloads x a policy spread covering
#: the LRU fast path, a generic (stateful) policy and the future-aware oracle.
BENCH_WORKLOADS = ("astar", "lbm", "mcf")
BENCH_POLICIES = ("lru", "srrip", "belady")


@dataclass
class BenchTiming:
    """One named measurement: best-of-``repeats`` wall-clock seconds."""

    name: str
    seconds: float
    repeats: List[float] = field(default_factory=list)
    meta: Dict[str, object] = field(default_factory=dict)


def current_revision() -> str:
    """Short git revision of the working tree, or ``"unknown"``."""
    try:
        proc = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                              capture_output=True, text=True, timeout=10)
        if proc.returncode == 0 and proc.stdout.strip():
            return proc.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


def default_report_path(revision: Optional[str] = None) -> str:
    """``BENCH_<rev>.json`` in the current working directory."""
    return f"BENCH_{revision or current_revision()}.json"


def _time(function: Callable[[], object], repeats: int) -> List[float]:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        times.append(time.perf_counter() - start)
    return times


def _measure(name: str, function: Callable[[], object], repeats: int,
             **meta) -> BenchTiming:
    times = _time(function, repeats)
    return BenchTiming(name=name, seconds=min(times), repeats=times,
                       meta=dict(meta))


def run_perf_suite(quick: bool = False,
                   workloads: Sequence[str] = BENCH_WORKLOADS,
                   policies: Sequence[str] = BENCH_POLICIES,
                   config: HierarchyConfig = SMALL_CONFIG,
                   mode: str = "llc_only",
                   num_accesses: Optional[int] = None,
                   repeats: Optional[int] = None,
                   jobs: Optional[int] = None,
                   seed: int = 0) -> Dict[str, object]:
    """Run the benchmark suite and return the report dictionary."""
    # Imported here, not at module top: the pipeline imports the sim layer,
    # and the perf package must stay importable from anywhere below it.
    from repro.core.pipeline import CacheMind, SimulationCache

    if num_accesses is None:
        num_accesses = 4000 if quick else 20000
    if repeats is None:
        repeats = 1 if quick else 3
    if jobs is None:
        jobs = default_jobs()

    timings: List[BenchTiming] = []
    traces = {}

    # --- trace generation ------------------------------------------------
    for workload in workloads:
        timing = _measure(
            f"trace_generation/{workload}",
            lambda workload=workload: generate_trace(workload, num_accesses, seed),
            repeats, workload=workload, num_accesses=num_accesses)
        timings.append(timing)
        traces[workload] = generate_trace(workload, num_accesses, seed)

    # --- full vs stats-only replay ---------------------------------------
    replay_speedups: Dict[str, float] = {}
    for workload in workloads:
        trace = traces[workload]
        for policy in policies:
            full = _measure(
                f"replay_full/{workload}/{policy}",
                lambda trace=trace, policy=policy: SimulationEngine(
                    config=config, mode=mode).run(trace, policy),
                repeats, workload=workload, policy=policy, detail="full")
            stats = _measure(
                f"replay_stats/{workload}/{policy}",
                lambda trace=trace, policy=policy: SimulationEngine(
                    config=config, mode=mode, detail="stats").run(trace, policy),
                repeats, workload=workload, policy=policy, detail="stats")
            timings.extend([full, stats])
            if stats.seconds > 0:
                replay_speedups[f"{workload}/{policy}"] = (
                    full.seconds / stats.seconds)

    # --- database builds: cold serial, parallel, warm (memoised) ---------
    session_kwargs = dict(workloads=list(workloads), policies=list(policies),
                          num_accesses=num_accesses, config=config, mode=mode,
                          seed=seed)

    def cold_build():
        cache = SimulationCache()
        CacheMind(simulation_cache=cache, **session_kwargs)._build_database()

    cold = _measure("database_build/cold_serial", cold_build, repeats,
                    pairs=len(workloads) * len(policies))
    timings.append(cold)

    parallel = None
    if jobs > 1:
        def parallel_build():
            cache = SimulationCache()
            session = CacheMind(simulation_cache=cache, jobs=jobs,
                                **session_kwargs)
            session._build_database()
            return session

        # One untimed warm-up first: process pools pay a one-off interpreter
        # spawn cost that would otherwise be attributed to the build.
        parallel_times = _time(parallel_build, repeats + 1)[1:]
        parallel = BenchTiming(name=f"database_build/parallel_jobs{jobs}",
                               seconds=min(parallel_times),
                               repeats=parallel_times,
                               meta={"jobs": jobs})
        timings.append(parallel)

    warm_cache = SimulationCache()
    CacheMind(simulation_cache=warm_cache, **session_kwargs)._build_database()
    warm = _measure(
        "database_build/warm_memoised",
        lambda: CacheMind(simulation_cache=warm_cache,
                          **session_kwargs)._build_database(),
        repeats, cache_stats=dict(warm_cache.stats()))
    timings.append(warm)

    # --- derived summary -------------------------------------------------
    speedup_values = sorted(replay_speedups.values())
    derived: Dict[str, object] = {
        "stats_replay_speedup": replay_speedups,
        "stats_replay_speedup_min": speedup_values[0] if speedup_values else None,
        "stats_replay_speedup_median": (
            speedup_values[len(speedup_values) // 2] if speedup_values else None),
        "warm_build_speedup": (cold.seconds / warm.seconds
                               if warm.seconds > 0 else None),
    }
    if parallel is not None:
        derived["parallel_build_speedup"] = (
            cold.seconds / parallel.seconds if parallel.seconds > 0 else None)

    return {
        "schema": SCHEMA_VERSION,
        "revision": current_revision(),
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "quick": quick,
        "params": {
            "workloads": list(workloads),
            "policies": list(policies),
            "config": config.name,
            "mode": mode,
            "num_accesses": num_accesses,
            "repeats": repeats,
            "jobs": jobs,
            "seed": seed,
        },
        "timings": [asdict(timing) for timing in timings],
        "derived": derived,
    }


def write_report(report: Dict[str, object],
                 path: Optional[str] = None) -> str:
    """Write the report as JSON; returns the path written."""
    if path is None:
        path = default_report_path(str(report.get("revision") or "unknown"))
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path


def format_report(report: Dict[str, object]) -> str:
    """Human-readable summary of one report (printed by the CLI)."""
    lines = [f"perf suite @ {report['revision']} "
             f"(python {report['python']}, {report['params']['config']} config, "
             f"{report['params']['num_accesses']} accesses, "
             f"repeats={report['params']['repeats']})"]
    for timing in report["timings"]:
        lines.append(f"  {timing['name']:<42} {timing['seconds'] * 1000:9.2f} ms")
    derived = report["derived"]
    if derived.get("stats_replay_speedup_min") is not None:
        lines.append(
            f"  stats-only replay speedup: "
            f"min {derived['stats_replay_speedup_min']:.1f}x, "
            f"median {derived['stats_replay_speedup_median']:.1f}x")
    if derived.get("parallel_build_speedup") is not None:
        lines.append(
            f"  parallel build speedup over cold serial: "
            f"{derived['parallel_build_speedup']:.2f}x "
            f"({report['params']['jobs']} jobs)")
    if derived.get("warm_build_speedup") is not None:
        lines.append(
            f"  warm (memoised) build speedup: "
            f"{derived['warm_build_speedup']:.0f}x")
    return "\n".join(lines)
