"""Tracked performance benchmarks for the simulation hot path.

``python -m repro bench --perf`` runs :func:`run_perf_suite` and writes a
``BENCH_<rev>.json`` report next to the working directory, so the perf
trajectory of the simulation core is tracked revision by revision.
"""

from repro.perf.harness import (
    BenchTiming,
    compare_reports,
    current_revision,
    default_report_path,
    format_report,
    load_report,
    run_perf_suite,
    write_report,
)

__all__ = [
    "BenchTiming",
    "compare_reports",
    "current_revision",
    "default_report_path",
    "format_report",
    "load_report",
    "run_perf_suite",
    "write_report",
]
