"""Command-line interface:
``python -m repro {simulate,ask,bench,experiment,store,serve,trace}``.

All subcommands drive the same :class:`~repro.core.pipeline.CacheMind`
facade (and therefore share the process-wide simulation memoiser):

* ``simulate`` -- run one (workload, policy) simulation and print the
  summary plus the trace-database metadata line,
* ``ask``      -- answer one or more natural-language questions with full
  provenance.  ``--json`` prints the complete ``AskResponse`` envelope
  (answer, provenance, plan/dedup counts, timings) instead of prose;
  ``--remote HOST:PORT`` sends the batch to a running ``repro serve``
  instance instead of answering in-process,
* ``bench``    -- build the database once (``--jobs N`` parallelises it) and
  print the per-workload, per-policy metric table with the winner per row,
  plus build timings and simulation-cache hit/miss counts.  ``bench --perf``
  runs the tracked benchmark harness instead and writes ``BENCH_<rev>.json``,
* ``experiment`` -- declarative sweep grids (``run``/``report``): compile a
  workloads x policies x configs x details x lengths x seeds grid into one
  merged job plan, execute it (in-process, or server-side with
  ``--remote``), print/persist the columnar cell table, and render saved
  results as pivot tables,
* ``store``    -- manage the persistent on-disk simulation store
  (``save``/``load``/``info``/``gc``), so repeated sessions and fresh
  processes start warm instead of re-simulating,
* ``serve``    -- run the concurrent JSON-lines server over one shared
  session (see ``repro.serve``); clients connect with ``ask --remote`` or
  any newline-delimited-JSON speaker (netcat works),
* ``trace``    -- import external trace files (text/CSV or ChampSim-like
  binary, ``import``/``list``/``info``): an imported trace is persisted
  into the store keyed by content fingerprint and becomes a named workload
  any store-attached command can reference.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional, Sequence

from repro.core.pipeline import CacheMind, SimulationCache
from repro.errors import StoreVersionError, UnknownNameError
from repro.llm.backend import available_backend_names
from repro.policies.base import available_policies
from repro.retrieval.base import available_retrievers
from repro.sim.config import NAMED_CONFIGS as CONFIGS
from repro.tracedb.database import DEFAULT_POLICIES, DEFAULT_WORKLOADS
from repro.workloads.generator import available_workload_info


def _csv(value: str) -> List[str]:
    return [item.strip() for item in value.split(",") if item.strip()]


def _csv_int(value: str) -> List[int]:
    try:
        return [int(item) for item in _csv(value)]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated integers, got {value!r}") from None


def _add_session_arguments(parser: argparse.ArgumentParser) -> None:
    # Defaults are applied in _make_session (None = "not given"), so
    # subcommands like `bench --perf` can distinguish an explicit value
    # from an omitted flag instead of comparing against sentinel defaults.
    parser.add_argument("--workloads", type=_csv, default=None,
                        help="comma-separated workload names "
                             f"(default: {','.join(DEFAULT_WORKLOADS)})")
    parser.add_argument("--policies", type=_csv, default=None,
                        help="comma-separated policy names "
                             f"(default: {','.join(DEFAULT_POLICIES)})")
    parser.add_argument("--accesses", type=int, default=None,
                        help="trace length per workload (default: 20000)")
    parser.add_argument("--config", choices=sorted(CONFIGS), default="small",
                        help="hierarchy configuration (default: small)")
    parser.add_argument("--mode", choices=["llc_only", "hierarchy"],
                        default="llc_only", help="simulation mode")
    parser.add_argument("--seed", type=int, default=0, help="workload seed")


def _make_session(args: argparse.Namespace, **overrides) -> CacheMind:
    if args.accesses is not None and args.accesses <= 0:
        # Caught here (not deep inside a generator mid-build) so the CLI
        # prints one clean line instead of a traceback.
        raise ValueError(f"--accesses must be a positive access count, "
                         f"got {args.accesses}")
    options = dict(
        workloads=(args.workloads if args.workloads is not None
                   else list(DEFAULT_WORKLOADS)),
        policies=(args.policies if args.policies is not None
                  else list(DEFAULT_POLICIES)),
        num_accesses=args.accesses if args.accesses is not None else 20000,
        config=CONFIGS[args.config],
        mode=args.mode,
        seed=args.seed,
        store_dir=getattr(args, "store_dir", None),
        store_read_only=getattr(args, "store_read_only", False),
    )
    options.update(overrides)
    return CacheMind(**options)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="CacheMind: natural-language, trace-grounded reasoning "
                    "for cache replacement.")
    subparsers = parser.add_subparsers(dest="command", required=True)

    simulate = subparsers.add_parser(
        "simulate", help="run one (workload, policy) cache simulation")
    _add_session_arguments(simulate)
    simulate.add_argument("--workload", default=None,
                          help="single workload (default: first of --workloads)")
    simulate.add_argument("--policy", default=None,
                          help="single policy (default: first of --policies)")
    simulate.add_argument("--list", action="store_true",
                          help="list available workloads (with kind and "
                               "description), policies, retrievers and "
                               "backends, then exit")
    simulate.add_argument("--store-dir", default=None, metavar="DIR",
                          help="persistent trace store; traces imported "
                               "with `trace import` become nameable "
                               "workloads, and results persist across "
                               "processes")
    simulate.add_argument("--store-read-only", action="store_true",
                          help="mount --store-dir without write access "
                               "(serve warm results, persist nothing)")

    ask = subparsers.add_parser(
        "ask", help="answer natural-language questions over the trace store")
    _add_session_arguments(ask)
    ask.add_argument("questions", nargs="*", metavar="QUESTION",
                     help="question(s) to answer; omit to read stdin lines")
    ask.add_argument("--backend", default="gpt-4o",
                     help="LLM backend name (default: gpt-4o)")
    ask.add_argument("--prompting",
                     choices=["zero_shot", "one_shot", "few_shot"],
                     default="zero_shot")
    ask.add_argument("--retriever", default=None,
                     help="force one retriever instead of intent routing")
    ask.add_argument("--show-evidence", action="store_true",
                     help="print the evidence lines under each answer")
    ask.add_argument("--json", action="store_true", dest="as_json",
                     help="print the full AskResponse dict per question "
                          "(answer, provenance, plan counts, timings) as "
                          "JSON instead of prose")
    ask.add_argument("--remote", default=None, metavar="HOST:PORT",
                     help="send the questions to a running `repro serve` "
                          "instance instead of answering in-process "
                          "(session flags are ignored; the server's "
                          "session configuration applies)")
    ask.add_argument("--store-dir", default=None, metavar="DIR",
                     help="persistent trace store; traces imported with "
                          "`trace import` become nameable workloads, and "
                          "results persist across processes")
    ask.add_argument("--store-read-only", action="store_true",
                     help="mount --store-dir without write access "
                          "(serve warm results, persist nothing)")

    bench = subparsers.add_parser(
        "bench", help="benchmark every policy on every workload")
    _add_session_arguments(bench)
    bench.add_argument("--metric", choices=["miss_rate", "hit_rate", "ipc"],
                       default="miss_rate")
    bench.add_argument("--jobs", type=int, default=None,
                       help="parallel simulation workers (default: 1 = "
                            "serial for the metric table; one per CPU for "
                            "--perf)")
    bench.add_argument("--perf", action="store_true",
                       help="run the tracked perf harness (trace generation, "
                            "full vs stats-only replay, cold/parallel/warm "
                            "database builds) and write BENCH_<rev>.json")
    bench.add_argument("--quick", action="store_true",
                       help="with --perf: shorter traces and single repeats "
                            "(CI smoke mode)")
    bench.add_argument("--perf-output", default=None, metavar="PATH",
                       help="with --perf: where to write the JSON report "
                            "(default: BENCH_<rev>.json in the cwd)")
    bench.add_argument("--compare", default=None, metavar="OLD_JSON",
                       help="with --perf: print per-timing deltas vs a "
                            "previous BENCH_<rev>.json report "
                            "(name, old/new ms, ratio)")
    bench.add_argument("--store-dir", default=None, metavar="DIR",
                       help="with --perf: directory for the warm-start "
                            "section's store, kept afterwards e.g. for CI "
                            "artifact upload. WIPED and repopulated by the "
                            "benchmark — do not point it at a store you "
                            "want to keep (default: a temporary directory)")

    experiment = subparsers.add_parser(
        "experiment",
        help="declarative sweep grids: compile, execute and report "
             "workloads x policies x configs experiments")
    experiment_sub = experiment.add_subparsers(dest="experiment_command",
                                               required=True)

    experiment_run = experiment_sub.add_parser(
        "run",
        help="compile a grid into one merged job plan and execute it",
        description="Compile a workloads x policies x configs x details x "
                    "trace-lengths x seeds grid into one deduplicated job "
                    "plan, execute it (duplicate cells simulate once; warm "
                    "store cells simulate zero times), and print the cell "
                    "table.")
    experiment_run.add_argument(
        "--workloads", type=_csv, default=None,
        help="comma-separated workload names "
             f"(default: {','.join(DEFAULT_WORKLOADS)})")
    experiment_run.add_argument(
        "--policies", type=_csv, default=None,
        help="comma-separated policy names "
             f"(default: {','.join(DEFAULT_POLICIES)})")
    experiment_run.add_argument(
        "--configs", type=_csv, default=["small"],
        help="comma-separated hierarchy configuration names; the grid "
             "sweeps all of them (default: small; available: "
             f"{','.join(sorted(CONFIGS))})")
    experiment_run.add_argument(
        "--mode", choices=["llc_only", "hierarchy"], default="llc_only",
        help="simulation mode (default: llc_only)")
    experiment_run.add_argument(
        "--details", type=_csv, default=["full"],
        help="engine detail levels to sweep: full,stats (default: full)")
    experiment_run.add_argument(
        "--accesses", type=_csv_int, default=[20000],
        help="comma-separated trace lengths (default: 20000)")
    experiment_run.add_argument(
        "--seeds", type=_csv_int, default=[0],
        help="comma-separated workload seeds (default: 0)")
    experiment_run.add_argument(
        "--metrics", type=_csv, default=["miss_rate", "hit_rate", "ipc"],
        help="metrics to report (default: miss_rate,hit_rate,ipc)")
    experiment_run.add_argument(
        "--baseline", default=None, metavar="POLICY",
        help="baseline policy: its cells join the grid (deduplicated if "
             "already listed) and the report prints per-cell deltas")
    experiment_run.add_argument(
        "--jobs", type=int, default=None,
        help="parallel simulation workers (default: 1)")
    experiment_run.add_argument(
        "--store-dir", default=None, metavar="DIR",
        help="persistent trace store: warm cells skip simulation across "
             "processes, and the result is saved under the spec "
             "fingerprint for `experiment report`")
    experiment_run.add_argument(
        "--output", default=None, metavar="PATH",
        help="also write the ExperimentResult JSON here")
    experiment_run.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print the full ExperimentResult dict as JSON instead of "
             "the table")
    experiment_run.add_argument(
        "--remote", default=None, metavar="HOST:PORT",
        help="run the grid on a running `repro serve` instance (one round "
             "trip; cell values are identical to in-process execution)")
    experiment_run.add_argument(
        "--expect-warm", action="store_true",
        help="exit non-zero if any simulation actually ran (CI warm-store "
             "assertion)")

    experiment_report = experiment_sub.add_parser(
        "report",
        help="render a saved ExperimentResult (JSON file or store)",
        description="Render a saved experiment: pivot tables per metric, "
                    "the best policy per cell, and deltas against the "
                    "baseline policy when the spec named one.  Reads "
                    "either an `experiment run --output` JSON file or a "
                    "--store-dir (by --fingerprint; without one, lists "
                    "every stored experiment).")
    experiment_report.add_argument(
        "path", nargs="?", default=None,
        help="ExperimentResult JSON file (from `experiment run --output`)")
    experiment_report.add_argument(
        "--store-dir", default=None, metavar="DIR",
        help="trace store holding saved experiments")
    experiment_report.add_argument(
        "--fingerprint", default=None,
        help="spec fingerprint to load from the store (printed by "
             "`experiment run`; prefixes are accepted when unambiguous)")
    experiment_report.add_argument(
        "--metric", default=None,
        help="metric to tabulate (default: every metric in the spec)")
    experiment_report.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print the full ExperimentResult dict as JSON")
    experiment_report.add_argument(
        "--query", default=None, metavar="QUERY",
        help="run a declarative analytics query over the cell table "
             "instead of the pivot report: either the mini-DSL "
             "(\"select workload,policy,miss_rate where config = 'tiny' "
             "order by miss_rate desc limit 5\") or a Query.to_dict JSON "
             "object (detected by a leading '{')")
    experiment_report.add_argument(
        "--format", default="table", choices=["table", "csv"],
        dest="query_format",
        help="with --query: render the result as a fixed-width table or "
             "as CSV (default: table)")
    experiment_report.add_argument(
        "--backend", default="stdlib", dest="analytics_backend",
        help="with --query: analytics backend to execute through "
             "(stdlib or sqlite; default: stdlib)")

    serve = subparsers.add_parser(
        "serve", help="serve questions over the JSON-lines TCP protocol")
    _add_session_arguments(serve)
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=9178,
                       help="TCP port; 0 picks a free one, printed on "
                            "startup (default: 9178)")
    serve.add_argument("--backend", default="gpt-4o",
                       help="LLM backend name (default: gpt-4o)")
    serve.add_argument("--prompting",
                       choices=["zero_shot", "one_shot", "few_shot"],
                       default="zero_shot")
    serve.add_argument("--retriever", default=None,
                       help="force one retriever instead of intent routing")
    serve.add_argument("--jobs", type=int, default=None,
                       help="parallel simulation workers for the database "
                            "build (default: 1)")
    serve.add_argument("--store-dir", default=None, metavar="DIR",
                       help="persistent trace store backing the session "
                            "(warm restarts)")
    serve.add_argument("--store-read-only", action="store_true",
                       help="mount --store-dir without write access — the "
                            "replica configuration: many servers share one "
                            "warm corpus a single writer maintains")
    serve.add_argument("--no-warm-up", action="store_true",
                       help="skip the eager database build (first request "
                            "pays for it instead)")
    serve.add_argument("--max-in-flight", type=int, default=32,
                       help="admission-control cap: requests beyond this "
                            "many in flight are shed with a structured "
                            "'overloaded' error (default: 32)")

    store = subparsers.add_parser(
        "store", help="manage the persistent on-disk simulation store")
    store_sub = store.add_subparsers(dest="store_command", required=True)

    store_save = store_sub.add_parser(
        "save", help="build the database and persist every entry")
    _add_session_arguments(store_save)
    store_save.add_argument("--dir", required=True, metavar="DIR",
                            help="store directory (created if missing)")
    store_save.add_argument("--jobs", type=int, default=None,
                            help="parallel simulation workers (default: 1)")

    store_load = store_sub.add_parser(
        "load", help="rebuild the database from the store (warm start)")
    _add_session_arguments(store_load)
    store_load.add_argument("--dir", required=True, metavar="DIR",
                            help="store directory to load from")
    store_load.add_argument("--expect-warm", action="store_true",
                            help="exit non-zero if any simulation actually "
                                 "ran (CI warm-start assertion)")

    store_info = store_sub.add_parser(
        "info", help="print store schema, record counts and size")
    store_info.add_argument("--dir", required=True, metavar="DIR")

    store_verify = store_sub.add_parser(
        "verify", help="deep-check every record (payloads and filename "
                       "digests); --repair quarantines damage")
    store_verify.add_argument("--dir", required=True, metavar="DIR")
    store_verify.add_argument("--repair", action="store_true",
                              help="quarantine corrupt records, delete "
                                   "stale temp files, rebuild a corrupt "
                                   "manifest and heal the index")
    store_verify.add_argument("--shard", action="append", default=None,
                              metavar="XX", dest="shards",
                              help="restrict the deep check to this shard "
                                   "prefix (repeatable); the index audit "
                                   "runs only on full verifies")
    store_verify.add_argument("--temp-max-age", type=float, default=None,
                              metavar="SECONDS",
                              help="treat .tmp files older than this as "
                                   "stale (default: 600)")

    store_gc = store_sub.add_parser(
        "gc", help="drop corrupt/foreign records; optionally prune by age")
    store_gc.add_argument("--dir", required=True, metavar="DIR")
    store_gc.add_argument("--max-records", type=int, default=None,
                          help="keep at most this many records "
                               "(oldest pruned first)")
    store_gc.add_argument("--temp-max-age", type=float, default=None,
                          metavar="SECONDS",
                          help="sweep .tmp files older than this (default: "
                               "600; fresher ones are presumed to be a "
                               "concurrent writer's in-progress write)")

    store_migrate = store_sub.add_parser(
        "migrate", help="re-shard a flat-layout store in place and build "
                        "its index (record bytes untouched — warm reads "
                        "stay byte-identical)")
    store_migrate.add_argument("--dir", required=True, metavar="DIR")

    store_reindex = store_sub.add_parser(
        "reindex", help="rebuild the append-only index from the object "
                        "headers alone (byte-identical to a compacted "
                        "live index)")
    store_reindex.add_argument("--dir", required=True, metavar="DIR")

    store_compact = store_sub.add_parser(
        "compact", help="rewrite the index in canonical form (drops "
                        "duplicate/torn/stale lines without opening any "
                        "record file)")
    store_compact.add_argument("--dir", required=True, metavar="DIR")

    trace = subparsers.add_parser(
        "trace",
        help="import external trace files and inspect imported traces")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    trace_import = trace_sub.add_parser(
        "import",
        help="parse a trace file and persist it into a store",
        description="Parse a text/CSV (`pc,address,is_write[,instr_gap]`) "
                    "or ChampSim-like binary trace file (either optionally "
                    "gzipped) and persist it into a trace store keyed by "
                    "content fingerprint.  The imported trace becomes a "
                    "named workload usable anywhere a synthetic one is: "
                    "simulate/ask/experiment/serve with the same "
                    "--store-dir.")
    trace_import.add_argument("path", metavar="FILE",
                              help="trace file to import")
    trace_import.add_argument("--dir", required=True, metavar="DIR",
                              help="store directory (created if missing)")
    trace_import.add_argument("--name", default=None,
                              help="workload name to register "
                                   "(default: the file stem)")
    trace_import.add_argument("--format", dest="fmt",
                              choices=["auto", "text", "champsim"],
                              default="auto",
                              help="trace file format (default: auto = "
                                   "infer from the suffix)")

    trace_list = trace_sub.add_parser(
        "list", help="list imported traces in a store (headers only)")
    trace_list.add_argument("--dir", required=True, metavar="DIR")

    trace_info = trace_sub.add_parser(
        "info", help="show one imported trace's metadata (headers only)")
    trace_info.add_argument("name", metavar="NAME_OR_FINGERPRINT",
                            help="workload name, or a content-fingerprint "
                                 "prefix")
    trace_info.add_argument("--dir", required=True, metavar="DIR")
    return parser


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------
def _cmd_simulate(args: argparse.Namespace) -> int:
    if args.list:
        if args.store_dir is not None:
            # Imported traces in the named store appear in the listing
            # beside the synthetic generators.
            import os

            from repro.tracedb.store import TraceStore
            from repro.workloads.ingest import ensure_store_traces_registered

            if not os.path.isdir(args.store_dir):
                print(f"error: no trace store at {args.store_dir!r}",
                      file=sys.stderr)
                return 1
            ensure_store_traces_registered(TraceStore(args.store_dir))
        infos = available_workload_info()
        print("workloads:")
        name_width = max(len(info["name"]) for info in infos)
        for info in infos:
            print(f"  {info['name']:<{name_width}}  [{info['kind']:<9}] "
                  f"{info['description']}")
        print("policies:  ", ", ".join(available_policies()))
        print("retrievers:", ", ".join(available_retrievers()))
        print("backends:  ", ", ".join(available_backend_names()))
        return 0
    workload = args.workload or (args.workloads
                                 or list(DEFAULT_WORKLOADS))[0]
    policy = args.policy or (args.policies or list(DEFAULT_POLICIES))[0]
    session = _make_session(args, workloads=[workload], policies=[policy])
    result = session.simulate(workload, policy)
    print(result.summary())
    stats = result.llc_stats
    print(f"  hits {stats.hits} / misses {stats.misses} "
          f"(compulsory {stats.compulsory_misses}, "
          f"capacity {stats.capacity_misses}, "
          f"conflict {stats.conflict_misses})")
    print(f"  wrong evictions: {result.wrong_evictions}; "
          f"records kept: {result.num_records}")
    return 0


def _report_remote_error(action: str, address: str,
                         error: BaseException) -> int:
    """One-line report for a failed --remote call; returns exit code 1.

    Every remote CLI path shares this so failures consistently name the
    resolved host:port, the errno (when the OS supplied one) and the
    server's structured error kind, plus a retry hint — transient
    failures (restarts, overload sheds) are expected under chaos and the
    right response is usually to retry.
    """
    from repro.serve.client import parse_address

    try:
        host, port = parse_address(address)
        where = f"{host}:{port}"
    except ValueError:
        where = repr(address)
    details = [f"server {where}"]
    number = getattr(error, "errno", None)
    if number is not None:
        details.append(f"errno {number}")
    kind = getattr(error, "kind", None)
    if kind:
        details.append(f"kind {kind}")
    print(f"error: remote {action} failed: {error} ({'; '.join(details)}). "
          f"If the server is restarting or overloaded, retrying usually "
          f"succeeds — idempotent requests already back off automatically.",
          file=sys.stderr)
    return 1


def _cmd_ask(args: argparse.Namespace) -> int:
    import json

    questions = list(args.questions)
    if not questions:
        questions = [line.strip() for line in sys.stdin if line.strip()]
    if not questions:
        print("no questions given", file=sys.stderr)
        return 2
    if args.remote is not None:
        # One batch round trip: the server merges duplicate simulation jobs
        # across the batch exactly like the in-process path.
        from repro.serve.client import RemoteClient, RemoteError
        try:
            with RemoteClient(args.remote) as client:
                responses = client.ask_batch(questions,
                                             retriever=args.retriever)
        except (OSError, ValueError, RemoteError) as error:
            # ValueError covers malformed addresses and non-JSON replies
            # (json.JSONDecodeError) from something that isn't our server.
            return _report_remote_error("ask", args.remote, error)
    else:
        session = _make_session(args, backend=args.backend,
                                prompting=args.prompting,
                                retriever=args.retriever)
        responses = session.ask_request_many(questions)
    for response in responses:
        if args.as_json:
            print(json.dumps(response.to_dict(), indent=2, sort_keys=True))
            continue
        answer = response.answer
        print(f"Q: {answer.question}")
        print(f"A: {answer.text}")
        print(f"   [category={answer.category} retriever={answer.retriever} "
              f"backend={answer.backend} quality={answer.retrieval_quality} "
              f"grounded={answer.grounded}]")
        if answer.sources:
            print(f"   sources: {', '.join(answer.sources)}")
        if args.show_evidence:
            for line in answer.evidence:
                print(f"   | {line}")
        print()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.server import CacheMindServer
    from repro.serve.service import CacheMindService

    jobs = args.jobs if args.jobs is not None else 1
    session = _make_session(args, backend=args.backend,
                            prompting=args.prompting,
                            retriever=args.retriever, jobs=jobs,
                            store_dir=args.store_dir)
    service = CacheMindService(session=session)
    if not args.no_warm_up:
        start = time.perf_counter()
        stats = service.warm_up()
        print(f"warmed up in {time.perf_counter() - start:.3f}s "
              f"({stats['misses']} simulated, {stats['hits']} cached, "
              f"{stats['store_hits']} from store)", flush=True)
    server = CacheMindServer(service, host=args.host, port=args.port,
                             max_in_flight=args.max_in_flight)
    host, port = server.address
    # The ready line is machine-parsed by smoke tests: keep its shape.
    print(f"serving CacheMind on {host}:{port} "
          f"({len(session.workloads)} workloads x "
          f"{len(session.policies)} policies, config '{args.config}', "
          f"backend {session.backend.name})", flush=True)
    print("protocol: one JSON object per line "
          '(e.g. {"op": "ask", "question": "..."}); '
          "ops: ask, batch, experiment, query, stats, health, ping",
          flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        server.close()
        service.close()
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.perf:
        return _cmd_bench_perf(args)
    jobs = args.jobs if args.jobs is not None else 1
    session = _make_session(args, jobs=jobs)
    cache_before = dict(session.simulation_cache.stats())
    build_start = time.perf_counter()
    table = session.compare_policies(metric=args.metric)
    build_seconds = time.perf_counter() - build_start
    percent = args.metric in ("miss_rate", "hit_rate")
    name_width = max(len(name) for name in table)
    print(f"{args.metric} per (workload, policy) — config '{args.config}', "
          f"{args.accesses} accesses")
    for workload, row in table.items():
        best, _rate = session.best_policy(workload, metric=args.metric)
        cells = []
        for policy, value in sorted(row.items()):
            rendered = f"{value * 100:.2f}%" if percent else f"{value:.4f}"
            marker = "*" if policy == best else " "
            cells.append(f"{policy}={rendered}{marker}")
        print(f"  {workload:<{name_width}}  " + "  ".join(cells))
    print("  (* = best policy per workload)")
    cache_after = session.simulation_cache.stats()
    simulations = len(args.workloads) * len(args.policies)
    new_hits = cache_after["hits"] - cache_before["hits"]
    new_misses = cache_after["misses"] - cache_before["misses"]
    per_simulation = build_seconds / simulations if simulations else 0.0
    print(f"  built in {build_seconds:.3f}s "
          f"({per_simulation * 1000:.1f} ms/simulation, "
          f"{simulations} simulations, jobs={jobs})")
    print(f"  simulation cache: {new_hits} hits, {new_misses} misses this "
          f"build ({cache_after['hits']} hits / {cache_after['misses']} "
          f"misses process-wide)")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    if args.experiment_command == "run":
        return _cmd_experiment_run(args)
    return _cmd_experiment_report(args)


def _build_experiment_spec(args: argparse.Namespace):
    from repro.core.experiment import ExperimentSpec

    return ExperimentSpec(
        workloads=(args.workloads if args.workloads is not None
                   else list(DEFAULT_WORKLOADS)),
        policies=(args.policies if args.policies is not None
                  else list(DEFAULT_POLICIES)),
        configs=tuple(args.configs),
        mode=args.mode,
        details=tuple(args.details),
        num_accesses=tuple(args.accesses),
        seeds=tuple(args.seeds),
        metrics=tuple(args.metrics),
        baseline_policy=args.baseline,
    )


def _cell_axes_label(row) -> str:
    """``axis=value`` labels for one derived-view row (every grid axis
    except the policy the view singles out)."""
    from repro.core.experiment import AXES

    return " ".join(f"{axis}={row[axis]}" for axis in AXES
                    if axis != "policy")


def _print_experiment(result, metric: str = None) -> None:
    print(result.summary())
    counters = result.counters
    execute = result.timings.get("execute", 0.0)
    if execute > 0:
        print(f"  {len(result) / execute:.1f} cells/s "
              f"({counters.get('duplicate_jobs', 0)} duplicate cells "
              f"merged before execution)")
    metrics = [metric] if metric else list(result.spec.metrics)
    for name in metrics:
        print(result.format_table(name))
    if result.spec.baseline_policy is not None:
        baseline = result.spec.baseline_policy
        lead = metrics[0]
        print(f"delta vs baseline '{baseline}' ({lead}):")
        for row in result.delta_vs_baseline(lead):
            print(f"  {row['policy']:<10} {_cell_axes_label(row)}  "
                  f"{row[lead]:.4f} vs {row['baseline']:.4f} "
                  f"({row['delta']:+.4f})")


def _cmd_experiment_run(args: argparse.Namespace) -> int:
    import json

    spec = _build_experiment_spec(args)
    if args.remote is not None:
        # These flags configure in-process execution; silently ignoring
        # them would strand e.g. a --store-dir the user expects to warm.
        ignored = [flag for flag, value in (("--store-dir", args.store_dir),
                                            ("--jobs", args.jobs))
                   if value is not None]
        if ignored:
            print(f"error: {', '.join(ignored)} cannot be combined with "
                  f"--remote (execution happens server-side, with the "
                  f"server's store and workers)", file=sys.stderr)
            return 2
        from repro.serve.client import RemoteClient, RemoteError
        try:
            # Wide grids take a while server-side; allow them to finish.
            with RemoteClient(args.remote, timeout=600.0) as client:
                result = client.experiment(spec)
        except (OSError, ValueError, RemoteError) as error:
            return _report_remote_error("experiment", args.remote, error)
    else:
        session = CacheMind(
            workloads=spec.workloads, policies=spec.policies,
            num_accesses=spec.num_accesses[0], config=spec.configs[0],
            mode=spec.mode, seed=spec.seeds[0],
            jobs=args.jobs if args.jobs is not None else 1,
            store_dir=args.store_dir)
        result = session.run_experiment(spec)
    if args.as_json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        _print_experiment(result)
    if args.output is not None:
        try:
            with open(args.output, "w", encoding="utf-8") as handle:
                json.dump(result.to_dict(), handle, indent=2, sort_keys=True)
                handle.write("\n")
        except OSError as error:
            print(f"error: cannot write {args.output!r}: {error}",
                  file=sys.stderr)
            return 1
        print(f"  result written to {args.output}")
    simulations = result.counters.get("simulations_run", 0)
    if args.expect_warm and simulations > 0:
        print(f"error: expected a warm run but {simulations} simulation(s) "
              f"ran", file=sys.stderr)
        return 1
    return 0


def _cmd_experiment_report(args: argparse.Namespace) -> int:
    import json
    import os

    from repro.core.experiment import ExperimentResult
    from repro.tracedb.store import TraceStore

    if (args.path is None) == (args.store_dir is None):
        print("error: pass an ExperimentResult JSON file or --store-dir "
              "(not both)", file=sys.stderr)
        return 2
    if args.path is not None:
        try:
            with open(args.path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError as error:
            print(f"error: cannot read {args.path!r}: {error}",
                  file=sys.stderr)
            return 1
        except ValueError as error:
            print(f"error: {args.path!r} is not JSON: {error}",
                  file=sys.stderr)
            return 1
        try:
            result = ExperimentResult.from_dict(payload)
        except (ValueError, TypeError, KeyError, AttributeError) as error:
            # Any JSON that is not to_dict()-shaped: wrong top-level type,
            # missing config fields, ragged columns, ...
            print(f"error: {args.path!r} is not an ExperimentResult JSON "
                  f"file: {type(error).__name__}: {error}", file=sys.stderr)
            return 1
    else:
        if not os.path.isdir(args.store_dir):
            print(f"error: no trace store at {args.store_dir!r}",
                  file=sys.stderr)
            return 1
        store = TraceStore(args.store_dir)
        if args.fingerprint is None:
            summaries = store.list_experiments()
            if not summaries:
                print(f"no stored experiments in {args.store_dir}")
                return 0
            print(f"{len(summaries)} stored experiment(s) in "
                  f"{args.store_dir}:")
            for summary in summaries:
                spec = summary["spec"]
                print(f"  {summary['fingerprint']}  "
                      f"{summary['cells']} cells  "
                      f"({len(spec.get('workloads', []))} workloads x "
                      f"{len(spec.get('policies', []))} policies x "
                      f"{len(spec.get('configs', []))} configs)")
            print("re-run with --fingerprint to render one")
            return 0
        # Header-only scan: prefix resolution never decompresses payloads.
        matches = [fingerprint
                   for fingerprint in store.experiment_fingerprints()
                   if fingerprint.startswith(args.fingerprint)]
        if not matches:
            print(f"error: no stored experiment matches "
                  f"{args.fingerprint!r}", file=sys.stderr)
            return 1
        if len(matches) > 1:
            print(f"error: fingerprint prefix {args.fingerprint!r} is "
                  f"ambiguous ({len(matches)} matches)", file=sys.stderr)
            return 1
        result = ExperimentResult.load(store, matches[0])
        if result is None:
            print(f"error: stored experiment {matches[0]} is unreadable",
                  file=sys.stderr)
            return 1
    if args.query is not None:
        return _run_report_query(result, args)
    if args.as_json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
        return 0
    _print_experiment(result, metric=args.metric)
    metric_name = args.metric or result.spec.metrics[0]
    print(f"best policy per cell ({metric_name}):")
    for row in result.best_policy_per_cell(metric_name):
        print(f"  {row['policy']:<10} {_cell_axes_label(row)}  "
              f"{row[metric_name]:.4f}")
    return 0


def _run_report_query(result, args: argparse.Namespace) -> int:
    """Execute ``experiment report --query`` through the analytics engine."""
    import json

    from repro.analytics import (
        Query,
        QuerySyntaxError,
        parse_query,
    )
    from repro.errors import UnknownNameError

    text = args.query.strip()
    try:
        if text.startswith("{"):
            query = Query.from_dict(json.loads(text))
        else:
            query = parse_query(text, table="cells")
    except (QuerySyntaxError, ValueError, KeyError, TypeError) as error:
        print(f"error: bad --query: {error}", file=sys.stderr)
        return 2
    try:
        table = result.query(query, backend=args.analytics_backend)
    except (UnknownNameError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.as_json:
        print(json.dumps({"columns": table.to_dict()}, indent=2,
                         sort_keys=True))
    elif args.query_format == "csv":
        print(table.to_csv())
    else:
        print(table.format(max_rows=len(table) or 1))
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    import os

    from repro.tracedb.store import TraceStore

    from repro.tracedb.objstore import TEMP_MAX_AGE_SECONDS

    # Read-only/maintenance commands must not conjure an empty store out of
    # a typo'd path; only save/load (which build) may create the directory.
    if (args.store_command in ("info", "gc", "verify", "migrate", "reindex",
                               "compact")
            and not os.path.isdir(args.dir)):
        print(f"error: no trace store at {args.dir!r}", file=sys.stderr)
        return 1

    if args.store_command == "info":
        info = TraceStore(args.dir).info()
        index = info["index"]
        print(f"trace store at {info['root']}")
        print(f"  schema version: {info['schema']} "
              f"(layout: {info['layout']})")
        print(f"  records: {info['records']} "
              f"({info['entries']} entries, {info['results']} results, "
              f"{info['experiments']} experiments, "
              f"{info['traces']} traces, "
              f"{info['unreadable']} unreadable, "
              f"{info['quarantined']} quarantined)")
        print(f"  shards: {len(info['shards'])} in use", end="")
        if info["shards"]:
            busiest = max(info["shards"].items(), key=lambda kv: kv[1])
            print(f" (busiest {busiest[0]}: {busiest[1]} record(s))")
        else:
            print()
        print(f"  index: {index['entries']} entr(ies) covering "
              f"{index['live_objects']} live object(s)"
              + ("" if index["present"] else " [missing — header-scan "
                                             "fallback]"))
        if (index["stale_entries"] or index["unindexed_objects"]
                or index["invalid_lines"] or index["compaction_lag"]):
            print(f"  index health: {index['stale_entries']} stale, "
                  f"{index['unindexed_objects']} unindexed, "
                  f"{index['invalid_lines']} invalid line(s), "
                  f"compaction lag {index['compaction_lag']}")
        print(f"  size: {info['total_bytes'] / 1024:.1f} KiB")
        return 0

    if args.store_command == "verify":
        # strict=False: verify must *report* whatever is on disk (including
        # a corrupt manifest) rather than auto-heal it on open; --repair is
        # the explicit healing step.
        temp_max_age = (args.temp_max_age if args.temp_max_age is not None
                        else TEMP_MAX_AGE_SECONDS)
        report = TraceStore(args.dir, strict=False).verify(
            repair=args.repair, shards=args.shards,
            temp_max_age=temp_max_age)
        by_kind = report["by_kind"]
        scope = (f" (shards {', '.join(report['shards'])})"
                 if report["shards"] else "")
        print(f"store verify: {report['root']}{scope}")
        print(f"  checked {report['checked']} record(s): {report['ok']} ok "
              f"({by_kind['entry']} entries, {by_kind['result']} results, "
              f"{by_kind['experiment']} experiments, "
              f"{by_kind['trace']} traces)")
        print(f"  manifest: {report['manifest']}")
        index = report["index"]
        if index is not None:
            issues = (len(index["stale"]) + len(index["unindexed"])
                      + index["invalid_lines"])
            state = ("healed" if index["healed"]
                     else "ok" if index["present"] and not issues
                     else "missing" if not index["present"]
                     else f"{issues} issue(s)")
            print(f"  index: {state} "
                  f"({len(index['stale'])} stale, "
                  f"{len(index['unindexed'])} unindexed, "
                  f"{index['invalid_lines']} invalid line(s))")
        for label in ("corrupt", "misplaced", "foreign", "temp"):
            for name in report[label]:
                print(f"  {label}: {name}")
        if report["repaired"]:
            print(f"  repaired: quarantined {len(report['quarantined'])} "
                  f"file(s), removed {len(report['removed_temp'])} temp "
                  f"file(s)")
        if report["clean"]:
            print("  store is clean")
            return 0
        hint = ("foreign records need `store gc`" if args.repair
                else "run `python -m repro store verify --dir "
                     f"{args.dir} --repair`")
        print(f"error: store verification found problems ({hint})",
              file=sys.stderr)
        return 1

    if args.store_command == "gc":
        # strict=False: gc is the documented recovery path for a store
        # written by a different build, so it must be able to open one.
        temp_max_age = (args.temp_max_age if args.temp_max_age is not None
                        else TEMP_MAX_AGE_SECONDS)
        removed = TraceStore(args.dir, strict=False).gc(
            max_records=args.max_records, temp_max_age=temp_max_age)
        for reason, names in removed.items():
            for name in names:
                print(f"  removed ({reason}): {name}")
        total = sum(len(names) for names in removed.values())
        print(f"gc: removed {total} record(s) from {args.dir}")
        return 0

    if args.store_command == "migrate":
        layout = TraceStore.detect_layout(args.dir)
        # Opening a flat store auto-migrates; the explicit command exists
        # so operators can do it at a chosen moment (and see the stats)
        # instead of paying it on the next session's first open.
        store = TraceStore(args.dir, strict=False)
        stats = (store.migration if store.migration is not None
                 else store.migrate())
        print(f"migrate: {args.dir} ({layout} layout)")
        print(f"  moved {stats['moved']} record(s) into shards, "
              f"skipped {stats['skipped']}, indexed {stats['indexed']}"
              + (f", {stats['unreadable']} unreadable"
                 if stats.get("unreadable") else ""))
        return 0

    if args.store_command == "reindex":
        stats = TraceStore(args.dir, strict=False).reindex()
        print(f"reindex: {args.dir}: {stats['indexed']} object(s) indexed"
              + (f", {stats['unreadable']} unreadable skipped"
                 if stats["unreadable"] else ""))
        return 0

    if args.store_command == "compact":
        stats = TraceStore(args.dir, strict=False).compact_index()
        print(f"compact: {args.dir}: {stats['entries']} entr(ies) kept "
              f"({stats['dropped_stale']} stale, "
              f"{stats['dropped_duplicates']} duplicate, "
              f"{stats['dropped_invalid']} invalid line(s) dropped)")
        return 0

    # save / load share the session plumbing; each uses a private cache so
    # hit/miss counters describe exactly this command's work.
    store = TraceStore(args.dir)
    cache = SimulationCache(store=store)
    jobs = getattr(args, "jobs", None)
    session = _make_session(args, simulation_cache=cache,
                            jobs=jobs if jobs is not None else 1)
    start = time.perf_counter()
    _ = session.database
    seconds = time.perf_counter() - start
    stats = cache.stats()
    pairs = len(session.workloads) * len(session.policies)
    if args.store_command == "save":
        print(f"saved {pairs} (workload, policy) entries to {args.dir} "
              f"in {seconds:.3f}s "
              f"({stats['misses']} simulated, {stats['hits']} cached, "
              f"{store.saves} record(s) written)")
        return 0

    print(f"loaded {pairs} entries from {args.dir} in {seconds:.3f}s "
          f"({stats['store_hits']} from store, {stats['misses']} simulated)")
    if args.expect_warm and stats["misses"] > 0:
        print(f"error: expected a warm start but {stats['misses']} "
              f"simulation(s) ran", file=sys.stderr)
        return 1
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import os

    from repro.tracedb.store import TraceStore
    from repro.workloads.ingest import import_trace_file

    # list/info are read-only: a typo'd path must not conjure an empty
    # store (mirrors `store info`).
    if (args.trace_command in ("list", "info")
            and not os.path.isdir(args.dir)):
        print(f"error: no trace store at {args.dir!r}", file=sys.stderr)
        return 1

    if args.trace_command == "import":
        fmt = None if args.fmt == "auto" else args.fmt
        store = TraceStore(args.dir)
        try:
            name, meta = import_trace_file(store, args.path,
                                           name=args.name, fmt=fmt)
        except OSError as error:
            print(f"error: cannot read {args.path!r}: {error}",
                  file=sys.stderr)
            return 1
        print(f"imported '{name}' into {args.dir}")
        print(f"  {meta['accesses']} accesses, format {meta['format']}, "
              f"fingerprint {meta['fingerprint']}")
        print(f"  source: {meta['source']}")
        print(f"  reference it as a workload by name, e.g. `python -m "
              f"repro simulate --workloads {name} --store-dir {args.dir}`")
        return 0

    store = TraceStore(args.dir)
    rows = store.trace_manifest()
    if args.trace_command == "list":
        if not rows:
            print(f"no imported traces in {args.dir}")
            return 0
        print(f"{len(rows)} imported trace(s) in {args.dir}:")
        name_width = max(len(row["name"]) for row in rows)
        for row in rows:
            print(f"  {row['name']:<{name_width}}  "
                  f"{row['accesses']:>9} accesses  "
                  f"{row['format']:<8}  {row['fingerprint']}")
        return 0

    # info: match by exact name, else by fingerprint prefix.
    matches = [row for row in rows if row["name"] == args.name]
    if not matches:
        matches = [row for row in rows
                   if row["fingerprint"].startswith(args.name)]
    if not matches:
        print(f"error: no imported trace matches {args.name!r} in "
              f"{args.dir} (try `trace list --dir {args.dir}`)",
              file=sys.stderr)
        return 1
    if len(matches) > 1:
        print(f"error: {args.name!r} is ambiguous ({len(matches)} "
              f"matches)", file=sys.stderr)
        return 1
    row = matches[0]
    print(f"trace '{row['name']}'")
    print(f"  accesses:    {row['accesses']}")
    print(f"  fingerprint: {row['fingerprint']}")
    print(f"  format:      {row['format']}")
    print(f"  source:      {row['source'] or '<unknown>'}")
    print(f"  kind:        ingested (replayed verbatim; seed and "
          f"--accesses are ignored)")
    return 0


def _cmd_bench_perf(args: argparse.Namespace) -> int:
    from repro.perf import format_report, run_perf_suite, write_report
    from repro.perf.harness import BENCH_POLICIES, BENCH_WORKLOADS

    # The session defaults target the paper's evaluation; the perf defaults
    # target the hot paths (fast-path LRU, a generic policy, the oracle).
    # Explicit flags always win (None = flag omitted, see
    # _add_session_arguments).
    workloads = (tuple(args.workloads) if args.workloads is not None
                 else BENCH_WORKLOADS)
    policies = (tuple(args.policies) if args.policies is not None
                else BENCH_POLICIES)
    report = run_perf_suite(quick=args.quick,
                            workloads=workloads,
                            policies=policies,
                            config=CONFIGS[args.config],
                            mode=args.mode,
                            seed=args.seed,
                            num_accesses=args.accesses,
                            jobs=args.jobs,
                            store_dir=args.store_dir)
    print(format_report(report))
    path = write_report(report, path=args.perf_output)
    print(f"  report written to {path}")
    if args.compare:
        from repro.perf.harness import compare_reports, load_report
        try:
            previous = load_report(args.compare)
        except (OSError, ValueError) as error:
            print(f"  cannot load comparison report {args.compare}: {error}")
            return 1
        print(compare_reports(previous, report))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = {
        "simulate": _cmd_simulate,
        "ask": _cmd_ask,
        "bench": _cmd_bench,
        "experiment": _cmd_experiment,
        "store": _cmd_store,
        "serve": _cmd_serve,
        "trace": _cmd_trace,
    }[args.command]
    try:
        return handler(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly like other
        # well-behaved CLI tools.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0
    except (StoreVersionError, UnknownNameError, ValueError) as error:
        # Registry lookups and configuration validation get the one-line
        # treatment; any other exception is a genuine bug and tracebacks.
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
