"""Replacement policy interface shared by the cache simulator.

A policy sees the cache through two small value objects:

* :class:`PolicyAccess` -- the access being serviced (PC, block address,
  read/write, global access index and, when the engine runs in oracle mode,
  the index of the *next* access to the same block).
* :class:`CacheLineView` -- a read-only view of one resident line in the
  accessed set (block address, inserting PC, insertion/last-touch times and
  the line's own next-use index).

The simulator drives the policy with ``on_hit`` / ``on_fill`` / ``on_evict``
notifications, asks ``should_bypass`` before allocating on a miss, and asks
``choose_victim`` when an allocation needs a victim.  ``eviction_scores``
exposes whatever per-line priority the policy uses so the trace database can
store the ``cache_line_eviction_scores`` column from the paper's schema.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Type

from repro.errors import UnknownNameError

#: Sentinel returned by ``choose_victim`` to request bypassing the fill.
BYPASS = -1

#: Next-use index meaning "this block is never accessed again".
NEVER = 1 << 60


@dataclass
class PolicyAccess:
    """The memory access currently being serviced by the cache."""

    pc: int
    block_address: int
    is_write: bool
    access_index: int
    #: index of the next access to this block in the same cache's access
    #: stream, or :data:`NEVER`; only meaningful when the engine precomputes
    #: future knowledge (needed by Belady/Hawkeye training).
    next_use: int = NEVER
    is_prefetch: bool = False


@dataclass
class CacheLineView:
    """Read-only view of a resident cache line handed to policies."""

    way: int
    block_address: int
    pc: int
    inserted_at: int
    last_access: int
    next_use: int = NEVER
    dirty: bool = False
    valid: bool = True


class ReplacementPolicy:
    """Base class: an LRU-equivalent default with overridable hooks."""

    #: canonical lowercase name used in trace-database keys.
    name = "base"
    #: whether the policy needs next-use (oracle) information.
    requires_future = False

    def __init__(self, **kwargs):
        self.num_sets = 0
        self.num_ways = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def initialize(self, num_sets: int, num_ways: int) -> None:
        """Called once by the cache before simulation starts."""
        self.num_sets = num_sets
        self.num_ways = num_ways

    def reset(self) -> None:
        """Reset internal state (re-initialises with the stored geometry)."""
        if self.num_sets and self.num_ways:
            self.initialize(self.num_sets, self.num_ways)

    # ------------------------------------------------------------------
    # notifications
    # ------------------------------------------------------------------
    def on_hit(self, set_index: int, line: CacheLineView, access: PolicyAccess) -> None:
        """The access hit ``line``."""

    def on_fill(self, set_index: int, line: CacheLineView, access: PolicyAccess) -> None:
        """``line`` was just filled by ``access`` (after any eviction)."""

    def on_evict(self, set_index: int, line: CacheLineView, access: PolicyAccess) -> None:
        """``line`` is being evicted to make room for ``access``."""

    # ------------------------------------------------------------------
    # decisions
    # ------------------------------------------------------------------
    def should_bypass(self, set_index: int, lines: Sequence[CacheLineView],
                      access: PolicyAccess) -> bool:
        """Return True to service the miss without allocating a line."""
        return False

    def choose_victim(self, set_index: int, lines: Sequence[CacheLineView],
                      access: PolicyAccess) -> int:
        """Return the way to evict (the set is full when this is called).

        May return :data:`BYPASS` to skip allocation instead.  The default
        implementation evicts the least recently used line.
        """
        return min(lines, key=lambda line: line.last_access).way

    def eviction_scores(self, set_index: int, lines: Sequence[CacheLineView],
                        access: PolicyAccess) -> List[float]:
        """Per-line eviction priority (higher = evicted sooner).

        The default is recency age, matching the LRU victim choice.
        """
        return [float(access.access_index - line.last_access) for line in lines]

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """One-line human description used in database metadata."""
        return f"{self.name} replacement policy"

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Type[ReplacementPolicy]] = {}


def register_policy(cls: Type[ReplacementPolicy]) -> Type[ReplacementPolicy]:
    """Class decorator registering a policy under its ``name``."""
    _REGISTRY[cls.name] = cls
    return cls


def available_policies() -> List[str]:
    """Names of all registered policies."""
    _ensure_policies_imported()
    return sorted(_REGISTRY)


def get_policy(name: str, **kwargs) -> ReplacementPolicy:
    """Instantiate a registered policy by name."""
    _ensure_policies_imported()
    if name not in _REGISTRY:
        raise UnknownNameError(
            f"unknown policy {name!r}; available: {available_policies()}")
    return _REGISTRY[name](**kwargs)


def _ensure_policies_imported() -> None:
    # Importing the package registers every built-in policy exactly once.
    import repro.policies  # noqa: F401
