"""PARROT-style imitation-learned replacement policy.

PARROT (Liu et al., ICML 2020) frames cache replacement as imitation
learning: an offline model is trained to mimic Belady's eviction choices and
a lightweight predictor is deployed online.  The original uses an LSTM over
access history; this reproduction keeps the same structure with a far
smaller hypothesis class so it runs instantly:

* **training signal** — while the trace is replayed with oracle (next-use)
  annotations available to the *trainer*, every eviction decision produces an
  imitation example: the line Belady would evict is the positive class.
* **model** — a per-PC logistic scorer plus a recency feature.  The score of
  a resident line is ``w_pc[line.pc] + w_age * age_bucket``; the line with the
  highest "evict me" score is chosen.  Weights are updated with a perceptron
  step toward Belady's choice.
* **deployment** — the *decision* never looks at next-use information, only
  the learned weights, mirroring offline training followed by deployment.

Because the learned policy is PC-local, it can beat Belady on individual PCs
while losing globally — the observation discussed in section 6.3 of the
paper ("Belady vs. PARROT").
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.policies.base import (
    CacheLineView,
    NEVER,
    PolicyAccess,
    ReplacementPolicy,
    register_policy,
)


@register_policy
class ParrotPolicy(ReplacementPolicy):
    """Imitation learning of Belady with a compact PC-indexed scorer."""

    name = "parrot"
    #: the trainer consumes oracle labels while replaying the trace, exactly
    #: like PARROT's offline training pipeline; decisions never use them.
    requires_future = True

    WEIGHT_LIMIT = 64.0
    LEARNING_RATE = 1.0

    def __init__(self, train: bool = True, **kwargs):
        super().__init__(**kwargs)
        self.train = train
        self._pc_weight: Dict[int, float] = {}
        self._age_weight = [0.0, 0.5, 1.0, 2.0]

    def initialize(self, num_sets: int, num_ways: int) -> None:
        super().initialize(num_sets, num_ways)
        self._pc_weight = {}

    # ------------------------------------------------------------------
    @staticmethod
    def _age_bucket(age: int) -> int:
        if age < 32:
            return 0
        if age < 256:
            return 1
        if age < 2048:
            return 2
        return 3

    def _evict_score(self, line: CacheLineView, now: int) -> float:
        pc_component = self._pc_weight.get(line.pc, 0.0)
        age_component = self._age_weight[self._age_bucket(now - line.last_access)]
        return pc_component + age_component

    def _imitation_update(self, lines: Sequence[CacheLineView],
                          chosen_way: int, access: PolicyAccess) -> None:
        """Perceptron step toward Belady's choice for this eviction."""
        if not self.train:
            return
        oracle = max(lines, key=lambda line: line.next_use)
        if oracle.way == chosen_way:
            return
        chosen = next(line for line in lines if line.way == chosen_way)
        # Push the oracle victim's PC toward "evict me" and pull the line we
        # wrongly evicted toward "keep me".
        oracle_weight = self._pc_weight.get(oracle.pc, 0.0) + self.LEARNING_RATE
        chosen_weight = self._pc_weight.get(chosen.pc, 0.0) - self.LEARNING_RATE
        self._pc_weight[oracle.pc] = min(self.WEIGHT_LIMIT, oracle_weight)
        self._pc_weight[chosen.pc] = max(-self.WEIGHT_LIMIT, chosen_weight)

    # ------------------------------------------------------------------
    def choose_victim(self, set_index: int, lines: Sequence[CacheLineView],
                      access: PolicyAccess) -> int:
        chosen = max(lines, key=lambda line: (self._evict_score(line, access.access_index),
                                              -line.last_access))
        if any(line.next_use != NEVER or True for line in lines):
            self._imitation_update(lines, chosen.way, access)
        return chosen.way

    def eviction_scores(self, set_index: int, lines: Sequence[CacheLineView],
                        access: PolicyAccess) -> List[float]:
        return [self._evict_score(line, access.access_index) for line in lines]

    def pc_eviction_bias(self, pc: int) -> float:
        """Learned tendency of this PC's lines to be evicted (public helper)."""
        return self._pc_weight.get(pc, 0.0)

    def describe(self) -> str:
        return ("PARROT-style imitation learning: a compact PC-indexed scorer "
                "trained to mimic Belady's eviction choices; decisions use "
                "only the learned weights.")
