"""DIP: Dynamic Insertion Policy (Qureshi et al., ISCA 2007).

DIP set-duels traditional LRU insertion (new line becomes MRU) against the
Bimodal Insertion Policy (BIP: new lines are usually inserted at the LRU
position, promoting to MRU only on a later hit).  BIP protects the cache from
thrashing working sets while LRU insertion wins on recency-friendly phases.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from repro.policies.base import (
    CacheLineView,
    PolicyAccess,
    ReplacementPolicy,
    register_policy,
)
from repro.policies.dueling import SetDuelingMonitor


@register_policy
class DIPPolicy(ReplacementPolicy):
    """Set-dueling between LRU insertion and bimodal (BIP) insertion."""

    name = "dip"

    def __init__(self, bip_probability: float = 1.0 / 32.0,
                 psel_bits: int = 10, num_leader_sets: int = 32,
                 seed: int = 0, **kwargs):
        super().__init__(**kwargs)
        self.bip_probability = bip_probability
        self.psel_bits = psel_bits
        self.num_leader_sets = num_leader_sets
        self.seed = seed
        self._rng = random.Random(seed)
        # Recency stamp per (set, way); larger = more recently used.
        self._stamps: List[List[int]] = []
        self._dueling = SetDuelingMonitor(num_sets=1)

    def initialize(self, num_sets: int, num_ways: int) -> None:
        super().initialize(num_sets, num_ways)
        self._rng = random.Random(self.seed)
        self._stamps = [[0] * num_ways for _ in range(num_sets)]
        self._dueling = SetDuelingMonitor(
            num_sets=num_sets,
            num_leader_sets=min(self.num_leader_sets, max(1, num_sets // 2)),
            psel_bits=self.psel_bits,
        )

    # ------------------------------------------------------------------
    def on_hit(self, set_index: int, line: CacheLineView, access: PolicyAccess) -> None:
        self._stamps[set_index][line.way] = access.access_index + 1

    def on_fill(self, set_index: int, line: CacheLineView, access: PolicyAccess) -> None:
        self._dueling.record_miss(set_index)
        use_lru_insertion = self._dueling.use_primary(set_index)
        if use_lru_insertion or self._rng.random() < self.bip_probability:
            # MRU insertion.
            self._stamps[set_index][line.way] = access.access_index + 1
        else:
            # LRU insertion: stamp it older than everything resident.
            resident = [self._stamps[set_index][w] for w in range(self.num_ways)]
            self._stamps[set_index][line.way] = min(resident) - 1

    def choose_victim(self, set_index: int, lines: Sequence[CacheLineView],
                      access: PolicyAccess) -> int:
        stamps = self._stamps[set_index]
        return min(lines, key=lambda line: stamps[line.way]).way

    def eviction_scores(self, set_index: int, lines: Sequence[CacheLineView],
                        access: PolicyAccess) -> List[float]:
        stamps = self._stamps[set_index]
        newest = max(stamps[line.way] for line in lines) if lines else 0
        return [float(newest - stamps[line.way]) for line in lines]

    def describe(self) -> str:
        return ("DIP: dynamic insertion policy set-dueling LRU insertion "
                "against bimodal insertion to survive thrashing phases.")
