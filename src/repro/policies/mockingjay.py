"""Mockingjay replacement policy (Shah, Jain & Lin, HPCA 2022).

Mockingjay approximates Belady's MIN by predicting the *reuse distance* of
each line with a PC-indexed reuse-distance predictor (RDP) and evicting the
line with the largest estimated time of reuse (ETR).  The implementation
follows the paper's structure:

* the RDP maps a PC signature to a predicted reuse distance, updated with a
  temporal-difference-style step from observed reuse distances (on hits) and
  from "never reused before eviction" outcomes (large penalty);
* each resident line carries ``etr = predicted_reuse_distance - elapsed``;
  the victim is the line with the largest ETR (most remote predicted reuse);
* a scan/no-reuse prediction (very large predicted distance) can trigger
  bypass.

The Mockingjay use case in section 6.3 of the CacheMind paper restricts RDP
*training* to a set of "stable" PCs (low ETR variance identified through
CacheMind); pass ``stable_pcs`` to reproduce that intervention.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.policies.base import (
    CacheLineView,
    PolicyAccess,
    ReplacementPolicy,
    register_policy,
)


@register_policy
class MockingjayPolicy(ReplacementPolicy):
    """ETR-ordered eviction driven by a PC-indexed reuse-distance predictor."""

    name = "mockingjay"

    #: predicted distance assigned to PCs never observed to reuse.
    INFINITE_DISTANCE = 1 << 20

    def __init__(self, learning_rate: float = 0.2,
                 stable_pcs: Optional[Iterable[int]] = None,
                 allow_bypass: bool = False,
                 bypass_distance: int = 1 << 16, **kwargs):
        super().__init__(**kwargs)
        self.learning_rate = learning_rate
        self.stable_pcs: Optional[Set[int]] = set(stable_pcs) if stable_pcs is not None else None
        self.allow_bypass = allow_bypass
        self.bypass_distance = bypass_distance
        # PC signature -> predicted reuse distance (in set accesses).
        self._rdp: Dict[int, float] = {}
        # Per (set, way) bookkeeping: inserting PC, last touch time, reused?
        self._line_pc: List[List[int]] = []
        self._line_last_touch: List[List[int]] = []
        self._line_reused: List[List[bool]] = []

    def initialize(self, num_sets: int, num_ways: int) -> None:
        super().initialize(num_sets, num_ways)
        self._rdp = {}
        self._line_pc = [[0] * num_ways for _ in range(num_sets)]
        self._line_last_touch = [[0] * num_ways for _ in range(num_sets)]
        self._line_reused = [[False] * num_ways for _ in range(num_sets)]

    # ------------------------------------------------------------------
    # reuse-distance predictor
    # ------------------------------------------------------------------
    def _signature(self, pc: int) -> int:
        return (pc ^ (pc >> 11)) & 0x7FF

    def predicted_distance(self, pc: int) -> float:
        """Current RDP prediction for a PC (public helper for analyses)."""
        return self._rdp.get(self._signature(pc), float(self.INFINITE_DISTANCE // 4))

    def _trainable(self, pc: int) -> bool:
        return self.stable_pcs is None or pc in self.stable_pcs

    def _train(self, pc: int, observed_distance: float) -> None:
        if not self._trainable(pc):
            return
        signature = self._signature(pc)
        current = self._rdp.get(signature, observed_distance)
        updated = current + self.learning_rate * (observed_distance - current)
        self._rdp[signature] = updated

    # ------------------------------------------------------------------
    # ETR computation
    # ------------------------------------------------------------------
    def estimated_time_remaining(self, line: CacheLineView, now: int) -> float:
        elapsed = now - line.last_access
        return self.predicted_distance(line.pc) - elapsed

    # ------------------------------------------------------------------
    # policy interface
    # ------------------------------------------------------------------
    def on_hit(self, set_index: int, line: CacheLineView, access: PolicyAccess) -> None:
        observed = access.access_index - self._line_last_touch[set_index][line.way]
        trainee = self._line_pc[set_index][line.way]
        self._train(trainee, float(observed))
        self._line_pc[set_index][line.way] = access.pc
        self._line_last_touch[set_index][line.way] = access.access_index
        self._line_reused[set_index][line.way] = True

    def on_fill(self, set_index: int, line: CacheLineView, access: PolicyAccess) -> None:
        self._line_pc[set_index][line.way] = access.pc
        self._line_last_touch[set_index][line.way] = access.access_index
        self._line_reused[set_index][line.way] = False

    def on_evict(self, set_index: int, line: CacheLineView, access: PolicyAccess) -> None:
        if not self._line_reused[set_index][line.way]:
            # Evicted without reuse: push the inserting PC's prediction out.
            trainee = self._line_pc[set_index][line.way]
            elapsed = access.access_index - self._line_last_touch[set_index][line.way]
            self._train(trainee, float(max(elapsed * 4, 1024)))

    def should_bypass(self, set_index: int, lines: Sequence[CacheLineView],
                      access: PolicyAccess) -> bool:
        if not self.allow_bypass:
            return False
        if len(lines) < self.num_ways:
            return False
        return self.predicted_distance(access.pc) >= self.bypass_distance

    def choose_victim(self, set_index: int, lines: Sequence[CacheLineView],
                      access: PolicyAccess) -> int:
        now = access.access_index
        return max(lines, key=lambda line: (self.estimated_time_remaining(line, now),
                                            -line.last_access)).way

    def eviction_scores(self, set_index: int, lines: Sequence[CacheLineView],
                        access: PolicyAccess) -> List[float]:
        now = access.access_index
        return [self.estimated_time_remaining(line, now) for line in lines]

    def describe(self) -> str:
        suffix = ""
        if self.stable_pcs is not None:
            suffix = f" (RDP trained only on {len(self.stable_pcs)} stable PCs)"
        return ("Mockingjay: PC-indexed reuse-distance prediction with "
                "estimated-time-of-reuse eviction, approximating Belady's "
                "ordering" + suffix + ".")
