"""Belady's optimal (OPT/MIN) replacement policy.

Belady evicts the resident line whose next use lies farthest in the future;
it is an offline oracle and defines the hit-rate upper bound.  The simulation
engine precomputes, for every access, the index of the next access to the
same block in the cache's access stream; the cache keeps that value up to
date on each line, so the policy only has to compare ``next_use`` fields.

An optional bypass mode skips allocation entirely when the incoming block's
next use is farther away than every resident line's next use (inserting it
could not possibly help), which matches the "OPT with bypass" variant used
by several learned-policy papers.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.policies.base import (
    BYPASS,
    CacheLineView,
    NEVER,
    PolicyAccess,
    ReplacementPolicy,
    register_policy,
)


@register_policy
class BeladyPolicy(ReplacementPolicy):
    """Offline optimal replacement (farthest next use is evicted)."""

    name = "belady"
    requires_future = True

    def __init__(self, allow_bypass: bool = False, **kwargs):
        super().__init__(**kwargs)
        self.allow_bypass = allow_bypass

    def should_bypass(self, set_index: int, lines: Sequence[CacheLineView],
                      access: PolicyAccess) -> bool:
        if not self.allow_bypass:
            return False
        if len(lines) < self.num_ways:
            return False
        if access.next_use == NEVER:
            return True
        farthest_resident = max(line.next_use for line in lines)
        return access.next_use > farthest_resident

    def choose_victim(self, set_index: int, lines: Sequence[CacheLineView],
                      access: PolicyAccess) -> int:
        return max(lines, key=lambda line: line.next_use).way

    def eviction_scores(self, set_index: int, lines: Sequence[CacheLineView],
                        access: PolicyAccess) -> List[float]:
        scores = []
        for line in lines:
            if line.next_use >= NEVER:
                scores.append(float(NEVER))
            else:
                scores.append(float(line.next_use - access.access_index))
        return scores

    def describe(self) -> str:
        return ("Belady's optimal (OPT/MIN): an offline oracle that evicts "
                "the line whose next use is farthest in the future; it upper "
                "bounds the achievable hit rate.")
