"""Baseline replacement policies: LRU, FIFO, Random and tree PLRU."""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.policies.base import (
    CacheLineView,
    PolicyAccess,
    ReplacementPolicy,
    register_policy,
)


@register_policy
class LRUPolicy(ReplacementPolicy):
    """Least Recently Used: evict the line untouched for the longest time."""

    name = "lru"

    def choose_victim(self, set_index: int, lines: Sequence[CacheLineView],
                      access: PolicyAccess) -> int:
        return min(lines, key=lambda line: line.last_access).way

    def eviction_scores(self, set_index: int, lines: Sequence[CacheLineView],
                        access: PolicyAccess) -> List[float]:
        return [float(access.access_index - line.last_access) for line in lines]

    def describe(self) -> str:
        return ("LRU (Least Recently Used): evicts the line that has gone "
                "unused for the longest time; works well for temporal reuse "
                "but thrashes on scans.")


@register_policy
class FIFOPolicy(ReplacementPolicy):
    """First-In First-Out: evict the oldest inserted line regardless of hits."""

    name = "fifo"

    def choose_victim(self, set_index: int, lines: Sequence[CacheLineView],
                      access: PolicyAccess) -> int:
        return min(lines, key=lambda line: line.inserted_at).way

    def eviction_scores(self, set_index: int, lines: Sequence[CacheLineView],
                        access: PolicyAccess) -> List[float]:
        return [float(access.access_index - line.inserted_at) for line in lines]

    def describe(self) -> str:
        return "FIFO: evicts the line that was inserted earliest."


@register_policy
class RandomPolicy(ReplacementPolicy):
    """Uniform random victim selection (deterministic given the seed)."""

    name = "random"

    def __init__(self, seed: int = 0, **kwargs):
        super().__init__(**kwargs)
        self.seed = seed
        self._rng = random.Random(seed)

    def initialize(self, num_sets: int, num_ways: int) -> None:
        super().initialize(num_sets, num_ways)
        self._rng = random.Random(self.seed)

    def choose_victim(self, set_index: int, lines: Sequence[CacheLineView],
                      access: PolicyAccess) -> int:
        return self._rng.choice(list(lines)).way

    def eviction_scores(self, set_index: int, lines: Sequence[CacheLineView],
                        access: PolicyAccess) -> List[float]:
        return [1.0 for _line in lines]

    def describe(self) -> str:
        return "Random: evicts a uniformly random resident line."


@register_policy
class PLRUPolicy(ReplacementPolicy):
    """Binary-tree pseudo-LRU, the common hardware approximation of LRU."""

    name = "plru"

    def initialize(self, num_sets: int, num_ways: int) -> None:
        super().initialize(num_sets, num_ways)
        if num_ways & (num_ways - 1):
            raise ValueError("PLRU requires a power-of-two associativity")
        # One bit per internal tree node, per set.
        self._bits = [[0] * max(1, num_ways - 1) for _ in range(num_sets)]

    def _touch(self, set_index: int, way: int) -> None:
        """Flip tree bits along the path to ``way`` so it becomes MRU."""
        bits = self._bits[set_index]
        node = 0
        width = self.num_ways
        low = 0
        while width > 1:
            half = width // 2
            if way < low + half:
                bits[node] = 1  # point away from the left half
                node = 2 * node + 1
            else:
                bits[node] = 0  # point away from the right half
                node = 2 * node + 2
                low += half
            width = half

    def _victim_way(self, set_index: int) -> int:
        bits = self._bits[set_index]
        node = 0
        width = self.num_ways
        low = 0
        while width > 1:
            half = width // 2
            if bits[node] == 0:
                node = 2 * node + 1
            else:
                node = 2 * node + 2
                low += half
            width = half
        return low

    def on_hit(self, set_index: int, line: CacheLineView, access: PolicyAccess) -> None:
        self._touch(set_index, line.way)

    def on_fill(self, set_index: int, line: CacheLineView, access: PolicyAccess) -> None:
        self._touch(set_index, line.way)

    def choose_victim(self, set_index: int, lines: Sequence[CacheLineView],
                      access: PolicyAccess) -> int:
        victim = self._victim_way(set_index)
        valid_ways = {line.way for line in lines}
        if victim in valid_ways:
            return victim
        # Tree points at an invalid way (should not happen once the set is
        # full); fall back to LRU among the views.
        return min(lines, key=lambda line: line.last_access).way

    def eviction_scores(self, set_index: int, lines: Sequence[CacheLineView],
                        access: PolicyAccess) -> List[float]:
        victim = self._victim_way(set_index)
        return [1.0 if line.way == victim else 0.0 for line in lines]

    def describe(self) -> str:
        return "Tree PLRU: binary-tree pseudo-LRU approximation used in hardware."
