"""Set-dueling monitor shared by DIP and DRRIP.

Set dueling (Qureshi et al., ISCA 2007) dedicates a small number of "leader"
sets to each of two competing insertion policies and lets the remaining
"follower" sets adopt whichever leader group currently misses less, tracked
by a saturating policy-selection (PSEL) counter.
"""

from __future__ import annotations

from typing import List


class SetDuelingMonitor:
    """Tracks leader sets and the PSEL counter for two competing policies.

    ``use_primary(set_index)`` tells the caller which insertion behaviour to
    apply for a given set; ``record_miss(set_index)`` must be called on every
    miss so leader sets can steer the PSEL counter.
    """

    def __init__(self, num_sets: int, num_leader_sets: int = 32,
                 psel_bits: int = 10):
        if num_sets <= 0:
            raise ValueError("num_sets must be positive")
        self.num_sets = num_sets
        self.num_leader_sets = max(1, min(num_leader_sets, num_sets // 2 or 1))
        self.psel_max = (1 << psel_bits) - 1
        self.psel = self.psel_max // 2
        self._primary_leaders = set()
        self._secondary_leaders = set()
        self._assign_leaders()

    def _assign_leaders(self) -> None:
        """Spread the two leader groups evenly across the index space."""
        stride = max(1, self.num_sets // (2 * self.num_leader_sets))
        index = 0
        for _ in range(self.num_leader_sets):
            self._primary_leaders.add(index % self.num_sets)
            index += stride
            self._secondary_leaders.add(index % self.num_sets)
            index += stride
        # Never let a set lead both groups (possible only for tiny caches).
        self._secondary_leaders -= self._primary_leaders

    # ------------------------------------------------------------------
    def is_primary_leader(self, set_index: int) -> bool:
        return set_index in self._primary_leaders

    def is_secondary_leader(self, set_index: int) -> bool:
        return set_index in self._secondary_leaders

    def leader_sets(self) -> List[int]:
        return sorted(self._primary_leaders | self._secondary_leaders)

    def record_miss(self, set_index: int) -> None:
        """A miss in a leader set votes against that leader's policy."""
        if set_index in self._primary_leaders:
            self.psel = min(self.psel_max, self.psel + 1)
        elif set_index in self._secondary_leaders:
            self.psel = max(0, self.psel - 1)

    def use_primary(self, set_index: int) -> bool:
        """Which policy should this set use for the current fill?"""
        if set_index in self._primary_leaders:
            return True
        if set_index in self._secondary_leaders:
            return False
        # Followers pick the leader group with fewer misses: a high PSEL
        # means the primary leaders missed more, so follow the secondary.
        return self.psel < (self.psel_max + 1) // 2
