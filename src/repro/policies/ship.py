"""SHiP: Signature-based Hit Predictor (Wu et al., MICRO 2011).

SHiP augments RRIP with a table of saturating counters indexed by a program
signature (here: a hash of the inserting PC).  When a line inserted by a
signature is evicted without being re-referenced, the signature's counter is
decremented; when a line hits, it is incremented.  Signatures whose counter
is zero are predicted dead and inserted with a distant re-reference interval
so they age out quickly.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.policies.base import (
    CacheLineView,
    PolicyAccess,
    ReplacementPolicy,
    register_policy,
)


@register_policy
class SHiPPolicy(ReplacementPolicy):
    """RRIP with PC-signature based re-reference prediction (SHiP-PC)."""

    name = "ship"

    def __init__(self, rrpv_bits: int = 2, signature_bits: int = 12,
                 counter_bits: int = 3, **kwargs):
        super().__init__(**kwargs)
        self.rrpv_bits = rrpv_bits
        self.max_rrpv = (1 << rrpv_bits) - 1
        self.signature_bits = signature_bits
        self.signature_mask = (1 << signature_bits) - 1
        self.counter_max = (1 << counter_bits) - 1
        # Signature History Counter Table (SHCT).
        self._shct: Dict[int, int] = {}
        self._rrpv: List[List[int]] = []
        # Per (set, way): inserting signature and whether the line was reused.
        self._line_signature: List[List[int]] = []
        self._line_reused: List[List[bool]] = []

    def initialize(self, num_sets: int, num_ways: int) -> None:
        super().initialize(num_sets, num_ways)
        self._shct = {}
        self._rrpv = [[self.max_rrpv] * num_ways for _ in range(num_sets)]
        self._line_signature = [[0] * num_ways for _ in range(num_sets)]
        self._line_reused = [[False] * num_ways for _ in range(num_sets)]

    # ------------------------------------------------------------------
    def signature(self, pc: int) -> int:
        """Fold the PC into a small signature (simple xor fold)."""
        folded = pc ^ (pc >> self.signature_bits) ^ (pc >> (2 * self.signature_bits))
        return folded & self.signature_mask

    def _counter(self, signature: int) -> int:
        return self._shct.get(signature, self.counter_max // 2)

    # ------------------------------------------------------------------
    def on_hit(self, set_index: int, line: CacheLineView, access: PolicyAccess) -> None:
        self._rrpv[set_index][line.way] = 0
        self._line_reused[set_index][line.way] = True
        signature = self._line_signature[set_index][line.way]
        self._shct[signature] = min(self.counter_max, self._counter(signature) + 1)

    def on_evict(self, set_index: int, line: CacheLineView, access: PolicyAccess) -> None:
        if not self._line_reused[set_index][line.way]:
            signature = self._line_signature[set_index][line.way]
            self._shct[signature] = max(0, self._counter(signature) - 1)

    def on_fill(self, set_index: int, line: CacheLineView, access: PolicyAccess) -> None:
        signature = self.signature(access.pc)
        self._line_signature[set_index][line.way] = signature
        self._line_reused[set_index][line.way] = False
        if self._counter(signature) == 0:
            self._rrpv[set_index][line.way] = self.max_rrpv
        else:
            self._rrpv[set_index][line.way] = self.max_rrpv - 1

    def choose_victim(self, set_index: int, lines: Sequence[CacheLineView],
                      access: PolicyAccess) -> int:
        rrpv = self._rrpv[set_index]
        while True:
            for line in lines:
                if rrpv[line.way] >= self.max_rrpv:
                    return line.way
            for line in lines:
                rrpv[line.way] = min(self.max_rrpv, rrpv[line.way] + 1)

    def eviction_scores(self, set_index: int, lines: Sequence[CacheLineView],
                        access: PolicyAccess) -> List[float]:
        rrpv = self._rrpv[set_index]
        return [float(rrpv[line.way]) for line in lines]

    def predicted_dead(self, pc: int) -> bool:
        """Whether insertions from this PC are currently predicted dead."""
        return self._counter(self.signature(pc)) == 0

    def describe(self) -> str:
        return ("SHiP: signature-based hit prediction; PCs whose lines are "
                "evicted without reuse are inserted with distant re-reference "
                "so scans and dead blocks age out quickly.")
