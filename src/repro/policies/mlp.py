"""MLP / hashed-perceptron reuse-prediction policy.

The paper adds "a Multi-Layer Perceptron (MLP) based replacement policy" to
the PARROT framework, in the spirit of multiperspective reuse prediction
(Jiménez & Teran, MICRO 2017) and perceptron-based predictors.  The policy
here follows the hashed-perceptron recipe:

* several feature tables (folded PC, PC shifted, block-address bits, a
  recency bucket) each hold small integer weights;
* the prediction for a line is the sum of the weights selected by its
  features — positive means "will be reused soon";
* training happens on hits (reinforce reuse) and on evictions of lines that
  were never re-referenced (reinforce no-reuse), with a margin threshold as
  in perceptron branch predictors.

Victim selection evicts the line with the lowest predicted reuse score;
insertions from strongly negative PCs may optionally be bypassed.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.policies.base import (
    CacheLineView,
    PolicyAccess,
    ReplacementPolicy,
    register_policy,
)


@register_policy
class MLPPolicy(ReplacementPolicy):
    """Hashed-perceptron reuse predictor driving victim selection."""

    name = "mlp"

    #: feature table sizes (entries) — kept small like hardware budgets.
    TABLE_SIZE = 2048
    WEIGHT_MAX = 31
    WEIGHT_MIN = -32
    TRAIN_MARGIN = 8

    def __init__(self, allow_bypass: bool = False, bypass_threshold: int = -24,
                 **kwargs):
        super().__init__(**kwargs)
        self.allow_bypass = allow_bypass
        self.bypass_threshold = bypass_threshold
        self._tables: List[Dict[int, int]] = [dict() for _ in range(4)]
        # Per (set, way): the feature vector captured at fill time and a
        # reuse flag used for training on eviction.
        self._line_features: List[List[Tuple[int, ...]]] = []
        self._line_reused: List[List[bool]] = []
        self._line_score: List[List[float]] = []

    def initialize(self, num_sets: int, num_ways: int) -> None:
        super().initialize(num_sets, num_ways)
        self._tables = [dict() for _ in range(4)]
        self._line_features = [[(0, 0, 0, 0)] * num_ways for _ in range(num_sets)]
        self._line_reused = [[False] * num_ways for _ in range(num_sets)]
        self._line_score = [[0.0] * num_ways for _ in range(num_sets)]

    # ------------------------------------------------------------------
    # features / prediction
    # ------------------------------------------------------------------
    def _features(self, pc: int, block_address: int, recency_bucket: int) -> Tuple[int, ...]:
        return (
            (pc ^ (pc >> 11)) % self.TABLE_SIZE,
            ((pc >> 4) ^ (pc >> 17)) % self.TABLE_SIZE,
            (block_address ^ (block_address >> 9)) % self.TABLE_SIZE,
            (recency_bucket * 977 + (pc & 0xFF)) % self.TABLE_SIZE,
        )

    def _predict(self, features: Tuple[int, ...]) -> int:
        return sum(table.get(index, 0) for table, index in zip(self._tables, features))

    def _train(self, features: Tuple[int, ...], reused: bool) -> None:
        prediction = self._predict(features)
        if reused and prediction > self.TRAIN_MARGIN:
            return
        if not reused and prediction < -self.TRAIN_MARGIN:
            return
        delta = 1 if reused else -1
        for table, index in zip(self._tables, features):
            weight = table.get(index, 0) + delta
            table[index] = max(self.WEIGHT_MIN, min(self.WEIGHT_MAX, weight))

    @staticmethod
    def _recency_bucket(age: int) -> int:
        if age < 16:
            return 0
        if age < 128:
            return 1
        if age < 1024:
            return 2
        return 3

    def predicted_reuse(self, pc: int, block_address: int = 0, age: int = 0) -> int:
        """Public helper: current reuse score for a (pc, address) pair."""
        return self._predict(self._features(pc, block_address, self._recency_bucket(age)))

    # ------------------------------------------------------------------
    # policy interface
    # ------------------------------------------------------------------
    def on_hit(self, set_index: int, line: CacheLineView, access: PolicyAccess) -> None:
        self._train(self._line_features[set_index][line.way], reused=True)
        self._line_reused[set_index][line.way] = True
        features = self._features(access.pc, access.block_address, 0)
        self._line_features[set_index][line.way] = features
        self._line_score[set_index][line.way] = float(self._predict(features))

    def on_fill(self, set_index: int, line: CacheLineView, access: PolicyAccess) -> None:
        features = self._features(access.pc, access.block_address, 0)
        self._line_features[set_index][line.way] = features
        self._line_reused[set_index][line.way] = False
        self._line_score[set_index][line.way] = float(self._predict(features))

    def on_evict(self, set_index: int, line: CacheLineView, access: PolicyAccess) -> None:
        if not self._line_reused[set_index][line.way]:
            self._train(self._line_features[set_index][line.way], reused=False)

    def should_bypass(self, set_index: int, lines: Sequence[CacheLineView],
                      access: PolicyAccess) -> bool:
        if not self.allow_bypass:
            return False
        if len(lines) < self.num_ways:
            return False
        score = self._predict(self._features(access.pc, access.block_address, 0))
        return score <= self.bypass_threshold

    def choose_victim(self, set_index: int, lines: Sequence[CacheLineView],
                      access: PolicyAccess) -> int:
        def line_score(line: CacheLineView) -> Tuple[float, int]:
            age = access.access_index - line.last_access
            features = self._features(line.pc, line.block_address,
                                      self._recency_bucket(age))
            # Lower predicted reuse first; break ties with older lines.
            return (float(self._predict(features)), line.last_access)

        return min(lines, key=line_score).way

    def eviction_scores(self, set_index: int, lines: Sequence[CacheLineView],
                        access: PolicyAccess) -> List[float]:
        scores = []
        for line in lines:
            age = access.access_index - line.last_access
            features = self._features(line.pc, line.block_address,
                                      self._recency_bucket(age))
            # Higher score = evicted sooner, so negate the reuse prediction.
            scores.append(-float(self._predict(features)))
        return scores

    def describe(self) -> str:
        return ("MLP/perceptron reuse predictor: hashed feature tables over "
                "PC, address bits and recency predict reuse; the least "
                "promising line is evicted.")
