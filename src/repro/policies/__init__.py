"""Cache replacement policies.

All policies implement :class:`~repro.policies.base.ReplacementPolicy` and
plug into :class:`repro.sim.cache.Cache`.  The set mirrors the policies the
paper simulates or discusses:

* baselines: LRU, FIFO, Random, PLRU (tree pseudo-LRU),
* heuristic state of the art: SRRIP, BRRIP, DRRIP (set dueling), DIP, SHiP,
* the offline oracle: Belady's OPT,
* learned policies: Hawkeye (OPTgen + PC classifier), an MLP/perceptron
  reuse predictor, a PARROT-style imitation-learned policy, and Mockingjay
  (PC-indexed reuse-distance predictor with estimated time of reuse),
* a bypass wrapper that skips insertion for a configurable set of PCs or for
  predicted dead-on-arrival blocks (the bypass use case of section 6.3).
"""

from repro.policies.base import (
    BYPASS,
    CacheLineView,
    PolicyAccess,
    ReplacementPolicy,
    available_policies,
    get_policy,
    register_policy,
)
from repro.policies.basic import FIFOPolicy, LRUPolicy, PLRUPolicy, RandomPolicy
from repro.policies.belady import BeladyPolicy
from repro.policies.rrip import BRRIPPolicy, DRRIPPolicy, SRRIPPolicy
from repro.policies.dip import DIPPolicy
from repro.policies.ship import SHiPPolicy
from repro.policies.hawkeye import HawkeyePolicy
from repro.policies.mlp import MLPPolicy
from repro.policies.parrot import ParrotPolicy
from repro.policies.mockingjay import MockingjayPolicy
from repro.policies.bypass import BypassPolicy, PCBypassFilter

__all__ = [
    "BYPASS",
    "CacheLineView",
    "PolicyAccess",
    "ReplacementPolicy",
    "available_policies",
    "get_policy",
    "register_policy",
    "LRUPolicy",
    "FIFOPolicy",
    "RandomPolicy",
    "PLRUPolicy",
    "BeladyPolicy",
    "SRRIPPolicy",
    "BRRIPPolicy",
    "DRRIPPolicy",
    "DIPPolicy",
    "SHiPPolicy",
    "HawkeyePolicy",
    "MLPPolicy",
    "ParrotPolicy",
    "MockingjayPolicy",
    "BypassPolicy",
    "PCBypassFilter",
]
