"""Bypass wrapper: skip LLC insertion for selected PCs or dead blocks.

The signature-optimisation use case in section 6.3 of the paper takes the
bypass candidates CacheMind identifies (PCs with near-zero hit rate and very
large reuse distance) and adds "a simple conditional bypass in the LRU
replacement logic that skips cache insertion for the identified PCs".
:class:`BypassPolicy` wraps any inner policy and applies exactly that check;
it can also bypass based on a learned dead-block signature table.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.policies.base import (
    CacheLineView,
    PolicyAccess,
    ReplacementPolicy,
    register_policy,
)
from repro.policies.basic import LRUPolicy


class PCBypassFilter:
    """A static list of PCs whose fills should bypass the cache."""

    def __init__(self, pcs: Iterable[int] = ()):
        self.pcs: Set[int] = set(pcs)

    def __contains__(self, pc: int) -> bool:
        return pc in self.pcs

    def __len__(self) -> int:
        return len(self.pcs)

    def add(self, pc: int) -> None:
        self.pcs.add(pc)

    def remove(self, pc: int) -> None:
        self.pcs.discard(pc)

    def as_sorted_hex(self) -> List[str]:
        return [f"0x{pc:x}" for pc in sorted(self.pcs)]


@register_policy
class BypassPolicy(ReplacementPolicy):
    """Wrap an inner policy with PC-based (and optional learned) bypassing."""

    name = "bypass"

    def __init__(self, inner: Optional[ReplacementPolicy] = None,
                 bypass_pcs: Iterable[int] = (),
                 learn_dead_blocks: bool = False,
                 dead_threshold: int = 4, **kwargs):
        super().__init__(**kwargs)
        self.inner = inner if inner is not None else LRUPolicy()
        self.filter = PCBypassFilter(bypass_pcs)
        self.learn_dead_blocks = learn_dead_blocks
        self.dead_threshold = dead_threshold
        # PC signature -> consecutive dead fills observed.
        self._dead_counts: Dict[int, int] = {}
        self._line_pc: List[List[int]] = []
        self._line_reused: List[List[bool]] = []
        self.bypassed_fills = 0

    @property
    def requires_future(self) -> bool:  # type: ignore[override]
        return self.inner.requires_future

    def initialize(self, num_sets: int, num_ways: int) -> None:
        super().initialize(num_sets, num_ways)
        self.inner.initialize(num_sets, num_ways)
        self._dead_counts = {}
        self._line_pc = [[0] * num_ways for _ in range(num_sets)]
        self._line_reused = [[False] * num_ways for _ in range(num_sets)]
        self.bypassed_fills = 0

    # ------------------------------------------------------------------
    def _signature(self, pc: int) -> int:
        return pc & 0xFFFF

    def _learned_dead(self, pc: int) -> bool:
        if not self.learn_dead_blocks:
            return False
        return self._dead_counts.get(self._signature(pc), 0) >= self.dead_threshold

    # ------------------------------------------------------------------
    def on_hit(self, set_index: int, line: CacheLineView, access: PolicyAccess) -> None:
        self._line_reused[set_index][line.way] = True
        self._dead_counts[self._signature(access.pc)] = 0
        self.inner.on_hit(set_index, line, access)

    def on_fill(self, set_index: int, line: CacheLineView, access: PolicyAccess) -> None:
        self._line_pc[set_index][line.way] = access.pc
        self._line_reused[set_index][line.way] = False
        self.inner.on_fill(set_index, line, access)

    def on_evict(self, set_index: int, line: CacheLineView, access: PolicyAccess) -> None:
        if self.learn_dead_blocks and not self._line_reused[set_index][line.way]:
            signature = self._signature(self._line_pc[set_index][line.way])
            self._dead_counts[signature] = self._dead_counts.get(signature, 0) + 1
        self.inner.on_evict(set_index, line, access)

    def should_bypass(self, set_index: int, lines: Sequence[CacheLineView],
                      access: PolicyAccess) -> bool:
        if access.pc in self.filter or self._learned_dead(access.pc):
            self.bypassed_fills += 1
            return True
        return self.inner.should_bypass(set_index, lines, access)

    def choose_victim(self, set_index: int, lines: Sequence[CacheLineView],
                      access: PolicyAccess) -> int:
        return self.inner.choose_victim(set_index, lines, access)

    def eviction_scores(self, set_index: int, lines: Sequence[CacheLineView],
                        access: PolicyAccess) -> List[float]:
        return self.inner.eviction_scores(set_index, lines, access)

    def describe(self) -> str:
        return (f"Bypass wrapper around {self.inner.name}: fills from "
                f"{len(self.filter)} listed PCs"
                + (" and learned dead-block PCs" if self.learn_dead_blocks else "")
                + " skip cache insertion.")
