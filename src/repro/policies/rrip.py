"""Re-Reference Interval Prediction policies: SRRIP, BRRIP and DRRIP.

RRIP (Jaleel et al., ISCA 2010) keeps a small saturating counter (the
re-reference prediction value, RRPV) per line:

* a line with RRPV == max is predicted to be re-referenced in the distant
  future and is the eviction victim;
* SRRIP inserts new lines with a "long" interval (max - 1) so scans age out
  quickly;
* BRRIP inserts with the distant interval most of the time and the long
  interval rarely, which resists thrashing;
* DRRIP set-duels SRRIP against BRRIP using a PSEL counter and follower sets.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.policies.base import (
    CacheLineView,
    PolicyAccess,
    ReplacementPolicy,
    register_policy,
)
from repro.policies.dueling import SetDuelingMonitor


class _RRIPBase(ReplacementPolicy):
    """Shared RRPV bookkeeping for the RRIP family."""

    def __init__(self, rrpv_bits: int = 2, **kwargs):
        super().__init__(**kwargs)
        self.rrpv_bits = rrpv_bits
        self.max_rrpv = (1 << rrpv_bits) - 1
        self._rrpv: List[List[int]] = []

    def initialize(self, num_sets: int, num_ways: int) -> None:
        super().initialize(num_sets, num_ways)
        self._rrpv = [[self.max_rrpv] * num_ways for _ in range(num_sets)]

    # hooks customised by subclasses -----------------------------------
    def insertion_rrpv(self, set_index: int, access: PolicyAccess) -> int:
        return self.max_rrpv - 1

    # policy interface ---------------------------------------------------
    def on_hit(self, set_index: int, line: CacheLineView, access: PolicyAccess) -> None:
        self._rrpv[set_index][line.way] = 0

    def on_fill(self, set_index: int, line: CacheLineView, access: PolicyAccess) -> None:
        self._rrpv[set_index][line.way] = self.insertion_rrpv(set_index, access)

    def choose_victim(self, set_index: int, lines: Sequence[CacheLineView],
                      access: PolicyAccess) -> int:
        rrpv = self._rrpv[set_index]
        while True:
            for line in lines:
                if rrpv[line.way] >= self.max_rrpv:
                    return line.way
            # Age every resident line and retry (bounded by max_rrpv rounds).
            for line in lines:
                rrpv[line.way] = min(self.max_rrpv, rrpv[line.way] + 1)

    def eviction_scores(self, set_index: int, lines: Sequence[CacheLineView],
                        access: PolicyAccess) -> List[float]:
        rrpv = self._rrpv[set_index]
        return [float(rrpv[line.way]) for line in lines]


@register_policy
class SRRIPPolicy(_RRIPBase):
    """Static RRIP: insert with a long re-reference interval."""

    name = "srrip"

    def describe(self) -> str:
        return ("SRRIP: re-reference interval prediction with static long "
                "insertion; scans age out before useful lines.")


@register_policy
class BRRIPPolicy(_RRIPBase):
    """Bimodal RRIP: mostly distant insertion, occasionally long."""

    name = "brrip"

    def __init__(self, long_insert_probability: float = 1.0 / 32.0,
                 seed: int = 0, **kwargs):
        super().__init__(**kwargs)
        self.long_insert_probability = long_insert_probability
        self._rng = random.Random(seed)

    def insertion_rrpv(self, set_index: int, access: PolicyAccess) -> int:
        if self._rng.random() < self.long_insert_probability:
            return self.max_rrpv - 1
        return self.max_rrpv

    def describe(self) -> str:
        return ("BRRIP: bimodal RRIP insertion (usually distant, rarely "
                "long) to resist thrashing working sets.")


@register_policy
class DRRIPPolicy(_RRIPBase):
    """Dynamic RRIP: set-duel SRRIP insertion against BRRIP insertion."""

    name = "drrip"

    def __init__(self, long_insert_probability: float = 1.0 / 32.0,
                 psel_bits: int = 10, num_leader_sets: int = 32,
                 seed: int = 0, **kwargs):
        super().__init__(**kwargs)
        self.long_insert_probability = long_insert_probability
        self.psel_bits = psel_bits
        self.num_leader_sets = num_leader_sets
        self.seed = seed
        self._rng = random.Random(seed)
        self._dueling: SetDuelingMonitor = SetDuelingMonitor(
            num_sets=1, num_leader_sets=1, psel_bits=psel_bits)

    def initialize(self, num_sets: int, num_ways: int) -> None:
        super().initialize(num_sets, num_ways)
        self._rng = random.Random(self.seed)
        self._dueling = SetDuelingMonitor(
            num_sets=num_sets,
            num_leader_sets=min(self.num_leader_sets, max(1, num_sets // 2)),
            psel_bits=self.psel_bits,
        )

    def insertion_rrpv(self, set_index: int, access: PolicyAccess) -> int:
        use_srrip = self._dueling.use_primary(set_index)
        if use_srrip:
            return self.max_rrpv - 1
        if self._rng.random() < self.long_insert_probability:
            return self.max_rrpv - 1
        return self.max_rrpv

    def on_fill(self, set_index: int, line: CacheLineView, access: PolicyAccess) -> None:
        # A fill means the access missed: charge the owning leader policy.
        self._dueling.record_miss(set_index)
        super().on_fill(set_index, line, access)

    def describe(self) -> str:
        return ("DRRIP: set-dueling between SRRIP and BRRIP insertion using "
                "a PSEL counter and leader sets.")
