"""Hawkeye replacement (Jain & Lin, ISCA 2016).

Hawkeye reconstructs Belady's decisions for past accesses with OPTgen and
uses them as labels to train a PC-indexed predictor: PCs whose past lines
would have been kept by OPT are "cache friendly", the rest are "cache
averse".  Friendly lines are inserted with high priority and averse lines
with distant priority; eviction prefers averse lines, falling back to the
oldest friendly line.

This implementation keeps an OPTgen occupancy vector per sampled set over a
sliding window of set accesses, which is the textbook structure; the
predictor is a table of saturating counters indexed by a folded PC.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Sequence, Tuple

from repro.policies.base import (
    CacheLineView,
    PolicyAccess,
    ReplacementPolicy,
    register_policy,
)


class OPTgen:
    """Occupancy-vector reconstruction of Belady's decisions for one set."""

    def __init__(self, num_ways: int, window: int = 128):
        self.num_ways = num_ways
        self.window = window
        # (block_address, position) of recent accesses to this set.
        self.history: Deque[Tuple[int, int]] = deque(maxlen=window)
        # occupancy[i] = number of liveness intervals covering history slot i.
        self.occupancy: Deque[int] = deque(maxlen=window)
        self.position = 0

    def access(self, block_address: int) -> Tuple[bool, bool]:
        """Record an access; return ``(known, opt_hit)``.

        ``known`` is False for the first access to a block within the window
        (no label can be produced); otherwise ``opt_hit`` says whether Belady
        would have kept the block since its previous access.
        """
        known = False
        opt_hit = False
        previous_index = None
        for index in range(len(self.history) - 1, -1, -1):
            if self.history[index][0] == block_address:
                previous_index = index
                break
        if previous_index is not None:
            known = True
            interval = list(self.occupancy)[previous_index:]
            if all(slot < self.num_ways for slot in interval):
                opt_hit = True
                for index in range(previous_index, len(self.occupancy)):
                    self.occupancy[index] += 1
        self.history.append((block_address, self.position))
        self.occupancy.append(0)
        self.position += 1
        return known, opt_hit


@register_policy
class HawkeyePolicy(ReplacementPolicy):
    """OPTgen-trained, PC-classified insertion and eviction."""

    name = "hawkeye"

    def __init__(self, counter_bits: int = 3, rrip_bits: int = 3,
                 sample_every: int = 4, optgen_window: int = 128, **kwargs):
        super().__init__(**kwargs)
        self.counter_max = (1 << counter_bits) - 1
        self.max_rrpv = (1 << rrip_bits) - 1
        self.sample_every = max(1, sample_every)
        self.optgen_window = optgen_window
        self._predictor: Dict[int, int] = {}
        self._optgen: Dict[int, OPTgen] = {}
        self._rrpv: List[List[int]] = []
        self._line_pc: List[List[int]] = []
        # PC signature of the last access to each block within sampled sets,
        # so OPT hits/misses train the PC that brought the line in.
        self._last_pc_for_block: Dict[int, int] = {}

    def initialize(self, num_sets: int, num_ways: int) -> None:
        super().initialize(num_sets, num_ways)
        self._predictor = {}
        self._optgen = {}
        self._rrpv = [[self.max_rrpv] * num_ways for _ in range(num_sets)]
        self._line_pc = [[0] * num_ways for _ in range(num_sets)]
        self._last_pc_for_block = {}

    # ------------------------------------------------------------------
    def _signature(self, pc: int) -> int:
        return (pc ^ (pc >> 13)) & 0x1FFF

    def _counter(self, pc: int) -> int:
        return self._predictor.get(self._signature(pc), self.counter_max // 2)

    def _train(self, pc: int, opt_hit: bool) -> None:
        signature = self._signature(pc)
        value = self._predictor.get(signature, self.counter_max // 2)
        if opt_hit:
            value = min(self.counter_max, value + 1)
        else:
            value = max(0, value - 1)
        self._predictor[signature] = value

    def is_friendly(self, pc: int) -> bool:
        """Whether the predictor currently classifies this PC as cache friendly."""
        return self._counter(pc) >= (self.counter_max + 1) // 2

    def _sampled(self, set_index: int) -> bool:
        return set_index % self.sample_every == 0

    def _observe(self, set_index: int, access: PolicyAccess) -> None:
        """Feed sampled sets into OPTgen and train the PC predictor."""
        if not self._sampled(set_index):
            return
        optgen = self._optgen.get(set_index)
        if optgen is None:
            optgen = OPTgen(self.num_ways, window=self.optgen_window)
            self._optgen[set_index] = optgen
        known, opt_hit = optgen.access(access.block_address)
        trainee = self._last_pc_for_block.get(access.block_address, access.pc)
        if known:
            self._train(trainee, opt_hit)
        self._last_pc_for_block[access.block_address] = access.pc

    # ------------------------------------------------------------------
    def on_hit(self, set_index: int, line: CacheLineView, access: PolicyAccess) -> None:
        self._observe(set_index, access)
        if self.is_friendly(access.pc):
            self._rrpv[set_index][line.way] = 0
        else:
            self._rrpv[set_index][line.way] = self.max_rrpv
        self._line_pc[set_index][line.way] = access.pc

    def on_fill(self, set_index: int, line: CacheLineView, access: PolicyAccess) -> None:
        self._observe(set_index, access)
        if self.is_friendly(access.pc):
            self._rrpv[set_index][line.way] = 0
        else:
            self._rrpv[set_index][line.way] = self.max_rrpv
        self._line_pc[set_index][line.way] = access.pc

    def on_evict(self, set_index: int, line: CacheLineView, access: PolicyAccess) -> None:
        # Evicting a friendly line means the predictor was too optimistic for
        # the PC that inserted it (Hawkeye's detraining on cache-averse turn).
        inserting_pc = self._line_pc[set_index][line.way]
        if self._rrpv[set_index][line.way] == 0:
            self._train(inserting_pc, opt_hit=False)

    def choose_victim(self, set_index: int, lines: Sequence[CacheLineView],
                      access: PolicyAccess) -> int:
        rrpv = self._rrpv[set_index]
        averse = [line for line in lines if rrpv[line.way] >= self.max_rrpv]
        if averse:
            return min(averse, key=lambda line: line.last_access).way
        # No averse line resident: evict the oldest friendly line.
        return min(lines, key=lambda line: line.last_access).way

    def eviction_scores(self, set_index: int, lines: Sequence[CacheLineView],
                        access: PolicyAccess) -> List[float]:
        rrpv = self._rrpv[set_index]
        return [float(rrpv[line.way]) for line in lines]

    def describe(self) -> str:
        return ("Hawkeye: reconstructs Belady's decisions with OPTgen on "
                "sampled sets and classifies PCs as cache friendly or averse "
                "to drive insertion and eviction.")
