"""Tabular-store backends that execute :class:`~repro.analytics.query.Query`.

Two implementations share one execution contract (documented on the
:class:`Query` dataclasses) and are differential-tested against each other:

``StdlibBackend``
    The default.  Registered :class:`~repro.tracedb.table.Table` objects are
    held by reference and queries execute directly over the column lists —
    no row dicts are materialised, so filtering/grouping large tables stays
    O(columns touched), not O(rows × columns).

``SqliteBackend``
    Spills registered tables into a temporary ``sqlite3`` database (stdlib,
    so no new dependencies) and compiles the same :class:`Query` objects to
    SQL.  Aggregates run as Python UDFs that accumulate ``(row, value)``
    pairs and re-sort by source row before delegating to the *same*
    :class:`~repro.tracedb.table.Column` aggregate methods the stdlib
    executor uses, so float accumulation order — and therefore every output
    bit — matches by construction.

Both backends return results in the engine's canonical value domain: booleans
become ``0``/``1`` and ``NaN`` becomes ``None`` (sqlite has neither), and
every query result carries a deterministic total row order (source row order
is the final tie-break, mirroring a hidden ``__row__`` column in sqlite).

Integers must fit in a signed 64-bit sqlite INTEGER; ``register_table``
rejects anything larger so the two backends can never silently diverge.
Non-scalar payload values (lists, dicts, ...) round-trip through the sqlite
spill as tagged JSON text — they are opaque data valid in select/passthrough
positions, and unspecified as filter/group/order/join keys.
"""

from __future__ import annotations

import abc
import json
import math
import os
import sqlite3
import tempfile
from functools import cmp_to_key
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import UnknownNameError
from ..tracedb.table import Column, Table
from .query import Aggregate, Filter, Query, as_query

_INT64_MAX = 2 ** 63
_ROW_COLUMN = "__row__"
# Non-scalar payload values (lists, dicts, ...) spill to sqlite as JSON text
# behind this tag and are decoded on the way out.  They are opaque: valid in
# select/passthrough positions, unspecified as filter/group/order/join keys.
_OPAQUE_TAG = "\x00json\x00"
# Join rows are ordered by (left __row__, right __row__); the composite
# fits int64 as long as each side stays under 2**31 rows.
_ROW_STRIDE = 2 ** 32


# ----------------------------------------------------------------------
# shared value / aggregate semantics
# ----------------------------------------------------------------------

def canonical_value(value: Any) -> Any:
    """Map a cell into the engine's canonical value domain.

    ``bool`` → ``int`` and ``NaN`` → ``None`` — the two Python scalars
    sqlite cannot represent distinctly.  Everything else passes through.
    """
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, float) and math.isnan(value):
        return None
    return value


def aggregate_values(func: str, values: Sequence[Any], q: Optional[float] = None) -> Any:
    """Apply one aggregate function to raw cell values.

    Delegates to :class:`Column` so aggregate semantics exist in exactly one
    place; both backends (stdlib directly, sqlite inside its UDFs) call this.
    """
    column = Column("", values)
    if func == "count":
        return column.count()
    if func == "sum":
        return column.sum()
    if func == "mean":
        return column.mean()
    if func == "min":
        return column.min()
    if func == "max":
        return column.max()
    if func == "median":
        return column.median()
    if func == "std":
        return column.std()
    if func == "percentile":
        return column.percentile(q if q is not None else 0.5)
    raise ValueError(f"unsupported aggregate {func!r}")


def _matches(op: str, cell: Any, literal: Any) -> bool:
    """Evaluate one filter predicate on a canonical cell value.

    Implements SQL comparison semantics: NULL never matches anything except
    ``is_null``, and ordered comparisons are type-guarded so a numeric
    literal only matches numeric cells and a string literal only string
    cells (sqlite's cross-type ordering would otherwise diverge from
    Python's ``TypeError``).
    """
    if op == "is_null":
        return cell is None
    if op == "not_null":
        return cell is not None
    if cell is None:
        return False
    if op == "eq":
        return cell == literal
    if op == "ne":
        return cell != literal
    if op == "in":
        return cell in literal
    if op == "not_in":
        return cell not in literal
    if isinstance(literal, str):
        if not isinstance(cell, str):
            return False
    else:
        if not isinstance(cell, (int, float)):
            return False
    if op == "lt":
        return cell < literal
    if op == "le":
        return cell <= literal
    if op == "gt":
        return cell > literal
    if op == "ge":
        return cell >= literal
    raise ValueError(f"unsupported filter op {op!r}")


def _order_comparator(
    keys: Sequence[Tuple[List[Any], bool]],
) -> Callable[[int], Any]:
    """Build a sort key comparing row positions by ``(values, descending)``
    order specs, with NULLs last in both directions and numbers before
    strings (direction applies to kind rank and value, like sqlite)."""

    def compare(i: int, j: int) -> int:
        for values, descending in keys:
            a, b = values[i], values[j]
            if a is None or b is None:
                if a is None and b is None:
                    continue
                return 1 if a is None else -1
            a_kind = 1 if isinstance(a, str) else 0
            b_kind = 1 if isinstance(b, str) else 0
            if a_kind != b_kind:
                result = -1 if a_kind < b_kind else 1
            elif a == b:
                continue
            else:
                result = -1 if a < b else 1
            return -result if descending else result
        return 0

    return cmp_to_key(compare)


# ----------------------------------------------------------------------
# query resolution (shared validation)
# ----------------------------------------------------------------------

class _Source:
    """One resolved output-namespace column: where it comes from."""

    __slots__ = ("name", "side", "column")

    def __init__(self, name: str, side: str, column: str):
        self.name = name          # output name
        self.side = side          # "l" or "r"
        self.column = column      # source column in that table


def _resolve(query: Query, schemas: Mapping[str, Tuple[str, ...]]) -> List[_Source]:
    """Validate ``query`` against registered schemas and return the source
    namespace (left columns followed by joined right columns) every backend
    executes over."""

    if query.table not in schemas:
        raise UnknownNameError(
            f"unknown table {query.table!r}; registered: {', '.join(sorted(schemas)) or '(none)'}"
        )
    left_cols = schemas[query.table]
    sources = [_Source(name, "l", name) for name in left_cols]
    if query.join is not None:
        join = query.join
        if join.table not in schemas:
            raise UnknownNameError(
                f"unknown join table {join.table!r}; registered: "
                f"{', '.join(sorted(schemas)) or '(none)'}"
            )
        right_cols = schemas[join.table]
        for left, right in join.on:
            if left not in left_cols:
                raise UnknownNameError(f"join key {left!r} not in table {query.table!r}")
            if right not in right_cols:
                raise UnknownNameError(f"join key {right!r} not in table {join.table!r}")
        picked = join.select
        if not picked:
            key_cols = {right for _, right in join.on}
            taken = set(left_cols)
            picked = tuple(
                (name, name if name not in taken else f"{join.table}.{name}")
                for name in right_cols
                if name not in key_cols and name != _ROW_COLUMN
            )
        for column, alias in picked:
            if column not in right_cols:
                raise UnknownNameError(f"join select {column!r} not in table {join.table!r}")
            sources.append(_Source(alias, "r", column))
    names = [source.name for source in sources]
    if len(set(names)) != len(names):
        duplicate = next(name for name in names if names.count(name) > 1)
        raise ValueError(f"duplicate output column {duplicate!r} after join")
    namespace = set(names)

    def check(column: str, what: str) -> None:
        if column not in namespace:
            raise UnknownNameError(
                f"{what} column {column!r} not available; columns: {', '.join(names)}"
            )

    for item in query.filters:
        check(item.column, "filter")
    for name in query.group_by:
        check(name, "group_by")
    for agg in query.aggregates:
        if agg.column is not None:
            check(agg.column, "aggregate")
    for name in query.select:
        check(name, "select")
    if query.aggregates:
        valid = set(query.group_by) | {agg.output_name for agg in query.aggregates}
        for spec in query.order_by:
            if spec.column not in valid:
                raise UnknownNameError(
                    f"order_by column {spec.column!r} must be a group key or "
                    f"aggregate output; available: {', '.join(sorted(valid))}"
                )
    else:
        for spec in query.order_by:
            check(spec.column, "order_by")
    return sources


# ----------------------------------------------------------------------
# backend seam
# ----------------------------------------------------------------------

class BaseTabularStore(abc.ABC):
    """Abstract tabular store: register :class:`Table` objects by name, then
    :meth:`execute` declarative :class:`Query` objects against them.

    Implementations must honour the execution contract documented on the
    :mod:`repro.analytics.query` dataclasses bit-for-bit; the differential
    suite in ``tests/test_analytics.py`` holds them to it.
    """

    name = "base"

    def __init__(self) -> None:
        self._schemas: Dict[str, Tuple[str, ...]] = {}
        self._closed = False

    # -- registration --------------------------------------------------

    def register_table(self, name: str, table: Table) -> None:
        """Register (or replace) ``table`` under ``name``."""
        self._check_open()
        if _ROW_COLUMN in table.columns:
            raise ValueError(f"column name {_ROW_COLUMN!r} is reserved by the engine")
        self._store_table(str(name), table)
        self._schemas[str(name)] = tuple(table.columns)

    def drop_table(self, name: str) -> None:
        """Remove a registered table; unknown names raise."""
        self._require(name)
        self._discard_table(name)
        del self._schemas[name]

    def list_tables(self) -> List[str]:
        """Sorted names of the registered tables."""
        return sorted(self._schemas)

    def has_table(self, name: str) -> bool:
        return name in self._schemas

    def table_columns(self, name: str) -> Tuple[str, ...]:
        """Column names of a registered table, in table order."""
        self._require(name)
        return self._schemas[name]

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError(f"{type(self).__name__} is closed")

    def _require(self, name: str) -> None:
        self._check_open()
        if name not in self._schemas:
            raise UnknownNameError(
                f"unknown table {name!r}; registered: "
                f"{', '.join(sorted(self._schemas)) or '(none)'}"
            )

    # -- execution -----------------------------------------------------

    def execute(self, query: Union[Query, Mapping[str, Any]]) -> Table:
        """Run ``query`` and return its result as a new :class:`Table`."""
        self._check_open()
        query = as_query(query)
        sources = _resolve(query, self._schemas)
        return self._execute(query, sources)

    # -- backend hooks -------------------------------------------------

    @abc.abstractmethod
    def _store_table(self, name: str, table: Table) -> None:
        """Persist ``table`` in backend storage (name already validated)."""

    @abc.abstractmethod
    def _discard_table(self, name: str) -> None:
        """Drop backend storage for a registered table."""

    @abc.abstractmethod
    def load_table(self, name: str) -> Table:
        """Return a registered table's full contents, canonicalised."""

    @abc.abstractmethod
    def _execute(self, query: Query, sources: List[_Source]) -> Table:
        """Execute an already-validated query."""

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Release backend resources; the store is unusable afterwards
        (any further use raises :class:`RuntimeError`).  Idempotent."""
        self._closed = True

    def __enter__(self) -> "BaseTabularStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class StdlibBackend(BaseTabularStore):
    """Pure-stdlib columnar executor over in-memory :class:`Table` objects.

    Tables are registered by reference (registration is O(1)); mutating a
    table after registering it is visible to later queries.
    """

    name = "stdlib"

    def __init__(self) -> None:
        super().__init__()
        self._tables: Dict[str, Table] = {}

    def _store_table(self, name: str, table: Table) -> None:
        self._tables[name] = table

    def _discard_table(self, name: str) -> None:
        del self._tables[name]

    def load_table(self, name: str) -> Table:
        self._require(name)
        table = self._tables[name]
        return Table.from_columns(
            {col: [canonical_value(v) for v in table[col].values] for col in table.columns}
        )

    def close(self) -> None:
        super().close()
        self._tables.clear()
        self._schemas.clear()

    # -- execution -----------------------------------------------------

    def _execute(self, query: Query, sources: List[_Source]) -> Table:
        left = self._tables[query.table]
        if query.join is not None:
            data, count = self._joined_columns(query, sources, left)
        else:
            data = {source.name: left[source.column].values for source in sources}
            count = len(left)

        indices = self._filter_indices(query, data, count)

        if query.aggregates:
            names, columns = self._aggregate(query, data, indices)
            order_positions = self._order_output(query, names, columns)
            if query.limit is not None:
                order_positions = order_positions[: query.limit]
            return Table.from_columns(
                {name: [values[pos] for pos in order_positions]
                 for name, values in zip(names, columns)}
            )

        if query.order_by:
            keys = [
                ([canonical_value(v) for v in data[spec.column]], spec.descending)
                for spec in query.order_by
            ]
            indices.sort(key=_order_comparator(keys))
        if query.limit is not None:
            indices = indices[: query.limit]
        chosen = query.select or tuple(source.name for source in sources)
        return Table.from_columns(
            {name: [canonical_value(data[name][i]) for i in indices] for name in chosen}
        )

    def _joined_columns(
        self, query: Query, sources: List[_Source], left: Table
    ) -> Tuple[Dict[str, List[Any]], int]:
        """Materialise the inner-joined namespace columns (hash join on the
        right side, output in left-major order; NULL keys never match)."""
        join = query.join
        right = self._tables[join.table]
        right_keys: Dict[Tuple[Any, ...], List[int]] = {}
        right_key_cols = [right[col].values for _, col in join.on]
        for j in range(len(right)):
            key = tuple(canonical_value(values[j]) for values in right_key_cols)
            if any(part is None for part in key):
                continue
            right_keys.setdefault(key, []).append(j)
        pairs: List[Tuple[int, int]] = []
        left_key_cols = [left[col].values for col, _ in join.on]
        for i in range(len(left)):
            key = tuple(canonical_value(values[i]) for values in left_key_cols)
            if any(part is None for part in key):
                continue
            for j in right_keys.get(key, ()):
                pairs.append((i, j))
        data: Dict[str, List[Any]] = {}
        for source in sources:
            values = (left if source.side == "l" else right)[source.column].values
            picker = 0 if source.side == "l" else 1
            data[source.name] = [values[pair[picker]] for pair in pairs]
        return data, len(pairs)

    def _filter_indices(
        self, query: Query, data: Mapping[str, Sequence[Any]], count: int
    ) -> List[int]:
        indices = list(range(count))
        for item in query.filters:
            literal = canonical_value(item.value) if not isinstance(item.value, tuple) else tuple(
                canonical_value(part) for part in item.value
            )
            values = data[item.column]
            indices = [
                i for i in indices if _matches(item.op, canonical_value(values[i]), literal)
            ]
        return indices

    def _aggregate(
        self, query: Query, data: Mapping[str, Sequence[Any]], indices: List[int]
    ) -> Tuple[List[str], List[List[Any]]]:
        """Group surviving rows (first-seen key order) and compute aggregate
        outputs; returns parallel (names, column values) lists."""
        if query.group_by:
            groups: Dict[Tuple[Any, ...], List[int]] = {}
            key_cols = [data[name] for name in query.group_by]
            for i in indices:
                key = tuple(canonical_value(values[i]) for values in key_cols)
                groups.setdefault(key, []).append(i)
            buckets = list(groups.items())
        else:
            buckets = [((), indices)]
        names = list(query.group_by) + [agg.output_name for agg in query.aggregates]
        columns: List[List[Any]] = [[] for _ in names]
        for key, members in buckets:
            for pos, part in enumerate(key):
                columns[pos].append(part)
            for offset, agg in enumerate(query.aggregates):
                if agg.func == "count":
                    value = len(members)
                else:
                    raw = data[agg.column]
                    value = aggregate_values(agg.func, [raw[i] for i in members], agg.q)
                columns[len(query.group_by) + offset].append(value)
        return names, columns

    def _order_output(
        self, query: Query, names: List[str], columns: List[List[Any]]
    ) -> List[int]:
        positions = list(range(len(columns[0]) if columns else 0))
        if not query.order_by:
            return positions
        by_name = dict(zip(names, columns))
        keys = [(by_name[spec.column], spec.descending) for spec in query.order_by]
        positions.sort(key=_order_comparator(keys))
        return positions


def _make_sqlite_aggregate(func: str) -> type:
    """Build a sqlite UDF aggregate class for ``func``.

    The UDF receives ``(source_row, value[, q])`` per row, re-sorts by
    source row in ``finalize`` (sqlite feeds GROUP BY rows in an unspecified
    order, and float accumulation is order-sensitive), then delegates to
    :func:`aggregate_values` — the same code path the stdlib backend uses.
    """

    class _Aggregate:
        def __init__(self) -> None:
            self.pairs: List[Tuple[int, Any]] = []
            self.q: Optional[float] = None

        def step(self, row: int, value: Any, q: Optional[float] = None) -> None:
            self.q = q
            self.pairs.append((row, value))

        def finalize(self) -> Any:
            self.pairs.sort(key=lambda pair: pair[0])
            values = [value for _, value in self.pairs]
            if func == "first":
                return values[0] if values else None
            return aggregate_values(func, values, self.q)

    _Aggregate.__name__ = f"_SqliteAgg_{func}"
    return _Aggregate


class SqliteBackend(BaseTabularStore):
    """``sqlite3``-backed store: registered tables spill to a temporary
    database file and queries compile to SQL.

    Designed for result sets larger than comfortable in memory — the
    registered data lives on disk, not in Python lists.  Aggregates execute
    as Python UDFs sharing :func:`aggregate_values` with the stdlib backend,
    and a hidden ``__row__`` column makes every ordering decision (plain
    scans, first-seen group order, left-major joins, top-k ties) reproduce
    the stdlib backend's exactly.
    """

    name = "sqlite"

    def __init__(self, path: Optional[str] = None):
        super().__init__()
        self._owns_file = False
        if path is None:
            handle, path = tempfile.mkstemp(prefix="repro-analytics-", suffix=".sqlite3")
            os.close(handle)
            self._owns_file = True
        self.path = path
        self._connection = sqlite3.connect(path)
        for func in ("sum", "mean", "min", "max", "median", "std", "first"):
            self._connection.create_aggregate(f"cm_{func}", 2, _make_sqlite_aggregate(func))
        self._connection.create_aggregate("cm_percentile", 3, _make_sqlite_aggregate("percentile"))

    # -- registration --------------------------------------------------

    def _store_table(self, name: str, table: Table) -> None:
        quoted = _quote(name)
        cols = ", ".join(_quote(col) for col in table.columns)
        with self._connection:
            self._connection.execute(f"DROP TABLE IF EXISTS {quoted}")
            self._connection.execute(
                f"CREATE TABLE {quoted} ({_quote(_ROW_COLUMN)} INTEGER PRIMARY KEY"
                + (f", {cols}" if cols else "")
                + ")"
            )
            placeholders = ", ".join("?" for _ in range(len(table.columns) + 1))
            column_values = [table[col].values for col in table.columns]
            rows = (
                (i,) + tuple(_spill_value(name, col, values[i])
                             for col, values in zip(table.columns, column_values))
                for i in range(len(table))
            )
            self._connection.executemany(
                f"INSERT INTO {quoted} VALUES ({placeholders})", rows
            )

    def _discard_table(self, name: str) -> None:
        with self._connection:
            self._connection.execute(f"DROP TABLE IF EXISTS {_quote(name)}")

    def load_table(self, name: str) -> Table:
        self._require(name)
        columns = self._schemas[name]
        select = ", ".join(_quote(col) for col in columns) or "NULL"
        cursor = self._connection.execute(
            f"SELECT {select} FROM {_quote(name)} ORDER BY {_quote(_ROW_COLUMN)}"
        )
        fetched = cursor.fetchall()
        return Table.from_columns(
            {col: [_unspill_value(row[idx]) for row in fetched]
             for idx, col in enumerate(columns)}
        )

    def close(self) -> None:
        super().close()
        self._connection.close()
        self._schemas.clear()
        if self._owns_file:
            try:
                os.unlink(self.path)
            except OSError:
                pass
            self._owns_file = False

    # -- execution -----------------------------------------------------

    def _execute(self, query: Query, sources: List[_Source]) -> Table:
        exprs = {
            source.name: f'{"l" if source.side == "l" else "r"}.{_quote(source.column)}'
            for source in sources
        }
        params: List[Any] = []
        if query.join is not None:
            row_expr = f'(l.{_quote(_ROW_COLUMN)} * {_ROW_STRIDE} + r.{_quote(_ROW_COLUMN)})'
        else:
            row_expr = f"l.{_quote(_ROW_COLUMN)}"

        if query.aggregates:
            names = list(query.group_by) + [agg.output_name for agg in query.aggregates]
            select_parts = [
                f"cm_first({row_expr}, {exprs[name]}) AS {_quote(name)}"
                for name in query.group_by
            ]
            agg_sql: Dict[str, Tuple[str, List[Any]]] = {}
            for agg in query.aggregates:
                sql, sql_params = _aggregate_sql(agg, exprs, row_expr)
                agg_sql[agg.output_name] = (sql, sql_params)
                select_parts.append(f"{sql} AS {_quote(agg.output_name)}")
                params.extend(sql_params)
        else:
            names = list(query.select or tuple(source.name for source in sources))
            select_parts = [f"{exprs[name]} AS {_quote(name)}" for name in names]
            agg_sql = {}

        sql = [f"SELECT {', '.join(select_parts)}"]
        sql.append(f"FROM {_quote(query.table)} AS l")
        if query.join is not None:
            on = " AND ".join(
                f"l.{_quote(left)} = r.{_quote(right)}" for left, right in query.join.on
            )
            sql.append(f"JOIN {_quote(query.join.table)} AS r ON {on}")
        if query.filters:
            clauses = []
            for item in query.filters:
                clause, clause_params = _filter_sql(item, exprs[item.column])
                clauses.append(clause)
                params.extend(clause_params)
            sql.append("WHERE " + " AND ".join(clauses))
        if query.group_by:
            sql.append("GROUP BY " + ", ".join(exprs[name] for name in query.group_by))

        order_parts: List[str] = []
        for spec in query.order_by:
            if query.aggregates and spec.column in agg_sql:
                expr, expr_params = agg_sql[spec.column]
                order_parts.extend(_order_sql(expr, spec.descending))
                # the ORDER BY fragment repeats the aggregate expression
                # (and thus its bound parameters) three times
                for _ in range(3):
                    params.extend(expr_params)
            else:
                order_parts.extend(_order_sql(exprs[spec.column], spec.descending))
        if query.aggregates:
            order_parts.append(f"MIN({row_expr}) ASC")
        else:
            order_parts.append(f"{row_expr} ASC")
        sql.append("ORDER BY " + ", ".join(order_parts))
        if query.limit is not None:
            sql.append("LIMIT ?")
            params.append(query.limit)

        cursor = self._connection.execute("\n".join(sql), params)
        fetched = cursor.fetchall()
        return Table.from_columns(
            {name: [_unspill_value(row[idx]) for row in fetched]
             for idx, name in enumerate(names)}
        )


def _quote(identifier: str) -> str:
    return '"' + identifier.replace('"', '""') + '"'


def _spill_value(table: str, column: str, value: Any) -> Any:
    value = canonical_value(value)
    if isinstance(value, str):
        # Escape real strings that collide with the opaque-value tag so the
        # decode in _unspill_value stays unambiguous.
        if value.startswith(_OPAQUE_TAG):
            return _OPAQUE_TAG + json.dumps(value)
        return value
    if value is None or isinstance(value, float):
        return value
    if isinstance(value, int):
        if not -_INT64_MAX <= value < _INT64_MAX:
            raise ValueError(
                f"table {table!r} column {column!r}: integer {value} overflows "
                "sqlite's signed 64-bit storage"
            )
        return value
    # Opaque payload (lists, dicts, ...): spill as tagged JSON text so it
    # survives select passthrough.  Such values are data, not keys — using
    # them in filter/group/order/join positions is unspecified and will not
    # match the stdlib backend.
    try:
        return _OPAQUE_TAG + json.dumps(value, separators=(",", ":"))
    except (TypeError, ValueError):
        raise TypeError(
            f"table {table!r} column {column!r}: cannot spill "
            f"{type(value).__name__} values to sqlite (scalars and "
            "JSON-serialisable payloads only)"
        ) from None


def _unspill_value(value: Any) -> Any:
    if isinstance(value, str) and value.startswith(_OPAQUE_TAG):
        return json.loads(value[len(_OPAQUE_TAG):])
    return value


def _aggregate_sql(
    agg: Aggregate, exprs: Mapping[str, str], row_expr: str
) -> Tuple[str, List[Any]]:
    if agg.func == "count":
        return "COUNT(*)", []
    expr = exprs[agg.column]
    if agg.func == "percentile":
        return f"cm_percentile({row_expr}, {expr}, ?)", [agg.q]
    if agg.func == "sum":
        # Over zero rows sqlite3 never instantiates a UDF aggregate and the
        # result is NULL; cm_sum itself never returns NULL (the empty and
        # the all-null sum are both 0), so COALESCE only fires there.
        return f"COALESCE(cm_sum({row_expr}, {expr}), 0)", []
    return f"cm_{agg.func}({row_expr}, {expr})", []


def _filter_sql(item: Filter, expr: str) -> Tuple[str, List[Any]]:
    op = item.op
    if op == "is_null":
        return f"{expr} IS NULL", []
    if op == "not_null":
        return f"{expr} IS NOT NULL", []
    if op in ("in", "not_in"):
        literals = [canonical_value(part) for part in item.value]
        if not literals:
            # SQL has no empty IN list; `x IN ()` is always false and
            # `x NOT IN ()` matches every non-NULL x.
            return ("0", []) if op == "in" else (f"{expr} IS NOT NULL", [])
        placeholders = ", ".join("?" for _ in literals)
        keyword = "IN" if op == "in" else "NOT IN"
        return f"{expr} {keyword} ({placeholders})", literals
    literal = canonical_value(item.value)
    if op == "eq":
        return f"{expr} = ?", [literal]
    if op == "ne":
        return f"{expr} != ?", [literal]
    symbol = {"lt": "<", "le": "<=", "gt": ">", "ge": ">="}[op]
    if isinstance(literal, str):
        guard = f"typeof({expr}) = 'text'"
    else:
        guard = f"typeof({expr}) IN ('integer', 'real')"
    return f"({guard} AND {expr} {symbol} ?)", [literal]


def _order_sql(expr: str, descending: bool) -> List[str]:
    direction = "DESC" if descending else "ASC"
    return [
        f"({expr} IS NULL) ASC",
        f"(CASE WHEN typeof({expr}) = 'text' THEN 1 ELSE 0 END) {direction}",
        f"{expr} {direction}",
    ]


# ----------------------------------------------------------------------
# registry / convenience
# ----------------------------------------------------------------------

BACKENDS: Dict[str, Callable[[], BaseTabularStore]] = {
    "stdlib": StdlibBackend,
    "sqlite": SqliteBackend,
}


def available_backends() -> List[str]:
    """Names accepted by :func:`create_backend` (and every ``--backend``/
    ``backend=`` surface built on it)."""
    return sorted(BACKENDS)


def create_backend(name: str, **kwargs: Any) -> BaseTabularStore:
    """Instantiate a tabular-store backend by registry name."""
    try:
        factory = BACKENDS[name]
    except KeyError:
        raise UnknownNameError(
            f"unknown analytics backend {name!r}; available: "
            f"{', '.join(available_backends())}"
        ) from None
    return factory(**kwargs)


def run_query(
    query: Union[Query, Mapping[str, Any]],
    tables: Mapping[str, Table],
    backend: Union[str, BaseTabularStore] = "stdlib",
) -> Table:
    """One-shot helper: register ``tables`` into ``backend`` and execute.

    ``backend`` may be a registry name (a transient store is created and
    closed) or an existing :class:`BaseTabularStore` instance (the provided
    tables are (re-)registered into it and it stays open).
    """
    query = as_query(query)
    if isinstance(backend, BaseTabularStore):
        for name, table in tables.items():
            backend.register_table(name, table)
        return backend.execute(query)
    with create_backend(backend) as store:
        for name, table in tables.items():
            store.register_table(name, table)
        return store.execute(query)
