"""A tiny textual query language for the CLI's ``--query`` flag.

Grammar (clauses optional, in this order; keywords case-insensitive)::

    select col[, col ...]
    where col OP value [and col OP value ...]
    group by col[, col ...]
    agg func(col)[ as name][, func(col) ...]
    order by col [asc|desc][, col [asc|desc] ...]
    limit N

Operators: ``=`` ``!=`` ``<`` ``<=`` ``>`` ``>=``, ``in (v1, v2, ...)``,
``not in (...)``, ``is null``, ``is not null``.  Values are numbers,
``null``/``true``/``false``, quoted strings (``'x'`` or ``"x"``) or bare
words (treated as strings).  Aggregate functions are those of
:data:`repro.analytics.query.AGGREGATE_FUNCS`; ``count()`` takes no column
and ``percentile(col, q)`` takes the fraction as its second argument.

Examples::

    select workload, policy, miss_rate where config = 'tiny' \
        order by miss_rate desc limit 5
    group by workload agg mean(miss_rate) as mean_miss, count() \
        order by mean_miss
"""

from __future__ import annotations

import re
from typing import Any, List, Optional, Tuple

from .query import Aggregate, Filter, OrderBy, Query

_TOKEN = re.compile(
    r"""\s*(?:
        (?P<string>'(?:[^'\\]|\\.)*'|"(?:[^"\\]|\\.)*")
      | (?P<number>-?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)
      | (?P<op><=|>=|!=|=|<|>)
      | (?P<punct>[(),])
      | (?P<word>[A-Za-z_][A-Za-z0-9_.\-]*)
    )""",
    re.VERBOSE,
)

_CLAUSE_WORDS = {"select", "where", "group", "agg", "order", "limit"}


class QuerySyntaxError(ValueError):
    """The ``--query`` mini-DSL text failed to parse."""


class _Tokens:
    def __init__(self, text: str):
        self.items: List[Tuple[str, str]] = []
        position = 0
        while position < len(text):
            match = _TOKEN.match(text, position)
            if match is None:
                if text[position:].strip():
                    raise QuerySyntaxError(
                        f"cannot tokenize query near {text[position:position + 20]!r}"
                    )
                break
            position = match.end()
            for kind in ("string", "number", "op", "punct", "word"):
                value = match.group(kind)
                if value is not None:
                    self.items.append((kind, value))
                    break
        self.index = 0

    def peek(self) -> Optional[Tuple[str, str]]:
        return self.items[self.index] if self.index < len(self.items) else None

    def next(self) -> Tuple[str, str]:
        item = self.peek()
        if item is None:
            raise QuerySyntaxError("unexpected end of query")
        self.index += 1
        return item

    def at_keyword(self, *words: str) -> bool:
        item = self.peek()
        return item is not None and item[0] == "word" and item[1].lower() in words

    def expect_word(self, *words: str) -> str:
        kind, value = self.next()
        if kind != "word" or value.lower() not in words:
            raise QuerySyntaxError(f"expected {' or '.join(words)!s}, got {value!r}")
        return value.lower()

    def expect_punct(self, symbol: str) -> None:
        kind, value = self.next()
        if kind != "punct" or value != symbol:
            raise QuerySyntaxError(f"expected {symbol!r}, got {value!r}")

    def at_clause_boundary(self) -> bool:
        item = self.peek()
        return item is None or (item[0] == "word" and item[1].lower() in _CLAUSE_WORDS)


def _unquote(text: str) -> str:
    body = text[1:-1]
    return re.sub(r"\\(.)", r"\1", body)


def _literal(tokens: _Tokens) -> Any:
    kind, value = tokens.next()
    if kind == "string":
        return _unquote(value)
    if kind == "number":
        return float(value) if any(ch in value for ch in ".eE") else int(value)
    if kind == "word":
        lowered = value.lower()
        if lowered == "null":
            return None
        if lowered == "true":
            return True
        if lowered == "false":
            return False
        return value
    raise QuerySyntaxError(f"expected a literal, got {value!r}")


def _column(tokens: _Tokens) -> str:
    kind, value = tokens.next()
    if kind not in ("word", "string"):
        raise QuerySyntaxError(f"expected a column name, got {value!r}")
    return _unquote(value) if kind == "string" else value


def _column_list(tokens: _Tokens) -> List[str]:
    names = [_column(tokens)]
    while tokens.peek() == ("punct", ","):
        tokens.next()
        names.append(_column(tokens))
    return names


def _parse_filter(tokens: _Tokens) -> Filter:
    try:
        return _parse_filter_inner(tokens)
    except QuerySyntaxError:
        raise
    except ValueError as exc:  # Filter validation (e.g. null/bool literals)
        raise QuerySyntaxError(str(exc)) from exc


def _parse_filter_inner(tokens: _Tokens) -> Filter:
    column = _column(tokens)
    item = tokens.peek()
    if item is not None and item[0] == "op":
        symbol = tokens.next()[1]
        op = {"=": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge"}[symbol]
        return Filter(column, op, _literal(tokens))
    if tokens.at_keyword("in"):
        tokens.next()
        return Filter(column, "in", _parse_value_list(tokens))
    if tokens.at_keyword("not"):
        tokens.next()
        tokens.expect_word("in")
        return Filter(column, "not_in", _parse_value_list(tokens))
    if tokens.at_keyword("is"):
        tokens.next()
        if tokens.at_keyword("not"):
            tokens.next()
            tokens.expect_word("null")
            return Filter(column, "not_null")
        tokens.expect_word("null")
        return Filter(column, "is_null")
    got = item[1] if item is not None else "end of query"
    raise QuerySyntaxError(f"expected an operator after {column!r}, got {got!r}")


def _parse_value_list(tokens: _Tokens) -> List[Any]:
    tokens.expect_punct("(")
    values = []
    if tokens.peek() != ("punct", ")"):
        values.append(_literal(tokens))
        while tokens.peek() == ("punct", ","):
            tokens.next()
            values.append(_literal(tokens))
    tokens.expect_punct(")")
    return values


def _parse_aggregate(tokens: _Tokens) -> Aggregate:
    kind, func = tokens.next()
    if kind != "word":
        raise QuerySyntaxError(f"expected an aggregate function, got {func!r}")
    func = func.lower()
    tokens.expect_punct("(")
    column = None
    q = None
    if tokens.peek() != ("punct", ")"):
        column = _column(tokens)
        if tokens.peek() == ("punct", ","):
            tokens.next()
            q = _literal(tokens)
    tokens.expect_punct(")")
    alias = None
    if tokens.at_keyword("as"):
        tokens.next()
        alias = _column(tokens)
    try:
        return Aggregate(func=func, column=column, alias=alias, q=q)
    except ValueError as exc:
        raise QuerySyntaxError(str(exc)) from exc


def parse_query(text: str, table: str = "cells") -> Query:
    """Parse mini-DSL ``text`` into a :class:`Query` over ``table``."""
    tokens = _Tokens(text)
    select: List[str] = []
    filters: List[Filter] = []
    group_by: List[str] = []
    aggregates: List[Aggregate] = []
    order_by: List[OrderBy] = []
    limit: Optional[int] = None

    while tokens.peek() is not None:
        clause = tokens.expect_word(*_CLAUSE_WORDS)
        if clause == "select":
            select = _column_list(tokens)
        elif clause == "where":
            filters.append(_parse_filter(tokens))
            while tokens.at_keyword("and"):
                tokens.next()
                filters.append(_parse_filter(tokens))
        elif clause == "group":
            tokens.expect_word("by")
            group_by = _column_list(tokens)
        elif clause == "agg":
            aggregates.append(_parse_aggregate(tokens))
            while tokens.peek() == ("punct", ","):
                tokens.next()
                aggregates.append(_parse_aggregate(tokens))
        elif clause == "order":
            tokens.expect_word("by")
            while True:
                column = _column(tokens)
                descending = False
                if tokens.at_keyword("asc", "desc"):
                    descending = tokens.next()[1].lower() == "desc"
                order_by.append(OrderBy(column, descending))
                if tokens.peek() == ("punct", ","):
                    tokens.next()
                    continue
                break
        elif clause == "limit":
            kind, value = tokens.next()
            if kind != "number" or not value.lstrip("-").isdigit() or int(value) < 0:
                raise QuerySyntaxError(f"limit requires a non-negative integer, got {value!r}")
            limit = int(value)

    try:
        return Query(
            table=table,
            select=tuple(select),
            filters=tuple(filters),
            group_by=tuple(group_by),
            aggregates=tuple(aggregates),
            order_by=tuple(order_by),
            limit=limit,
        )
    except ValueError as exc:
        raise QuerySyntaxError(str(exc)) from exc
