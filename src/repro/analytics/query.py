"""Declarative query objects for the analytics engine.

A :class:`Query` is a small, serialisable description of a tabular
computation over one (or two, via an inner :class:`Join`) registered
tables:

``FROM table [JOIN other ON ...] WHERE filters [GROUP BY cols + aggregates]
[ORDER BY cols] [LIMIT n]`` followed by column projection.

Queries are plain frozen dataclasses with lossless ``to_dict`` /
``from_dict`` wire forms (mirroring :class:`repro.core.experiment
.ExperimentSpec`), so they ride the JSON-lines serve protocol unchanged.
Execution semantics are defined once in :mod:`repro.analytics.backends`
and every backend must honour them bit-for-bit; the differential test
suite in ``tests/test_analytics.py`` enforces that contract.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple, Union

#: Supported filter operators.  Comparison/equality operators never match
#: NULL values (SQL semantics); use ``is_null`` / ``not_null`` to test for
#: missing data explicitly.
FILTER_OPS = ("eq", "ne", "lt", "le", "gt", "ge", "in", "not_in", "is_null", "not_null")

#: Supported aggregate functions.  All numeric aggregates share
#: :class:`repro.tracedb.table.Column` semantics: non-numeric and NULL/NaN
#: values are skipped, ``mean``/``min``/``max``/``median``/``percentile``/
#: ``std`` return ``None`` over an empty set, ``sum`` returns ``0`` and
#: ``count`` counts *rows in the group* (like SQL ``COUNT(*)``).
#: ``std`` is the population standard deviation (ddof=0).
AGGREGATE_FUNCS = ("count", "sum", "mean", "min", "max", "median", "percentile", "std")

_SCALAR_TYPES = (int, float, str, bool)


def _check_literal(value: Any, where: str) -> None:
    if value is None or isinstance(value, bool):
        return
    if not isinstance(value, _SCALAR_TYPES):
        raise ValueError(
            f"{where}: literal must be int/float/str/bool/None, got {type(value).__name__}"
        )
    if isinstance(value, float) and (math.isnan(value) or math.isinf(value)):
        raise ValueError(f"{where}: NaN/inf literals are not supported")


@dataclass(frozen=True)
class Filter:
    """One WHERE predicate: ``column <op> value``.

    ``eq``/``ne`` and the ordered comparisons (``lt``/``le``/``gt``/``ge``)
    never match NULL cells; ``ne``/``not_in`` therefore *exclude* NULLs,
    matching SQL.  Ordered comparisons are additionally type-guarded: a
    numeric literal only matches numeric cells and a string literal only
    matches string cells, so mixed-type columns behave identically in the
    stdlib executor and in sqlite.
    """

    column: str
    op: str = "eq"
    value: Any = None

    def __post_init__(self) -> None:
        if self.op not in FILTER_OPS:
            raise ValueError(f"unknown filter op {self.op!r}; supported: {', '.join(FILTER_OPS)}")
        if self.op in ("is_null", "not_null"):
            if self.value is not None:
                raise ValueError(f"filter op {self.op!r} takes no value")
            return
        if self.op in ("in", "not_in"):
            if isinstance(self.value, (str, bytes)) or not isinstance(self.value, Sequence):
                raise ValueError(f"filter op {self.op!r} requires a list of literals")
            items = tuple(self.value)
            for item in items:
                _check_literal(item, f"filter {self.column} {self.op}")
                if item is None:
                    raise ValueError(
                        f"filter {self.column} {self.op}: None is never matched by "
                        "(not_)in; use is_null/not_null"
                    )
            object.__setattr__(self, "value", items)
            return
        _check_literal(self.value, f"filter {self.column} {self.op}")
        if self.value is None:
            raise ValueError(
                f"filter {self.column} {self.op}: None never compares equal; "
                "use is_null/not_null"
            )
        if self.op in ("lt", "le", "gt", "ge") and isinstance(self.value, bool):
            raise ValueError(f"filter {self.column} {self.op}: bool literals are not ordered")

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"column": self.column, "op": self.op}
        if self.op not in ("is_null", "not_null"):
            payload["value"] = list(self.value) if self.op in ("in", "not_in") else self.value
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Filter":
        return cls(
            column=payload["column"],
            op=payload.get("op", "eq"),
            value=payload.get("value"),
        )


@dataclass(frozen=True)
class Aggregate:
    """One aggregate output: ``func(column) AS alias``.

    ``count`` takes no column (it counts rows in the group).
    ``percentile`` requires ``q`` in [0, 1] and uses linear interpolation
    between order statistics (:meth:`Column.percentile`).
    """

    func: str
    column: Optional[str] = None
    alias: Optional[str] = None
    q: Optional[float] = None

    def __post_init__(self) -> None:
        if self.func not in AGGREGATE_FUNCS:
            raise ValueError(
                f"unknown aggregate {self.func!r}; supported: {', '.join(AGGREGATE_FUNCS)}"
            )
        if self.func == "count":
            if self.column is not None:
                raise ValueError("count() takes no column; it counts rows in the group")
        elif not self.column:
            raise ValueError(f"aggregate {self.func!r} requires a column")
        if self.func == "percentile":
            if self.q is None or not 0.0 <= float(self.q) <= 1.0:
                raise ValueError("percentile requires q in [0, 1]")
            object.__setattr__(self, "q", float(self.q))
        elif self.q is not None:
            raise ValueError(f"aggregate {self.func!r} takes no q parameter")

    @property
    def output_name(self) -> str:
        if self.alias:
            return self.alias
        if self.func == "count":
            return "count"
        if self.func == "percentile":
            return f"p{self.q:g}_{self.column}"
        return f"{self.func}_{self.column}"

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"func": self.func}
        if self.column is not None:
            payload["column"] = self.column
        if self.alias is not None:
            payload["alias"] = self.alias
        if self.q is not None:
            payload["q"] = self.q
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Aggregate":
        return cls(
            func=payload["func"],
            column=payload.get("column"),
            alias=payload.get("alias"),
            q=payload.get("q"),
        )


@dataclass(frozen=True)
class OrderBy:
    """One ORDER BY key.

    NULL cells sort last in *both* directions (the :meth:`Table.sort_by`
    convention); among non-NULL cells, numbers sort before strings and the
    requested direction applies to both the kind rank and the value, which
    is exactly how sqlite's cross-type comparison behaves.  Ties preserve
    the source row order (stable).
    """

    column: str
    descending: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {"column": self.column, "descending": self.descending}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "OrderBy":
        return cls(column=payload["column"], descending=bool(payload.get("descending", False)))


@dataclass(frozen=True)
class Join:
    """Inner equality join against a second registered table.

    ``on`` is a tuple of ``(left_column, right_column)`` key pairs; rows
    with NULL keys never match (SQL semantics).  ``select`` picks right
    columns into the output as ``(right_column, output_name)``; when empty,
    every right column that is not a join key is exported, renamed to
    ``"<table>.<name>"`` on a collision with a left column.  Output rows
    appear in left-major order (left row order, then right row order).
    """

    table: str
    on: Tuple[Tuple[str, str], ...]
    select: Tuple[Tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        pairs = tuple((str(left), str(right)) for left, right in self.on)
        if not pairs:
            raise ValueError("join requires at least one (left, right) key pair")
        object.__setattr__(self, "on", pairs)
        picked = tuple((str(col), str(alias)) for col, alias in self.select)
        object.__setattr__(self, "select", picked)

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"table": self.table, "on": [list(pair) for pair in self.on]}
        if self.select:
            payload["select"] = [list(pair) for pair in self.select]
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Join":
        return cls(
            table=payload["table"],
            on=tuple(tuple(pair) for pair in payload["on"]),
            select=tuple(tuple(pair) for pair in payload.get("select", ())),
        )


@dataclass(frozen=True)
class Query:
    """A declarative query over registered tables.

    Execution order: FROM ``table`` → ``join`` → ``filters`` →
    ``group_by`` + ``aggregates`` → ``order_by`` → ``limit`` → ``select``
    projection.  With ``aggregates`` and no ``group_by`` the whole input is
    one group and the result has exactly one row (even over empty input,
    like SQL).  ``order_by`` may reference any source column (or, for
    grouped queries, any group key / aggregate output); ``select`` is only
    valid for non-aggregated queries, whose output columns default to every
    source column.
    """

    table: str
    select: Tuple[str, ...] = ()
    filters: Tuple[Filter, ...] = ()
    group_by: Tuple[str, ...] = ()
    aggregates: Tuple[Aggregate, ...] = ()
    order_by: Tuple[OrderBy, ...] = ()
    limit: Optional[int] = None
    join: Optional[Join] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "select", tuple(str(name) for name in self.select))
        object.__setattr__(self, "filters", tuple(self.filters))
        object.__setattr__(self, "group_by", tuple(str(name) for name in self.group_by))
        object.__setattr__(self, "aggregates", tuple(self.aggregates))
        object.__setattr__(self, "order_by", tuple(self.order_by))
        if self.group_by and not self.aggregates:
            raise ValueError("group_by requires at least one aggregate")
        if self.aggregates and self.select:
            raise ValueError(
                "select and aggregates are mutually exclusive; aggregated output "
                "columns are group_by keys plus aggregate aliases"
            )
        if self.limit is not None and (not isinstance(self.limit, int) or self.limit < 0):
            raise ValueError("limit must be a non-negative integer")
        seen = set()
        for name in self.output_columns() or ():
            if name in seen:
                raise ValueError(f"duplicate output column {name!r}")
            seen.add(name)

    # -- fluent helpers ------------------------------------------------

    def where(self, column: str, op: str = "eq", value: Any = None) -> "Query":
        """Return a copy with one more filter predicate."""

        return replace(self, filters=self.filters + (Filter(column, op, value),))

    def order(self, column: str, descending: bool = False) -> "Query":
        """Return a copy with one more ORDER BY key."""

        return replace(self, order_by=self.order_by + (OrderBy(column, descending),))

    def head(self, limit: int) -> "Query":
        """Return a copy limited to the first ``limit`` result rows."""

        return replace(self, limit=limit)

    def output_columns(self) -> Optional[Tuple[str, ...]]:
        """Names of the result columns, or ``None`` when they depend on the
        source schema (non-aggregated query with no explicit select)."""

        if self.aggregates:
            return self.group_by + tuple(agg.output_name for agg in self.aggregates)
        return self.select or None

    # -- wire form -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"table": self.table}
        if self.select:
            payload["select"] = list(self.select)
        if self.filters:
            payload["filters"] = [item.to_dict() for item in self.filters]
        if self.group_by:
            payload["group_by"] = list(self.group_by)
        if self.aggregates:
            payload["aggregates"] = [item.to_dict() for item in self.aggregates]
        if self.order_by:
            payload["order_by"] = [item.to_dict() for item in self.order_by]
        if self.limit is not None:
            payload["limit"] = self.limit
        if self.join is not None:
            payload["join"] = self.join.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Query":
        join = payload.get("join")
        return cls(
            table=payload["table"],
            select=tuple(payload.get("select", ())),
            filters=tuple(Filter.from_dict(item) for item in payload.get("filters", ())),
            group_by=tuple(payload.get("group_by", ())),
            aggregates=tuple(Aggregate.from_dict(item) for item in payload.get("aggregates", ())),
            order_by=tuple(OrderBy.from_dict(item) for item in payload.get("order_by", ())),
            limit=payload.get("limit"),
            join=Join.from_dict(join) if join is not None else None,
        )


def as_query(value: Union[Query, Mapping[str, Any]]) -> Query:
    """Coerce a :class:`Query` or its wire form into a :class:`Query`."""

    if isinstance(value, Query):
        return value
    if isinstance(value, Mapping):
        return Query.from_dict(value)
    raise TypeError(f"expected Query or mapping, got {type(value).__name__}")
