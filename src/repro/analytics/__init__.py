"""repro.analytics — a declarative query layer over columnar tables.

One tested query engine replaces N ad-hoc loops: Sieve's grounding stages,
``ExperimentResult`` views, the serve layer's ``query`` op and the CLI's
``experiment report --query`` all express their lookups as
:class:`Query` objects and execute them through a swappable
:class:`BaseTabularStore` backend — the pure-stdlib columnar executor by
default, or a ``sqlite3`` spill-to-disk backend for larger-than-memory
result sets.  Both backends return bit-identical :class:`Table` results
(differential-tested), and queries have lossless ``to_dict``/``from_dict``
wire forms so they ride the JSON-lines serve protocol.
"""

from .backends import (
    BACKENDS,
    BaseTabularStore,
    SqliteBackend,
    StdlibBackend,
    aggregate_values,
    available_backends,
    canonical_value,
    create_backend,
    run_query,
)
from .dsl import QuerySyntaxError, parse_query
from .query import (
    AGGREGATE_FUNCS,
    FILTER_OPS,
    Aggregate,
    Filter,
    Join,
    OrderBy,
    Query,
    as_query,
)

__all__ = [
    "AGGREGATE_FUNCS",
    "BACKENDS",
    "FILTER_OPS",
    "Aggregate",
    "BaseTabularStore",
    "Filter",
    "Join",
    "OrderBy",
    "Query",
    "QuerySyntaxError",
    "SqliteBackend",
    "StdlibBackend",
    "aggregate_values",
    "as_query",
    "available_backends",
    "canonical_value",
    "create_backend",
    "parse_query",
    "run_query",
]
