"""Thread-safe serving facade over one shared CacheMind session.

See the :mod:`repro.serve` package docstring for where this sits in the
serving stack.  The service guarantees:

* **Safety** — concurrent ``ask``/``ask_batch`` calls from any number of
  threads never corrupt the session (conversation memory, answer history
  and lazy retriever construction are serialised under one ``RLock``).
* **Equivalence** — answers are byte-identical to calling
  :meth:`CacheMind.ask` directly: the service adds no processing of its
  own, only locking, request ids and telemetry.
* **Observability** — :meth:`stats` reports request counters, QPS, latency
  percentiles and the simulation-cache deltas since the service started.
"""

from __future__ import annotations

import asyncio
import math
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.core.answer import AskResponse
from repro.core.experiment import (
    ExperimentResult,
    ExperimentSpec,
    as_experiment_spec,
)
from repro.core.pipeline import CacheMind
from repro.core.plan import AskRequest, as_request
from repro.errors import DeadlineExceededError


def percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile (``fraction`` in [0, 1]) of ``values``."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(fraction * len(ordered)))
    return ordered[rank - 1]


class CacheMindService:
    """One shared :class:`CacheMind` session behind a concurrent ask API.

    Construct it around an existing session (``CacheMindService(session)``)
    or let it build one from session keyword arguments
    (``CacheMindService(workloads=[...], policies=[...])``).

        >>> service = CacheMindService(workloads=["astar"],
        ...                            policies=["lru", "belady"])
        >>> response = service.ask("What is the miss rate of lru on astar?")
        >>> response.answer.grounded
        True

    ``ask``/``ask_batch`` are safe from any thread; ``ask_async`` /
    ``ask_batch_async`` adapt them to ``asyncio`` via a private thread
    pool, so ``asyncio.gather(*[service.ask_async(q) for q in qs])`` works.
    """

    def __init__(self, session: Optional[CacheMind] = None,
                 latency_window: int = 2048,
                 executor_workers: int = 8,
                 **session_kwargs: Any):
        if session is not None and session_kwargs:
            raise ValueError("pass either a session or session kwargs, "
                             "not both")
        self.session = session if session is not None else CacheMind(
            **session_kwargs)
        # RLock: the serving path is one critical section, but request
        # handlers (the JSON server) may re-enter for stats.
        self._lock = threading.RLock()
        # The executor has its own tiny lock: ask_async resolves it on the
        # event-loop thread, which must never wait on the serving lock (a
        # long in-flight request would freeze the whole loop).  Creation is
        # cheap — worker threads only spawn on first submit.
        self._executor_lock = threading.Lock()
        self._executor: Optional[ThreadPoolExecutor] = ThreadPoolExecutor(
            max_workers=max(1, int(executor_workers)),
            thread_name_prefix="cachemind-serve")
        self._latencies: "deque[float]" = deque(maxlen=max(16, latency_window))
        self._started = time.monotonic()
        self._requests = 0
        self._batches = 0
        self._errors = 0
        self._next_request_id = 0
        self._cache_stats_at_start = dict(self.session.simulation_cache.stats())
        # Experiment telemetry has its own lock so a long-running sweep —
        # which deliberately does NOT hold the serving lock — stays visible
        # through `stats` while it runs.  Each in-flight sweep owns a
        # per-run [done, total] slot (concurrent sweeps are allowed and
        # must not overwrite each other's progress); `stats` aggregates
        # the active slots and falls back to the last completed run.
        self._experiment_lock = threading.Lock()
        self._experiment_run_counter = 0
        self._experiment_active: Dict[int, List[int]] = {}
        self._experiments: Dict[str, Any] = {
            "runs": 0, "errors": 0,
            "cells_done": 0, "cells_total": 0, "last": None,
        }

    # ------------------------------------------------------------------
    # synchronous serving API
    # ------------------------------------------------------------------
    def ask(self, request: Union[str, AskRequest],
            retriever: Optional[str] = None) -> AskResponse:
        """Serve one request (thread-safe); returns the response envelope."""
        return self.ask_batch([as_request(request, retriever=retriever)])[0]

    def ask_batch(self, requests: Sequence[Union[str, AskRequest]],
                  retriever: Optional[str] = None,
                  deadline_at: Optional[float] = None) -> List[AskResponse]:
        """Serve a batch over one merged execution (thread-safe).

        Duplicate simulation jobs across the batch are merged by the
        planner and simulated once; per-request latency lands in the
        service's sliding window for the percentile stats.

        ``deadline_at`` (a ``time.monotonic()`` instant) bounds how long
        the batch may wait behind other in-flight batches for the serving
        lock: once the deadline passes while queued,
        :class:`~repro.errors.DeadlineExceededError` is raised instead of
        executing arbitrarily late.
        """
        coerced = [as_request(request, retriever=retriever)
                   for request in requests]
        started = time.perf_counter()
        if deadline_at is None:
            self._lock.acquire()
        else:
            remaining = deadline_at - time.monotonic()
            if remaining <= 0 or not self._lock.acquire(timeout=remaining):
                raise DeadlineExceededError(
                    f"request deadline expired after waiting "
                    f"{time.perf_counter() - started:.3f}s for the serving "
                    f"lock")
        try:
            for request in coerced:
                if not request.request_id:
                    self._next_request_id += 1
                    request.request_id = f"req-{self._next_request_id}"
            try:
                responses = self.session.ask_request_many(coerced)
            except Exception:
                self._errors += 1
                raise
            elapsed = time.perf_counter() - started
            self._requests += len(coerced)
            self._batches += 1
            # Per-request latency inside a batch is dominated by the shared
            # execution, so attribute each request its own total timing
            # (plan + its share of simulate + retrieve + generate).
            for response in responses:
                self._latencies.append(
                    response.timings.get("total", elapsed))
        finally:
            self._lock.release()
        return responses

    # ------------------------------------------------------------------
    # experiments
    # ------------------------------------------------------------------
    def run_experiment(self, spec: Union[ExperimentSpec, Dict[str, Any]]
                       ) -> ExperimentResult:
        """Run one declarative sweep grid through the shared session.

        Deliberately runs *outside* the main serving lock: the experiment
        executor only touches the thread-safe simulation cache (asks keep
        serving concurrently, sharing any warm cells), and holding the lock
        for a long sweep would freeze ``stats`` — which is exactly where
        the sweep's progress (``experiments.cells_done/cells_total``) is
        reported while it runs.  ``spec`` may be an
        :class:`ExperimentSpec` or its ``to_dict`` payload (the wire form).
        """
        spec = as_experiment_spec(spec)
        started = time.perf_counter()
        with self._experiment_lock:
            self._experiment_run_counter += 1
            run_id = self._experiment_run_counter
            # The runner announces the real total via progress(0, total)
            # before executing its first cell — compiling the grid here
            # just to pre-read the size would flatten every cell twice.
            self._experiment_active[run_id] = [0, 0]

        def report_progress(done: int, total: int) -> None:
            with self._experiment_lock:
                self._experiment_active[run_id] = [done, total]

        try:
            result = self.session.run_experiment(spec,
                                                 progress=report_progress)
        except Exception:
            with self._experiment_lock:
                self._experiments["errors"] += 1
                self._experiment_active.pop(run_id, None)
            raise
        with self._experiment_lock:
            done, total = self._experiment_active.pop(run_id, (0, 0))
            self._experiments["runs"] += 1
            self._experiments["cells_done"] = done
            self._experiments["cells_total"] = total
            self._experiments["last"] = {
                "fingerprint": result.fingerprint,
                "cells": len(result),
                "counters": dict(result.counters),
                "seconds": time.perf_counter() - started,
            }
        return result

    def query_experiment(self, fingerprint: str,
                         query: Union[Dict[str, Any], "object"],
                         backend: str = "stdlib"):
        """Run a declarative analytics query against a store-backed
        experiment result.

        ``fingerprint`` may be a unique prefix of a stored experiment's
        fingerprint; ``query`` is a :class:`repro.analytics.Query` or its
        wire form, executed against the experiment's cell table through the
        named analytics ``backend``.  Returns ``(full_fingerprint, table)``.
        Like :meth:`run_experiment` this runs outside the serving lock —
        it only reads the (thread-safe) store, so asks keep serving.
        """
        from repro.analytics import as_query

        store = getattr(self.session.simulation_cache, "store", None)
        if store is None:
            raise ValueError(
                "no trace store attached; start the service with a "
                "store_dir to query stored experiments")
        known = store.experiment_fingerprints()
        matches = [item for item in known if item.startswith(fingerprint)]
        if not matches:
            raise ValueError(
                f"no stored experiment matches fingerprint {fingerprint!r}")
        if len(matches) > 1:
            raise ValueError(
                f"fingerprint prefix {fingerprint!r} is ambiguous "
                f"({len(matches)} matches); use more characters")
        result = ExperimentResult.load(store, matches[0])
        if result is None:
            raise ValueError(
                f"stored experiment {matches[0]} failed to load")
        return matches[0], result.query(as_query(query), backend=backend)

    # ------------------------------------------------------------------
    # asyncio front-end
    # ------------------------------------------------------------------
    def _pool(self) -> ThreadPoolExecutor:
        with self._executor_lock:
            if self._executor is None:
                raise RuntimeError("CacheMindService is closed")
            return self._executor

    async def ask_async(self, request: Union[str, AskRequest],
                        retriever: Optional[str] = None) -> AskResponse:
        """``await``-able :meth:`ask`; freely ``asyncio.gather``-able."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._pool(), lambda: self.ask(request, retriever=retriever))

    async def ask_batch_async(self, requests: Sequence[Union[str, AskRequest]],
                              retriever: Optional[str] = None
                              ) -> List[AskResponse]:
        """``await``-able :meth:`ask_batch`."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._pool(),
            lambda: self.ask_batch(requests, retriever=retriever))

    # ------------------------------------------------------------------
    # lifecycle and telemetry
    # ------------------------------------------------------------------
    def warm_up(self) -> Dict[str, int]:
        """Force the database build so the first request is not the one
        paying for it; returns the simulation-cache stats afterwards."""
        with self._lock:
            _ = self.session.database
            return self.session.simulation_cache.stats()

    def stats(self) -> Dict[str, Any]:
        """A serving telemetry snapshot (all numbers since construction)."""
        with self._lock:
            uptime = max(time.monotonic() - self._started, 1e-9)
            latencies = list(self._latencies)
            cache_now = self.session.simulation_cache.stats()
            cache_delta = {
                key: cache_now[key] - self._cache_stats_at_start.get(key, 0)
                for key in ("hits", "misses", "store_hits")}
            return {
                "requests": self._requests,
                "batches": self._batches,
                "errors": self._errors,
                "uptime_seconds": uptime,
                "qps": self._requests / uptime,
                "latency_ms": {
                    "count": len(latencies),
                    "mean": (sum(latencies) / len(latencies) * 1000.0
                             if latencies else 0.0),
                    "p50": percentile(latencies, 0.50) * 1000.0,
                    "p95": percentile(latencies, 0.95) * 1000.0,
                    "p99": percentile(latencies, 0.99) * 1000.0,
                    "max": max(latencies) * 1000.0 if latencies else 0.0,
                },
                "simulation_cache": cache_now,
                "simulation_cache_delta": cache_delta,
                "experiments": self._experiment_stats(),
                "database_builds": self.session.database_builds,
                "session": {
                    "workloads": list(self.session.workloads),
                    "policies": list(self.session.policies),
                    "config": self.session.config.name,
                    "mode": self.session.mode,
                    "num_accesses": self.session.num_accesses,
                    "backend": self.session.backend.name,
                },
            }

    def _experiment_stats(self) -> Dict[str, Any]:
        """One consistent snapshot of the experiment telemetry.

        While sweeps are in flight, ``cells_done``/``cells_total``
        aggregate across all of them; idle, they report the last
        completed run.
        """
        with self._experiment_lock:
            snapshot = dict(self._experiments)
            snapshot["in_progress"] = len(self._experiment_active)
            if self._experiment_active:
                slots = list(self._experiment_active.values())
                snapshot["cells_done"] = sum(done for done, _total in slots)
                snapshot["cells_total"] = sum(total for _done, total in slots)
            if snapshot["last"] is not None:
                snapshot["last"] = dict(snapshot["last"])
            return snapshot

    def close(self) -> None:
        """Shut the asyncio thread pool down (idempotent)."""
        with self._executor_lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "CacheMindService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"CacheMindService(session={self.session!r}, "
                f"requests={self._requests})")
