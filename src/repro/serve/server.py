"""Stdlib-only concurrent JSON-lines TCP server over a CacheMindService.

Protocol: newline-delimited JSON, many requests per connection, one thread
per connection (see the :mod:`repro.serve` package docstring for the full
request/response shapes).  All handlers funnel into one shared
:class:`~repro.serve.service.CacheMindService`, so remote answers are
byte-identical to in-process ones.
"""

from __future__ import annotations

import json
import socketserver
import threading
from typing import Any, Dict, Optional, Tuple

from repro.errors import UnknownNameError
from repro.serve.service import CacheMindService

#: protocol-level cap on one request line; a malformed client streaming an
#: unterminated line must not buffer unbounded memory server-side.
MAX_LINE_BYTES = 1 << 20


class _AskRequestHandler(socketserver.StreamRequestHandler):
    """One connection: read JSON lines until EOF, answer each in order.

    ``self.server`` is the :class:`_ThreadingTCPServer`, which carries a
    ``dispatch_line`` callback back into the owning :class:`CacheMindServer`.
    """

    def handle(self) -> None:
        while True:
            line = self.rfile.readline(MAX_LINE_BYTES + 1)
            if not line:
                return
            if len(line) > MAX_LINE_BYTES:
                self._reply({"ok": False,
                             "error": f"request line exceeds "
                                      f"{MAX_LINE_BYTES} bytes"})
                return
            if not line.strip():
                continue
            self._reply(self.server.dispatch_line(line))

    def _reply(self, payload: Dict[str, Any]) -> None:
        self.wfile.write(json.dumps(payload).encode("utf-8") + b"\n")
        self.wfile.flush()


class _ThreadingTCPServer(socketserver.ThreadingTCPServer):
    # daemon_threads: an open (idle) client connection must never block
    # server shutdown or process exit; allow_reuse_address: restarts bind
    # immediately instead of waiting out TIME_WAIT.
    daemon_threads = True
    allow_reuse_address = True


class CacheMindServer:
    """Serve a :class:`CacheMindService` over newline-delimited JSON/TCP.

        >>> server = CacheMindServer(service, host="127.0.0.1", port=0)
        >>> host, port = server.address          # port resolved after bind
        >>> server.start()                       # background thread
        ...
        >>> server.close()

    ``serve_forever()`` runs in the calling thread (the CLI path);
    ``start()`` spawns a daemon thread (tests, embedding into another
    application).  Both are stopped by :meth:`close`.
    """

    def __init__(self, service: CacheMindService,
                 host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self._tcp = _ThreadingTCPServer((host, port), _AskRequestHandler)
        # Hand the handler a route back to dispatch via the server object.
        self._tcp.dispatch_line = self.dispatch_line  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._lifecycle_lock = threading.Lock()
        self._serving = threading.Event()
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (the real port when created with 0)."""
        host, port = self._tcp.server_address[:2]
        return host, port

    # ------------------------------------------------------------------
    # request dispatch (transport-independent, also used by tests)
    # ------------------------------------------------------------------
    def dispatch_line(self, line: bytes) -> Dict[str, Any]:
        """Decode one request line and produce the response payload."""
        try:
            payload = json.loads(line)
        except (ValueError, UnicodeDecodeError) as error:
            return {"ok": False, "error": f"malformed JSON request: {error}"}
        if not isinstance(payload, dict):
            return {"ok": False, "error": "request must be a JSON object"}
        try:
            return {"ok": True, "result": self._dispatch(payload)}
        except (UnknownNameError, ValueError, TypeError, KeyError) as error:
            # Configuration/validation errors belong to the client; the
            # connection (and server) stay up.
            return {"ok": False, "error": f"{type(error).__name__}: {error}"}
        except Exception as error:  # noqa: BLE001 — protocol contract
            # The documented contract is that errors never kill the
            # connection: an unexpected service failure must still produce
            # an {"ok": false} reply rather than a silent hangup.
            return {"ok": False,
                    "error": f"internal error: {type(error).__name__}: "
                             f"{error}"}

    def _dispatch(self, payload: Dict[str, Any]) -> Any:
        op = payload.get("op", "ask")
        if op == "ping":
            return {"pong": True, "server": "cachemind"}
        if op == "stats":
            return self.service.stats()
        if op == "ask":
            question = payload.get("question")
            if not isinstance(question, str) or not question.strip():
                raise ValueError("'ask' needs a non-empty 'question' string")
            response = self.service.ask_batch([_request(payload, question)])[0]
            return _with_server_meta(response.to_dict())
        if op == "batch":
            questions = payload.get("questions")
            if (not isinstance(questions, list) or not questions
                    or not all(isinstance(question, str)
                               for question in questions)):
                raise ValueError("'batch' needs a non-empty 'questions' "
                                 "list of strings")
            retriever = payload.get("retriever")
            if retriever is not None and not isinstance(retriever, str):
                raise ValueError("'retriever' must be a registered name "
                                 "string")
            responses = self.service.ask_batch(questions,
                                               retriever=retriever)
            return [_with_server_meta(response.to_dict())
                    for response in responses]
        if op == "experiment":
            spec = payload.get("spec")
            if not isinstance(spec, dict):
                raise ValueError("'experiment' needs a 'spec' object "
                                 "(ExperimentSpec.to_dict form)")
            # No transport metadata is added: the result dictionary must
            # stay byte-identical to the in-process to_dict() so remote
            # and local cell tables compare equal.
            return self.service.run_experiment(spec).to_dict()
        raise ValueError(f"unknown op {op!r}; "
                         f"supported: ask, batch, experiment, stats, ping")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def serve_forever(self) -> None:
        """Serve in the calling thread until :meth:`close` (CLI path)."""
        with self._lifecycle_lock:
            if self._closed:
                return
            self._serving.set()
        self._tcp.serve_forever(poll_interval=0.1)

    def start(self) -> "CacheMindServer":
        """Serve on a background daemon thread; returns self."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self.serve_forever, name="cachemind-server",
                daemon=True)
            self._thread.start()
        return self

    def close(self) -> None:
        """Stop serving and release the socket (idempotent, and safe on a
        server that never started serving — ``BaseServer.shutdown`` would
        otherwise wait forever on an event only ``serve_forever`` sets)."""
        with self._lifecycle_lock:
            self._closed = True
            started = self._serving.is_set()
        if started:
            self._tcp.shutdown()
        self._tcp.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "CacheMindServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _request(payload: Dict[str, Any], question: str):
    from repro.core.plan import AskRequest
    retriever = payload.get("retriever")
    if retriever is not None and not isinstance(retriever, str):
        raise ValueError("'retriever' must be a registered name string")
    request_id = payload.get("id") or payload.get("request_id") or ""
    return AskRequest(question=question, retriever=retriever,
                      request_id=str(request_id))


def _with_server_meta(response_dict: Dict[str, Any]) -> Dict[str, Any]:
    response_dict["server"] = {"transport": "json-lines/tcp"}
    return response_dict
