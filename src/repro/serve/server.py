"""Stdlib-only concurrent JSON-lines TCP server over a CacheMindService.

Protocol: newline-delimited JSON, many requests per connection, one thread
per connection (see the :mod:`repro.serve` package docstring for the full
request/response shapes).  All handlers funnel into one shared
:class:`~repro.serve.service.CacheMindService`, so remote answers are
byte-identical to in-process ones.

Resilience contract:

* **Structured errors** — every ``{"ok": false}`` reply carries a ``kind``
  (``bad_request``, ``overloaded``, ``shutting_down``, ``deadline``,
  ``internal``) so clients can tell "retry this" from "fix your request".
* **Admission control** — at most ``max_in_flight`` requests execute at
  once; excess requests are shed immediately with ``kind="overloaded"``
  instead of piling up threads behind the serving lock.
* **Per-op deadlines** — requests may carry ``deadline_ms``; one that
  expires while queued is answered ``kind="deadline"`` rather than
  executing arbitrarily late.
* **Health** — the ``health`` op reports degradation state (in-flight
  load, shed/deadline counters, draining flag) and is exempt from
  admission control, so probes answer even while the server is saturated.
* **Graceful drain** — :meth:`CacheMindServer.close` stops accepting new
  connections, refuses new requests with ``kind="shutting_down"``, waits
  for in-flight requests to finish (bounded by ``drain_timeout``), and
  warns instead of silently returning if the serving thread is wedged.
"""

from __future__ import annotations

import json
import socketserver
import threading
import time
import warnings
from typing import Any, Dict, Optional, Tuple

from repro.errors import DeadlineExceededError, UnknownNameError
from repro.serve.service import CacheMindService

#: protocol-level cap on one request line; a malformed client streaming an
#: unterminated line must not buffer unbounded memory server-side.
MAX_LINE_BYTES = 1 << 20

#: error kinds a server reply may carry.
ERROR_KINDS = ("bad_request", "overloaded", "shutting_down", "deadline",
               "internal")


class _AskRequestHandler(socketserver.StreamRequestHandler):
    """One connection: read JSON lines until EOF, answer each in order.

    ``self.server`` is the :class:`_ThreadingTCPServer`, which carries a
    ``dispatch_line`` callback back into the owning :class:`CacheMindServer`.
    """

    def handle(self) -> None:
        while True:
            line = self.rfile.readline(MAX_LINE_BYTES + 1)
            if not line:
                return
            if len(line) > MAX_LINE_BYTES:
                self._reply({"ok": False, "kind": "bad_request",
                             "error": f"request line exceeds "
                                      f"{MAX_LINE_BYTES} bytes"})
                return
            if not line.strip():
                continue
            self._reply(self.server.dispatch_line(line))

    def _reply(self, payload: Dict[str, Any]) -> None:
        self.wfile.write(json.dumps(payload).encode("utf-8") + b"\n")
        self.wfile.flush()


class _ThreadingTCPServer(socketserver.ThreadingTCPServer):
    # daemon_threads: an open (idle) client connection must never block
    # server shutdown or process exit; allow_reuse_address: restarts bind
    # immediately instead of waiting out TIME_WAIT.
    daemon_threads = True
    allow_reuse_address = True


class CacheMindServer:
    """Serve a :class:`CacheMindService` over newline-delimited JSON/TCP.

        >>> server = CacheMindServer(service, host="127.0.0.1", port=0)
        >>> host, port = server.address          # port resolved after bind
        >>> server.start()                       # background thread
        ...
        >>> server.close()

    ``serve_forever()`` runs in the calling thread (the CLI path);
    ``start()`` spawns a daemon thread (tests, embedding into another
    application).  Both are stopped by :meth:`close`, which drains
    gracefully: in-flight requests finish (up to ``drain_timeout``
    seconds) while new work is refused with structured errors.
    """

    def __init__(self, service: CacheMindService,
                 host: str = "127.0.0.1", port: int = 0,
                 max_in_flight: int = 32, drain_timeout: float = 10.0):
        self.service = service
        self.max_in_flight = max(1, int(max_in_flight))
        self.drain_timeout = drain_timeout
        self._tcp = _ThreadingTCPServer((host, port), _AskRequestHandler)
        # Hand the handler a route back to dispatch via the server object.
        self._tcp.dispatch_line = self.dispatch_line  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._lifecycle_lock = threading.Lock()
        self._serving = threading.Event()
        self._closed = False
        # Admission-control state: _idle wraps the same lock so drain can
        # wait for the in-flight count to reach zero.
        self._state_lock = threading.Lock()
        self._idle = threading.Condition(self._state_lock)
        self._in_flight = 0
        self._draining = False
        self._shed = 0
        self._deadline_rejects = 0
        self._started_at = time.monotonic()

    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (the real port when created with 0)."""
        host, port = self._tcp.server_address[:2]
        return host, port

    # ------------------------------------------------------------------
    # request dispatch (transport-independent, also used by tests)
    # ------------------------------------------------------------------
    def dispatch_line(self, line: bytes) -> Dict[str, Any]:
        """Decode one request line and produce the response payload."""
        try:
            payload = json.loads(line)
        except (ValueError, UnicodeDecodeError) as error:
            return {"ok": False, "kind": "bad_request",
                    "error": f"malformed JSON request: {error}"}
        if not isinstance(payload, dict):
            return {"ok": False, "kind": "bad_request",
                    "error": "request must be a JSON object"}
        op = payload.get("op", "ask")
        # Liveness/health probes bypass admission control and draining:
        # they must answer precisely when the server is degraded, and they
        # never touch the serving lock.
        if op == "ping":
            return {"ok": True,
                    "result": {"pong": True, "server": "cachemind"}}
        if op == "health":
            return {"ok": True, "result": self.health()}
        try:
            deadline_at = self._deadline_at(payload)
        except ValueError as error:
            return {"ok": False, "kind": "bad_request",
                    "error": str(error)}
        with self._state_lock:
            if self._draining:
                return {"ok": False, "kind": "shutting_down",
                        "error": "server is shutting down; retry against "
                                 "a restarted server"}
            if self._in_flight >= self.max_in_flight:
                self._shed += 1
                return {"ok": False, "kind": "overloaded",
                        "error": f"server overloaded "
                                 f"({self._in_flight} requests in flight, "
                                 f"capacity {self.max_in_flight}); retry "
                                 f"with backoff",
                        "retry_after_ms": 50}
            self._in_flight += 1
        try:
            if deadline_at is not None and time.monotonic() >= deadline_at:
                with self._state_lock:
                    self._deadline_rejects += 1
                return {"ok": False, "kind": "deadline",
                        "error": "request deadline expired before "
                                 "execution"}
            try:
                return {"ok": True,
                        "result": self._dispatch(payload, deadline_at)}
            except DeadlineExceededError as error:
                with self._state_lock:
                    self._deadline_rejects += 1
                return {"ok": False, "kind": "deadline",
                        "error": str(error)}
            except (UnknownNameError, ValueError, TypeError,
                    KeyError) as error:
                # Configuration/validation errors belong to the client; the
                # connection (and server) stay up.
                return {"ok": False, "kind": "bad_request",
                        "error": f"{type(error).__name__}: {error}"}
            except Exception as error:  # noqa: BLE001 — protocol contract
                # The documented contract is that errors never kill the
                # connection: an unexpected service failure must still
                # produce an {"ok": false} reply rather than a silent
                # hangup.
                return {"ok": False, "kind": "internal",
                        "error": f"internal error: "
                                 f"{type(error).__name__}: {error}"}
        finally:
            with self._idle:
                self._in_flight -= 1
                self._idle.notify_all()

    @staticmethod
    def _deadline_at(payload: Dict[str, Any]) -> Optional[float]:
        """Resolve a request's ``deadline_ms`` to a monotonic instant."""
        deadline_ms = payload.get("deadline_ms")
        if deadline_ms is None:
            return None
        if (isinstance(deadline_ms, bool)
                or not isinstance(deadline_ms, (int, float))):
            raise ValueError("'deadline_ms' must be a number of "
                             "milliseconds")
        return time.monotonic() + max(0.0, float(deadline_ms)) / 1000.0

    def _dispatch(self, payload: Dict[str, Any],
                  deadline_at: Optional[float] = None) -> Any:
        op = payload.get("op", "ask")
        if op == "stats":
            return self.service.stats()
        if op == "ask":
            question = payload.get("question")
            if not isinstance(question, str) or not question.strip():
                raise ValueError("'ask' needs a non-empty 'question' string")
            response = self.service.ask_batch(
                [_request(payload, question)], deadline_at=deadline_at)[0]
            return _with_server_meta(response.to_dict())
        if op == "batch":
            questions = payload.get("questions")
            if (not isinstance(questions, list) or not questions
                    or not all(isinstance(question, str)
                               for question in questions)):
                raise ValueError("'batch' needs a non-empty 'questions' "
                                 "list of strings")
            retriever = payload.get("retriever")
            if retriever is not None and not isinstance(retriever, str):
                raise ValueError("'retriever' must be a registered name "
                                 "string")
            responses = self.service.ask_batch(questions,
                                               retriever=retriever,
                                               deadline_at=deadline_at)
            return [_with_server_meta(response.to_dict())
                    for response in responses]
        if op == "experiment":
            spec = payload.get("spec")
            if not isinstance(spec, dict):
                raise ValueError("'experiment' needs a 'spec' object "
                                 "(ExperimentSpec.to_dict form)")
            # No transport metadata is added: the result dictionary must
            # stay byte-identical to the in-process to_dict() so remote
            # and local cell tables compare equal.
            return self.service.run_experiment(spec).to_dict()
        if op == "query":
            fingerprint = payload.get("fingerprint")
            if not isinstance(fingerprint, str) or not fingerprint:
                raise ValueError("'query' needs a 'fingerprint' string "
                                 "(a unique prefix is enough)")
            query = payload.get("query")
            if not isinstance(query, dict):
                raise ValueError("'query' needs a 'query' object "
                                 "(Query.to_dict form)")
            backend = payload.get("backend", "stdlib")
            if not isinstance(backend, str):
                raise ValueError("'backend' must be an analytics backend "
                                 "name string")
            full, table = self.service.query_experiment(
                fingerprint, query, backend=backend)
            # Columns ride verbatim (no transport metadata) so the remote
            # result table compares byte-identical to an in-process run.
            return {"fingerprint": full, "columns": table.to_dict()}
        raise ValueError(f"unknown op {op!r}; supported: ask, batch, "
                         f"experiment, query, stats, health, ping")

    # ------------------------------------------------------------------
    # health
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        """Degradation snapshot; never blocks on the serving lock."""
        with self._state_lock:
            in_flight = self._in_flight
            draining = self._draining
            shed = self._shed
            deadline_rejects = self._deadline_rejects
        if draining:
            status = "draining"
        elif in_flight >= self.max_in_flight:
            status = "overloaded"
        else:
            status = "ok"
        return {
            "status": status,
            "draining": draining,
            "in_flight": in_flight,
            "capacity": self.max_in_flight,
            "shed": shed,
            "deadline_rejects": deadline_rejects,
            "uptime_seconds": time.monotonic() - self._started_at,
            # Cache counters expose degradation (e.g. store writes failing
            # shows up as store_hits flatlining); the cache lock is
            # independent of the serving lock, so this stays responsive
            # while requests execute.
            "simulation_cache": self.service.session.simulation_cache.stats(),
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def serve_forever(self) -> None:
        """Serve in the calling thread until :meth:`close` (CLI path)."""
        with self._lifecycle_lock:
            if self._closed:
                return
            self._serving.set()
        self._tcp.serve_forever(poll_interval=0.1)

    def start(self) -> "CacheMindServer":
        """Serve on a background daemon thread; returns self."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self.serve_forever, name="cachemind-server",
                daemon=True)
            self._thread.start()
        return self

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Refuse new requests and wait for in-flight ones to finish.

        Returns ``True`` when the server went idle within ``timeout``
        (default ``drain_timeout``) seconds, ``False`` otherwise.
        """
        timeout = self.drain_timeout if timeout is None else timeout
        deadline = time.monotonic() + max(0.0, timeout)
        with self._idle:
            self._draining = True
            # An already-idle server drains instantly even with timeout=0.
            while self._in_flight:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._idle.wait(remaining)
        return True

    def close(self) -> None:
        """Stop serving and release the socket (idempotent, and safe on a
        server that never started serving — ``BaseServer.shutdown`` would
        otherwise wait forever on an event only ``serve_forever`` sets).

        Shutdown is graceful: the accept loop stops (new connections are
        refused), requests arriving on existing connections get
        ``kind="shutting_down"``, and in-flight requests are given
        ``drain_timeout`` seconds to finish before the thread is joined.
        A serving thread that fails to exit within 5s is reported with a
        ``RuntimeWarning`` instead of being silently abandoned.
        """
        with self._lifecycle_lock:
            already_closed = self._closed
            self._closed = True
            started = self._serving.is_set()
        if started:
            self._tcp.shutdown()
        self._tcp.server_close()
        if not already_closed and not self.drain():
            with self._state_lock:
                stuck = self._in_flight
            warnings.warn(
                f"CacheMindServer closed with {stuck} in-flight request(s) "
                f"still running after {self.drain_timeout:.1f}s drain "
                f"timeout", RuntimeWarning, stacklevel=2)
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            if self._thread.is_alive():
                warnings.warn(
                    "CacheMindServer serving thread did not exit within "
                    "5.0s of shutdown; it is likely wedged in a handler "
                    "(daemon thread, will not block process exit)",
                    RuntimeWarning, stacklevel=2)
            self._thread = None

    def __enter__(self) -> "CacheMindServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _request(payload: Dict[str, Any], question: str):
    from repro.core.plan import AskRequest
    retriever = payload.get("retriever")
    if retriever is not None and not isinstance(retriever, str):
        raise ValueError("'retriever' must be a registered name string")
    request_id = payload.get("id") or payload.get("request_id") or ""
    return AskRequest(question=question, retriever=retriever,
                      request_id=str(request_id))


def _with_server_meta(response_dict: Dict[str, Any]) -> Dict[str, Any]:
    response_dict["server"] = {"transport": "json-lines/tcp"}
    return response_dict
