"""Serving subsystem: one shared CacheMind session behind a concurrent API.

Architecture
------------

The serving stack is three thin layers over the request/plan/execute core
API (``repro.core.plan``), each adding exactly one capability::

    AskRequest ──► CacheMindService ──► CacheMindServer ──► RemoteClient
                   (thread-safe,         (JSON-lines TCP,     (wire client,
                    metrics, asyncio)     one thread/conn)     repro ask --remote)

* :class:`~repro.serve.service.CacheMindService` wraps **one** shared
  :class:`~repro.core.pipeline.CacheMind` session and makes it safe to call
  from many threads: planning happens outside the session lock (the planner
  is stateless per call), while execution — database build, retrieval,
  generation, conversation memory — is serialised under an ``RLock``.  The
  heavyweight work (simulation) is memoised process-wide and shared across
  requests, so the serialised section is the lightweight generation tail.
  The service also keeps serving telemetry: request/error counters, QPS,
  latency percentiles (p50/p95/p99 over a sliding window) and the
  simulation-cache/store hit deltas since startup.  ``await
  service.ask_async(...)`` adapts the same path to ``asyncio`` (requests
  run on a private thread pool and are freely ``gather``-able).

* :class:`~repro.serve.server.CacheMindServer` exposes the service over a
  stdlib-only **JSON-lines TCP protocol**: one JSON object per line in,
  one JSON object per line out, many requests per connection, one thread
  per connection (``socketserver.ThreadingTCPServer``).  Because every
  handler funnels into the same service, concurrent remote clients get
  the same answers, byte-for-byte, as in-process callers.

* :class:`~repro.serve.client.RemoteClient` is the matching client used by
  ``python -m repro ask --remote HOST:PORT``; it speaks the same protocol
  and rebuilds :class:`~repro.core.answer.AskResponse` objects from the
  wire.

Wire protocol (newline-delimited JSON)::

    → {"op": "ask", "question": "...", "retriever": null, "id": "r1"}
    ← {"ok": true, "result": {"answer": {...}, "timings": {...}, ...}}
    → {"op": "batch", "questions": ["...", "..."]}
    ← {"ok": true, "result": [{...}, {...}]}
    → {"op": "experiment", "spec": {"workloads": [...], "configs": [...]}}
    ← {"ok": true, "result": {"columns": {...}, "counters": {...}, ...}}
    → {"op": "query", "fingerprint": "ab12...", "query": {"table": "cells",
       ...}, "backend": "stdlib"}
    ← {"ok": true, "result": {"fingerprint": "...", "columns": {...}}}
    → {"op": "stats"}   /   {"op": "ping"}   /   {"op": "health"}
    ← {"ok": true, "result": {...}}

The ``experiment`` op runs a declarative sweep grid
(:class:`~repro.core.experiment.ExperimentSpec` in its ``to_dict`` form)
through the shared session and returns the lossless
:class:`~repro.core.experiment.ExperimentResult` dictionary; progress of a
running sweep is visible in ``stats`` under ``experiments``.

The ``query`` op runs a declarative :class:`repro.analytics.Query` (wire
form) against a **store-backed** experiment's cell table — top-k cells,
grouped aggregates, filtered slices — and returns only the result columns,
so clients analyse big sweeps without shipping whole tables.  ``backend``
selects the server-side analytics backend (``stdlib`` default or
``sqlite``); both return byte-identical columns.

Resilience (see the :mod:`repro.serve.server` docstring for the server
side, :mod:`repro.serve.client` for the client side):

* Errors never kill the connection: a malformed line, unknown op, shed or
  failed request yields ``{"ok": false, "kind": "...", "error": "..."}``
  and the handler keeps reading.  ``kind`` is one of ``bad_request``,
  ``overloaded``, ``shutting_down``, ``deadline``, ``internal``.
* Requests may carry ``deadline_ms``; the server refuses to execute one
  whose deadline already passed (``kind="deadline"``) instead of running
  arbitrarily late, and :class:`RemoteClient` derives ``deadline_ms`` from
  its per-request ``deadline`` budget so both sides give up together.
* The ``health`` op reports degradation state (in-flight load, shed and
  deadline counters, draining flag) and bypasses admission control, so it
  answers precisely when the server is saturated or draining.
* :class:`RemoteClient` retries idempotent requests over transport
  failures and retryable error kinds with seeded, capped exponential
  backoff — a server restart within the retry budget is invisible.
"""

from repro.serve.client import (
    DeadlineExceeded,
    RemoteClient,
    RemoteError,
    ServerOverloadedError,
    ServerShuttingDownError,
    parse_address,
)
from repro.serve.server import CacheMindServer
from repro.serve.service import CacheMindService

__all__ = [
    "CacheMindService",
    "CacheMindServer",
    "RemoteClient",
    "RemoteError",
    "ServerOverloadedError",
    "ServerShuttingDownError",
    "DeadlineExceeded",
    "parse_address",
]
