"""Client for the CacheMind JSON-lines server (``repro ask --remote``).

One persistent TCP connection per client; requests are one JSON object per
line and responses come back in order, so a client can pipeline.  The
client rebuilds :class:`~repro.core.answer.AskResponse` objects from the
wire, so remote callers consume exactly the in-process response type.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.answer import AskResponse
from repro.core.experiment import ExperimentResult, ExperimentSpec


class RemoteError(RuntimeError):
    """The server answered ``{"ok": false, ...}`` for a request."""


def parse_address(address: str,
                  default_port: int = 9178) -> Tuple[str, int]:
    """Split ``"host:port"`` (port optional) into ``(host, port)``."""
    if not address:
        raise ValueError("empty server address")
    host, _, port_text = address.rpartition(":")
    if not host:
        return address, default_port
    try:
        return host, int(port_text)
    except ValueError:
        raise ValueError(f"malformed server address {address!r}; "
                         f"expected HOST or HOST:PORT") from None


class RemoteClient:
    """Talk to a :class:`~repro.serve.server.CacheMindServer`.

        >>> with RemoteClient("127.0.0.1", 9178) as client:
        ...     response = client.ask("What is the miss rate of lru on astar?")
        ...     print(response.answer)

    The connection opens lazily on the first request and is reused; use the
    context-manager form (or :meth:`close`) to release it.
    """

    def __init__(self, host: str, port: Optional[int] = None,
                 timeout: float = 60.0):
        if port is None:
            host, port = parse_address(host)
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._reader = None

    # ------------------------------------------------------------------
    # connection plumbing
    # ------------------------------------------------------------------
    def _connect(self) -> None:
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout)
            self._reader = self._sock.makefile("rb")

    def close(self) -> None:
        """Close the connection (idempotent); the next request reconnects."""
        if self._reader is not None:
            try:
                self._reader.close()
            except OSError:
                pass
            self._reader = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "RemoteClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # protocol
    # ------------------------------------------------------------------
    def request(self, payload: Dict[str, Any]) -> Any:
        """Send one raw protocol request; returns the ``result`` payload.

        Raises :class:`RemoteError` on an ``ok: false`` reply and
        ``ConnectionError`` when the server hangs up mid-request (the
        connection is dropped so the next call reconnects cleanly).
        """
        self._connect()
        try:
            self._sock.sendall(json.dumps(payload).encode("utf-8") + b"\n")
            line = self._reader.readline()
        except OSError:
            self.close()
            raise
        if not line:
            self.close()
            raise ConnectionError(
                f"server at {self.host}:{self.port} closed the connection")
        try:
            reply = json.loads(line)
        except ValueError:
            # A non-protocol peer: drop the connection rather than leave
            # the rest of its reply buffered to desynchronize later calls.
            self.close()
            raise
        if not reply.get("ok"):
            raise RemoteError(reply.get("error", "unknown server error"))
        return reply.get("result")

    # ------------------------------------------------------------------
    # high-level API (mirrors CacheMindService)
    # ------------------------------------------------------------------
    def ask(self, question: str, retriever: Optional[str] = None,
            request_id: str = "") -> AskResponse:
        """Ask one question; returns the rebuilt :class:`AskResponse`."""
        result = self.request({"op": "ask", "question": question,
                               "retriever": retriever, "id": request_id})
        return AskResponse.from_dict(result)

    def ask_batch(self, questions: Sequence[str],
                  retriever: Optional[str] = None) -> List[AskResponse]:
        """Ask a batch in one round trip (server-side job dedup applies)."""
        result = self.request({"op": "batch", "questions": list(questions),
                               "retriever": retriever})
        return [AskResponse.from_dict(item) for item in result]

    def experiment(self, spec: Union[ExperimentSpec, Dict[str, Any]]
                   ) -> ExperimentResult:
        """Run a declarative sweep grid server-side (one round trip).

        ``spec`` is an :class:`ExperimentSpec` or its ``to_dict`` payload;
        the rebuilt :class:`ExperimentResult` is cell-for-cell identical to
        running the same spec in-process against the server's session.
        """
        payload = spec.to_dict() if isinstance(spec, ExperimentSpec) else dict(spec)
        result = self.request({"op": "experiment", "spec": payload})
        return ExperimentResult.from_dict(result)

    def stats(self) -> Dict[str, Any]:
        """The server's serving-telemetry snapshot."""
        return self.request({"op": "stats"})

    def ping(self) -> bool:
        """Whether the server answers the protocol ping."""
        try:
            result = self.request({"op": "ping"})
        except (OSError, ValueError, RemoteError):
            return False
        return bool(result and result.get("pong"))

    # ------------------------------------------------------------------
    @staticmethod
    def wait_ready(host: str, port: Optional[int] = None,
                   timeout: float = 30.0, interval: float = 0.1) -> bool:
        """Poll until a server accepts and answers ping (startup helper).

        Each attempt uses a fresh connection, so this works while the
        server is still binding.  Returns True once ready; False on
        timeout.
        """
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                with RemoteClient(host, port, timeout=interval + 1.0) as probe:
                    if probe.ping():
                        return True
            except OSError:
                pass
            time.sleep(interval)
        return False
